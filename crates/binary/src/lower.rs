//! Lowering KIR to machine code.
//!
//! A deliberately simple but realistic code generator: frame-pointer
//! prologues, use-count-driven register assignment with stack spills,
//! SysV-style argument registers (six integer + six float slots, the
//! rest pushed), and relocation records for data-resident function
//! pointers.

use crate::{
    BinBlock, BinFunction, BinProvenance, Binary, ExtSym, MInst, MOperand, Opcode, Reloc, SymRef,
};
use khaos_ir::{
    BinOp, Callee, CastKind, Const, Function, GInit, Inst, Linkage, LocalId, Module, Operand, Term,
    Type, UnOp,
};
use std::collections::HashMap;

/// Return-value / scratch integer registers.
const RAX: u8 = 0;
const SCRATCH1: u8 = 1; // r10
const SCRATCH2: u8 = 2; // r11
/// First of six integer argument registers (rdi..r9).
const ARG_BASE: u8 = 3;
/// Allocatable integer registers (callee-saved flavour).
const ALLOC_BASE: u8 = 9;
const ALLOC_COUNT: u8 = 7;
/// Frame pointer.
const RBP: u8 = 16;

/// Float scratch / return register (xmm0).
const XMM0: u8 = 0;
const FSCRATCH: u8 = 1;
/// First of six float argument registers.
const FARG_BASE: u8 = 2;
const FALLOC_BASE: u8 = 8;
const FALLOC_COUNT: u8 = 6;

/// Integer argument register slots (SysV has 6).
pub const INT_ARG_SLOTS: usize = 6;

/// Where a local lives.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Place {
    Reg(u8),
    FReg(u8),
    /// rbp-relative spill slot.
    Slot(i32),
}

struct FnLowering<'m> {
    m: &'m Module,
    f: &'m Function,
    places: Vec<Place>,
    frame_size: i32,
    /// The function-wide flat operand pool (becomes
    /// [`BinFunction::operand_pool`]); [`FnLowering::emit`] allocates
    /// every instruction's operands here.
    pool: Vec<MOperand>,
    /// Instructions of the block currently being lowered.
    insts: Vec<MInst>,
    /// Call sites of the block currently being lowered.
    calls: Vec<SymRef>,
}

/// Lowers a whole module to a [`Binary`].
pub fn lower_module(m: &Module) -> Binary {
    let functions = m.functions.iter().map(|f| lower_function(m, f)).collect();
    let mut relocations = Vec::new();
    for g in &m.globals {
        for init in &g.init {
            if let GInit::FuncPtr { func, addend } = init {
                relocations.push(Reloc {
                    func: func.index() as u32,
                    addend: *addend,
                });
            }
        }
    }
    let externals = m
        .externals
        .iter()
        .map(|e| ExtSym {
            name: e.name.clone(),
        })
        .collect();
    Binary {
        name: m.name.clone(),
        functions,
        relocations,
        externals,
        stripped: false,
        build_provenance: 0,
    }
}

fn assign_places(f: &Function) -> (Vec<Place>, i32) {
    // Use counts decide who gets a register.
    let mut counts = vec![0usize; f.locals.len()];
    for b in &f.blocks {
        for i in &b.insts {
            i.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    counts[l.index()] += 1;
                }
            });
            if let Some(d) = i.def() {
                counts[d.index()] += 1;
            }
        }
        b.term.for_each_use(|o| {
            if let Some(l) = o.as_local() {
                counts[l.index()] += 1;
            }
        });
    }
    let mut order: Vec<usize> = (0..f.locals.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(counts[i]), i));

    let mut places = vec![Place::Slot(0); f.locals.len()];
    let mut next_int = 0u8;
    let mut next_float = 0u8;
    let mut frame = 0i32;
    for &i in &order {
        let ty = f.locals[i];
        if ty.is_float() {
            if next_float < FALLOC_COUNT {
                places[i] = Place::FReg(FALLOC_BASE + next_float);
                next_float += 1;
                continue;
            }
        } else if next_int < ALLOC_COUNT {
            places[i] = Place::Reg(ALLOC_BASE + next_int);
            next_int += 1;
            continue;
        }
        frame += 8;
        places[i] = Place::Slot(-frame);
    }
    (places, frame)
}

fn lower_function(m: &Module, f: &Function) -> BinFunction {
    let (places, mut frame_size) = assign_places(f);
    // Alloca areas extend the frame.
    let mut alloca_offsets: HashMap<(usize, usize), i32> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Inst::Alloca { size, align, .. } = inst {
                let align = (*align).max(8) as i32;
                frame_size = (frame_size + align - 1) / align * align;
                frame_size += (*size as i32 + 7) / 8 * 8;
                alloca_offsets.insert((bi, ii), -frame_size);
            }
        }
    }

    let mut blocks = Vec::with_capacity(f.blocks.len());
    // One lowering context per function: the operand pool (and the
    // place assignment) spans all blocks, so block loops below only
    // drain `insts`/`calls` into the finished `BinBlock`s.
    let mut lw = FnLowering {
        m,
        f,
        places,
        frame_size,
        pool: Vec::new(),
        insts: Vec::new(),
        calls: Vec::new(),
    };
    for (bi, b) in f.blocks.iter().enumerate() {
        if bi == 0 {
            // Prologue.
            lw.emit(Opcode::Push, &[MOperand::Reg(RBP)]);
            lw.emit(Opcode::Mov, &[MOperand::Reg(RBP), MOperand::Reg(17)]);
            if frame_size > 0 {
                lw.emit(
                    Opcode::Sub,
                    &[MOperand::Reg(17), MOperand::Imm(frame_size as i64)],
                );
            }
            // Spill incoming register arguments that live in memory, move
            // those that live in registers.
            let mut int_seen = 0usize;
            let mut float_seen = 0usize;
            for i in 0..f.param_count as usize {
                let ty = f.locals[i];
                let (src, is_float) = if ty.is_float() {
                    let s = if float_seen < 6 {
                        Some(MOperand::FReg(FARG_BASE + float_seen as u8))
                    } else {
                        None
                    };
                    float_seen += 1;
                    (s, true)
                } else {
                    let s = if int_seen < INT_ARG_SLOTS {
                        Some(MOperand::Reg(ARG_BASE + int_seen as u8))
                    } else {
                        None
                    };
                    int_seen += 1;
                    (s, false)
                };
                let Some(src) = src else { continue }; // stack args already in memory
                match lw.places[i] {
                    Place::Reg(r) => lw.emit(Opcode::Mov, &[MOperand::Reg(r), src]),
                    Place::FReg(r) => lw.emit(Opcode::Movsd, &[MOperand::FReg(r), src]),
                    Place::Slot(off) => {
                        let op = if is_float {
                            Opcode::Movsd
                        } else {
                            Opcode::Store
                        };
                        lw.emit(
                            op,
                            &[
                                MOperand::Mem {
                                    base: RBP,
                                    offset: off,
                                },
                                src,
                            ],
                        );
                    }
                }
            }
        }
        for (ii, inst) in b.insts.iter().enumerate() {
            lw.lower_inst(bi, ii, inst, &alloca_offsets);
        }
        let mut succs: Vec<u32> = Vec::new();
        b.term.for_each_successor(|s| succs.push(s.index() as u32));
        lw.lower_term(&b.term);
        blocks.push(BinBlock {
            insts: std::mem::take(&mut lw.insts),
            succs,
            calls: std::mem::take(&mut lw.calls),
        });
    }

    BinFunction {
        name: Some(f.name.clone()),
        provenance: BinProvenance {
            origins: f.provenance.origins.clone(),
            annotations: f.annotations.clone(),
        },
        exported: f.linkage == Linkage::Exported,
        blocks,
        operand_pool: lw.pool,
    }
}

impl<'m> FnLowering<'m> {
    /// Appends one instruction, allocating its operands in the
    /// function's flat pool.
    fn emit(&mut self, opcode: Opcode, operands: &[MOperand]) {
        self.insts
            .push(MInst::alloc(&mut self.pool, opcode, operands));
    }

    fn place(&self, l: LocalId) -> Place {
        self.places[l.index()]
    }

    fn is_float_local(&self, l: LocalId) -> bool {
        self.f.locals[l.index()].is_float()
    }

    /// Materializes an integer operand into a register; returns it.
    fn read_int(&mut self, o: &Operand, scratch: u8) -> u8 {
        match o {
            Operand::Local(l) => match self.place(*l) {
                Place::Reg(r) => r,
                Place::Slot(off) => {
                    self.emit(
                        Opcode::Load,
                        &[
                            MOperand::Reg(scratch),
                            MOperand::Mem {
                                base: RBP,
                                offset: off,
                            },
                        ],
                    );
                    scratch
                }
                Place::FReg(_) => unreachable!("int read of float local"),
            },
            Operand::Const(c) => {
                let v = match c {
                    Const::Int { value, .. } => *value,
                    Const::Null => 0,
                    Const::Float { .. } => unreachable!("int read of float const"),
                };
                self.emit(Opcode::MovImm, &[MOperand::Reg(scratch), MOperand::Imm(v)]);
                scratch
            }
        }
    }

    /// Materializes a float operand into an XMM register.
    fn read_float(&mut self, o: &Operand, scratch: u8) -> u8 {
        match o {
            Operand::Local(l) => match self.place(*l) {
                Place::FReg(r) => r,
                Place::Slot(off) => {
                    self.emit(
                        Opcode::Movsd,
                        &[
                            MOperand::FReg(scratch),
                            MOperand::Mem {
                                base: RBP,
                                offset: off,
                            },
                        ],
                    );
                    scratch
                }
                Place::Reg(_) => unreachable!("float read of int local"),
            },
            Operand::Const(c) => {
                let bits = match c {
                    Const::Float { value, .. } => value.to_bits() as i64,
                    _ => unreachable!("float read of int const"),
                };
                // movabs + movq in real life; model as MovImm + Movsd.
                self.emit(
                    Opcode::MovImm,
                    &[MOperand::Reg(SCRATCH2), MOperand::Imm(bits)],
                );
                self.emit(
                    Opcode::Movsd,
                    &[MOperand::FReg(scratch), MOperand::Reg(SCRATCH2)],
                );
                scratch
            }
        }
    }

    /// Writes `src_reg` (int) into the destination local.
    fn write_int(&mut self, dst: LocalId, src_reg: u8) {
        match self.place(dst) {
            Place::Reg(r) => {
                if r != src_reg {
                    self.emit(Opcode::Mov, &[MOperand::Reg(r), MOperand::Reg(src_reg)]);
                }
            }
            Place::Slot(off) => self.emit(
                Opcode::Store,
                &[
                    MOperand::Mem {
                        base: RBP,
                        offset: off,
                    },
                    MOperand::Reg(src_reg),
                ],
            ),
            Place::FReg(_) => unreachable!("int write to float local"),
        }
    }

    fn write_float(&mut self, dst: LocalId, src_reg: u8) {
        match self.place(dst) {
            Place::FReg(r) => {
                if r != src_reg {
                    self.emit(Opcode::Movsd, &[MOperand::FReg(r), MOperand::FReg(src_reg)]);
                }
            }
            Place::Slot(off) => self.emit(
                Opcode::Movsd,
                &[
                    MOperand::Mem {
                        base: RBP,
                        offset: off,
                    },
                    MOperand::FReg(src_reg),
                ],
            ),
            Place::Reg(_) => unreachable!("float write to int local"),
        }
    }

    fn lower_call(&mut self, dst: Option<LocalId>, callee: &Callee, args: &[Operand]) {
        // Argument setup.
        let mut int_used = 0usize;
        let mut float_used = 0usize;
        let mut pushed = 0usize;
        for a in args {
            let is_float = match a {
                Operand::Local(l) => self.is_float_local(*l),
                Operand::Const(c) => c.ty().is_float(),
            };
            if is_float {
                if float_used < 6 {
                    let r = self.read_float(a, FSCRATCH);
                    self.emit(
                        Opcode::Movsd,
                        &[
                            MOperand::FReg(FARG_BASE + float_used as u8),
                            MOperand::FReg(r),
                        ],
                    );
                    float_used += 1;
                } else {
                    let r = self.read_float(a, FSCRATCH);
                    self.emit(Opcode::Push, &[MOperand::FReg(r)]);
                    pushed += 1;
                }
            } else if int_used < INT_ARG_SLOTS {
                let r = self.read_int(a, SCRATCH1);
                self.emit(
                    Opcode::Mov,
                    &[MOperand::Reg(ARG_BASE + int_used as u8), MOperand::Reg(r)],
                );
                int_used += 1;
            } else {
                let r = self.read_int(a, SCRATCH1);
                self.emit(Opcode::Push, &[MOperand::Reg(r)]);
                pushed += 1;
            }
        }
        // The call itself.
        let (ret_ty, sym) = match callee {
            Callee::Direct(t) => {
                let sym = SymRef::Func(t.index() as u32);
                self.calls.push(sym);
                self.emit(Opcode::Call, &[MOperand::Sym(sym)]);
                (self.m.function(*t).ret_ty, Some(sym))
            }
            Callee::Ext(e) => {
                let sym = SymRef::Ext(e.index() as u32);
                self.calls.push(sym);
                self.emit(Opcode::Call, &[MOperand::Sym(sym)]);
                (self.m.external(*e).ret_ty, Some(sym))
            }
            Callee::Indirect(p) => {
                let r = self.read_int(p, SCRATCH1);
                self.emit(Opcode::CallInd, &[MOperand::Reg(r)]);
                (
                    dst.map(|d| self.f.locals[d.index()]).unwrap_or(Type::Void),
                    None,
                )
            }
        };
        let _ = sym;
        // Stack cleanup.
        if pushed > 0 {
            self.emit(
                Opcode::Add,
                &[MOperand::Reg(17), MOperand::Imm(pushed as i64 * 8)],
            );
        }
        // Result.
        if let Some(d) = dst {
            if ret_ty.is_float() {
                self.write_float(d, XMM0);
            } else {
                self.write_int(d, RAX);
            }
        }
    }

    fn lower_inst(
        &mut self,
        bi: usize,
        ii: usize,
        inst: &Inst,
        alloca_offsets: &HashMap<(usize, usize), i32>,
    ) {
        match inst {
            Inst::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                if ty.is_float() {
                    let rl = self.read_float(lhs, XMM0);
                    if rl != XMM0 {
                        self.emit(Opcode::Movsd, &[MOperand::FReg(XMM0), MOperand::FReg(rl)]);
                    }
                    let rr = self.read_float(rhs, FSCRATCH);
                    let opc = match op {
                        BinOp::FAdd => Opcode::Addsd,
                        BinOp::FSub => Opcode::Subsd,
                        BinOp::FMul => Opcode::Mulsd,
                        BinOp::FDiv => Opcode::Divsd,
                        _ => unreachable!("int op on float type"),
                    };
                    self.emit(opc, &[MOperand::FReg(XMM0), MOperand::FReg(rr)]);
                    self.write_float(*dst, XMM0);
                    return;
                }
                let rl = self.read_int(lhs, SCRATCH1);
                if rl != SCRATCH1 {
                    self.emit(Opcode::Mov, &[MOperand::Reg(SCRATCH1), MOperand::Reg(rl)]);
                }
                // Immediate form when rhs is constant (realistic encoding).
                let rhs_op = match rhs.as_const() {
                    Some(Const::Int { value, .. }) => MOperand::Imm(value),
                    _ => MOperand::Reg(self.read_int(rhs, SCRATCH2)),
                };
                let opc = match op {
                    BinOp::Add => Opcode::Add,
                    BinOp::Sub => Opcode::Sub,
                    BinOp::Mul => Opcode::Imul,
                    BinOp::SDiv | BinOp::SRem => Opcode::Idiv,
                    BinOp::UDiv | BinOp::URem => Opcode::Div,
                    BinOp::And => Opcode::And,
                    BinOp::Or => Opcode::Or,
                    BinOp::Xor => Opcode::Xor,
                    BinOp::Shl => Opcode::Shl,
                    BinOp::LShr => Opcode::Shr,
                    BinOp::AShr => Opcode::Sar,
                    _ => unreachable!("float op on int type"),
                };
                self.emit(opc, &[MOperand::Reg(SCRATCH1), rhs_op]);
                self.write_int(*dst, SCRATCH1);
            }
            Inst::Un { op, ty, dst, src } => {
                if ty.is_float() {
                    let r = self.read_float(src, XMM0);
                    self.emit(Opcode::Xorps, &[MOperand::FReg(r), MOperand::FReg(r)]);
                    self.write_float(*dst, r);
                    return;
                }
                let r = self.read_int(src, SCRATCH1);
                if r != SCRATCH1 {
                    self.emit(Opcode::Mov, &[MOperand::Reg(SCRATCH1), MOperand::Reg(r)]);
                }
                let opc = match op {
                    UnOp::Neg => Opcode::Neg,
                    UnOp::Not => Opcode::Not,
                    UnOp::FNeg => unreachable!("fneg on int"),
                };
                self.emit(opc, &[MOperand::Reg(SCRATCH1)]);
                self.write_int(*dst, SCRATCH1);
            }
            Inst::Cmp {
                ty,
                dst,
                lhs,
                rhs,
                pred,
            } => {
                if ty.is_float() {
                    let rl = self.read_float(lhs, XMM0);
                    let rr = self.read_float(rhs, FSCRATCH);
                    self.emit(Opcode::Ucomisd, &[MOperand::FReg(rl), MOperand::FReg(rr)]);
                } else {
                    let rl = self.read_int(lhs, SCRATCH1);
                    let rhs_op = match rhs.as_const() {
                        Some(Const::Int { value, .. }) => MOperand::Imm(value),
                        _ => MOperand::Reg(self.read_int(rhs, SCRATCH2)),
                    };
                    self.emit(Opcode::Cmp, &[MOperand::Reg(rl), rhs_op]);
                }
                let _ = pred;
                self.emit(Opcode::Setcc, &[MOperand::Reg(SCRATCH1)]);
                self.write_int(*dst, SCRATCH1);
            }
            Inst::Select {
                ty,
                dst,
                cond,
                on_true,
                on_false,
            } => {
                if ty.is_float() {
                    // Lower via two moves + cmov-equivalent on the bits.
                    let rf = self.read_float(on_false, XMM0);
                    self.write_float(*dst, rf);
                    let rc = self.read_int(cond, SCRATCH1);
                    self.emit(Opcode::Test, &[MOperand::Reg(rc), MOperand::Reg(rc)]);
                    let rt = self.read_float(on_true, FSCRATCH);
                    self.emit(Opcode::Cmov, &[MOperand::FReg(XMM0), MOperand::FReg(rt)]);
                    self.write_float(*dst, XMM0);
                    return;
                }
                let rf = self.read_int(on_false, SCRATCH1);
                if rf != SCRATCH1 {
                    self.emit(Opcode::Mov, &[MOperand::Reg(SCRATCH1), MOperand::Reg(rf)]);
                }
                let rc = self.read_int(cond, SCRATCH2);
                self.emit(Opcode::Test, &[MOperand::Reg(rc), MOperand::Reg(rc)]);
                let rt = self.read_int(on_true, SCRATCH2);
                self.emit(Opcode::Cmov, &[MOperand::Reg(SCRATCH1), MOperand::Reg(rt)]);
                self.write_int(*dst, SCRATCH1);
            }
            Inst::Copy { ty, dst, src } => {
                if ty.is_float() {
                    let r = self.read_float(src, XMM0);
                    self.write_float(*dst, r);
                } else {
                    match src.as_const() {
                        Some(Const::Int { value, .. }) => {
                            self.emit(
                                Opcode::MovImm,
                                &[MOperand::Reg(SCRATCH1), MOperand::Imm(value)],
                            );
                            self.write_int(*dst, SCRATCH1);
                        }
                        _ => {
                            let r = self.read_int(src, SCRATCH1);
                            self.write_int(*dst, r);
                        }
                    }
                }
            }
            Inst::Cast {
                kind,
                dst,
                src,
                from,
                to,
            } => {
                let opc = match kind {
                    CastKind::Trunc | CastKind::PtrToInt | CastKind::IntToPtr => Opcode::Mov,
                    CastKind::ZExt => Opcode::Movzx,
                    CastKind::SExt => Opcode::Movsx,
                    CastKind::FpToSi => Opcode::Cvttsd2si,
                    CastKind::SiToFp => Opcode::Cvtsi2sd,
                    CastKind::FpTrunc => Opcode::Cvtsd2ss,
                    CastKind::FpExt => Opcode::Cvtss2sd,
                };
                match (from.is_float(), to.is_float()) {
                    (false, false) => {
                        let r = self.read_int(src, SCRATCH1);
                        self.emit(opc, &[MOperand::Reg(SCRATCH1), MOperand::Reg(r)]);
                        self.write_int(*dst, SCRATCH1);
                    }
                    (true, false) => {
                        let r = self.read_float(src, XMM0);
                        self.emit(opc, &[MOperand::Reg(SCRATCH1), MOperand::FReg(r)]);
                        self.write_int(*dst, SCRATCH1);
                    }
                    (false, true) => {
                        let r = self.read_int(src, SCRATCH1);
                        self.emit(opc, &[MOperand::FReg(XMM0), MOperand::Reg(r)]);
                        self.write_float(*dst, XMM0);
                    }
                    (true, true) => {
                        let r = self.read_float(src, XMM0);
                        self.emit(opc, &[MOperand::FReg(XMM0), MOperand::FReg(r)]);
                        self.write_float(*dst, XMM0);
                    }
                }
            }
            Inst::Load { ty, dst, addr } => {
                let ra = self.read_int(addr, SCRATCH1);
                if ty.is_float() {
                    self.emit(
                        Opcode::Movsd,
                        &[
                            MOperand::FReg(XMM0),
                            MOperand::Mem {
                                base: ra,
                                offset: 0,
                            },
                        ],
                    );
                    self.write_float(*dst, XMM0);
                } else {
                    self.emit(
                        Opcode::Load,
                        &[
                            MOperand::Reg(SCRATCH2),
                            MOperand::Mem {
                                base: ra,
                                offset: 0,
                            },
                        ],
                    );
                    self.write_int(*dst, SCRATCH2);
                }
            }
            Inst::Store { ty, addr, value } => {
                let ra = self.read_int(addr, SCRATCH1);
                if ty.is_float() {
                    let rv = self.read_float(value, XMM0);
                    self.emit(
                        Opcode::Movsd,
                        &[
                            MOperand::Mem {
                                base: ra,
                                offset: 0,
                            },
                            MOperand::FReg(rv),
                        ],
                    );
                } else {
                    let rv = self.read_int(value, SCRATCH2);
                    self.emit(
                        Opcode::Store,
                        &[
                            MOperand::Mem {
                                base: ra,
                                offset: 0,
                            },
                            MOperand::Reg(rv),
                        ],
                    );
                }
            }
            Inst::Alloca { dst, .. } => {
                let off = alloca_offsets[&(bi, ii)];
                self.emit(
                    Opcode::Lea,
                    &[
                        MOperand::Reg(SCRATCH1),
                        MOperand::Mem {
                            base: RBP,
                            offset: off,
                        },
                    ],
                );
                self.write_int(*dst, SCRATCH1);
            }
            Inst::PtrAdd { dst, base, offset } => match offset.as_const() {
                Some(Const::Int { value, .. }) => {
                    let rb = self.read_int(base, SCRATCH1);
                    self.emit(
                        Opcode::Lea,
                        &[
                            MOperand::Reg(SCRATCH1),
                            MOperand::Mem {
                                base: rb,
                                offset: value as i32,
                            },
                        ],
                    );
                    self.write_int(*dst, SCRATCH1);
                }
                _ => {
                    let rb = self.read_int(base, SCRATCH1);
                    if rb != SCRATCH1 {
                        self.emit(Opcode::Mov, &[MOperand::Reg(SCRATCH1), MOperand::Reg(rb)]);
                    }
                    let ro = self.read_int(offset, SCRATCH2);
                    self.emit(Opcode::Add, &[MOperand::Reg(SCRATCH1), MOperand::Reg(ro)]);
                    self.write_int(*dst, SCRATCH1);
                }
            },
            Inst::Call { dst, callee, args } => self.lower_call(*dst, callee, args),
            Inst::FuncAddr { dst, func } => {
                self.emit(
                    Opcode::Lea,
                    &[
                        MOperand::Reg(SCRATCH1),
                        MOperand::Sym(SymRef::Func(func.index() as u32)),
                    ],
                );
                self.write_int(*dst, SCRATCH1);
            }
            Inst::GlobalAddr { dst, global } => {
                self.emit(
                    Opcode::Lea,
                    &[
                        MOperand::Reg(SCRATCH1),
                        MOperand::Sym(SymRef::Global(global.index() as u32)),
                    ],
                );
                self.write_int(*dst, SCRATCH1);
            }
        }
    }

    fn lower_term(&mut self, term: &Term) {
        match term {
            Term::Jump(t) => {
                self.emit(Opcode::Jmp, &[MOperand::Label(t.index() as u32)]);
            }
            Term::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let rc = self.read_int(cond, SCRATCH1);
                self.emit(Opcode::Test, &[MOperand::Reg(rc), MOperand::Reg(rc)]);
                self.emit(Opcode::Jcc, &[MOperand::Label(then_bb.index() as u32)]);
                self.emit(Opcode::Jmp, &[MOperand::Label(else_bb.index() as u32)]);
            }
            Term::Switch {
                value,
                cases,
                default,
                ..
            } => {
                let rv = self.read_int(value, SCRATCH1);
                for (cv, t) in cases {
                    self.emit(Opcode::Cmp, &[MOperand::Reg(rv), MOperand::Imm(*cv)]);
                    self.emit(Opcode::Jcc, &[MOperand::Label(t.index() as u32)]);
                }
                self.emit(Opcode::Jmp, &[MOperand::Label(default.index() as u32)]);
            }
            Term::Ret(v) => {
                if let Some(v) = v {
                    if self.f.ret_ty.is_float() {
                        let r = self.read_float(v, XMM0);
                        if r != XMM0 {
                            self.emit(Opcode::Movsd, &[MOperand::FReg(XMM0), MOperand::FReg(r)]);
                        }
                    } else {
                        let r = self.read_int(v, RAX);
                        if r != RAX {
                            self.emit(Opcode::Mov, &[MOperand::Reg(RAX), MOperand::Reg(r)]);
                        }
                    }
                }
                // Epilogue.
                if self.frame_size > 0 {
                    self.emit(
                        Opcode::Add,
                        &[MOperand::Reg(17), MOperand::Imm(self.frame_size as i64)],
                    );
                }
                self.emit(Opcode::Pop, &[MOperand::Reg(RBP)]);
                self.emit(Opcode::Ret, &[]);
            }
            Term::Invoke {
                dst,
                callee,
                args,
                normal,
                ..
            } => {
                self.lower_call(*dst, callee, args);
                self.emit(Opcode::Jmp, &[MOperand::Label(normal.index() as u32)]);
            }
            Term::Unreachable => {
                self.emit(Opcode::Nop, &[]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode_histogram;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::CmpPred;

    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let p = m.declare_external(khaos_ir::ExtFunc {
            name: "print_i64".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
            variadic: false,
        });
        let mut callee = FunctionBuilder::new("helper", Type::I64);
        let mut args = Vec::new();
        for _ in 0..8 {
            args.push(callee.add_param(Type::I64));
        }
        let s = callee.bin(
            BinOp::Add,
            Type::I64,
            Operand::local(args[0]),
            Operand::local(args[7]),
        );
        callee.ret(Some(Operand::local(s)));
        let cid = m.push_function(callee.finish());

        let mut main = FunctionBuilder::new("main", Type::I64);
        let one = Operand::const_int(Type::I64, 1);
        let r = main.call(cid, Type::I64, vec![one; 8]).unwrap();
        main.call_ext(p, Type::Void, vec![Operand::local(r)]);
        let fp = main.funcaddr(cid);
        let fpi = main.cast(CastKind::PtrToInt, Operand::local(fp), Type::Ptr, Type::I64);
        let t = main.new_block();
        let e = main.new_block();
        let c = main.cmp(
            CmpPred::Sgt,
            Type::I64,
            Operand::local(fpi),
            Operand::const_int(Type::I64, 0),
        );
        main.branch(Operand::local(c), t, e);
        main.switch_to(t);
        main.ret(Some(Operand::local(r)));
        main.switch_to(e);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);
        m
    }

    #[test]
    fn lowers_whole_module() {
        let m = sample_module();
        let b = lower_module(&m);
        assert_eq!(b.functions.len(), 2);
        assert_eq!(b.functions[1].name.as_deref(), Some("main"));
        assert_eq!(b.functions[1].blocks.len(), 3);
        // Entry block of main calls helper and print.
        assert_eq!(b.functions[1].blocks[0].calls.len(), 2);
        assert!(b.inst_count() > 20);
    }

    #[test]
    fn eight_args_produce_stack_pushes() {
        let m = sample_module();
        let b = lower_module(&m);
        let h = opcode_histogram(&b);
        // 2 args beyond the 6 register slots + prologue pushes.
        assert!(
            h[&Opcode::Push] >= 2 + 2,
            "stack-passed arguments visible: {h:?}"
        );
    }

    #[test]
    fn cfg_edges_preserved() {
        let m = sample_module();
        let b = lower_module(&m);
        let main = &b.functions[1];
        assert_eq!(main.blocks[0].succs, vec![1, 2]);
        assert_eq!(main.edge_count(), 2);
        assert_eq!(main.call_count(), 2);
    }

    #[test]
    fn params_beyond_regs_spill_from_stack() {
        // 8-param function: prologue moves 6 register args; params 7-8
        // are already in memory (no move emitted for them).
        let m = sample_module();
        let b = lower_module(&m);
        let helper = &b.functions[0];
        let prologue_movs = helper.blocks[0]
            .insts
            .iter()
            .filter(|i| {
                matches!(i.opcode, Opcode::Mov | Opcode::Store)
                    && matches!(i.operands(&helper.operand_pool).get(1), Some(MOperand::Reg(r)) if (ARG_BASE..ARG_BASE + 6).contains(r))
            })
            .count();
        assert_eq!(prologue_movs, 6);
    }

    #[test]
    fn relocations_carry_addends() {
        let mut m = Module::new("t");
        let mut f = FunctionBuilder::new("f", Type::Void);
        f.ret(None);
        let fid = m.push_function(f.finish());
        m.push_global(khaos_ir::Global {
            name: "tbl".into(),
            init: vec![GInit::FuncPtr {
                func: fid,
                addend: 12,
            }],
            align: 8,
            exported: false,
        });
        let b = lower_module(&m);
        assert_eq!(b.relocations.len(), 1);
        assert_eq!(b.relocations[0].addend, 12, "fusion tag rides the addend");
    }

    #[test]
    fn float_code_uses_xmm_opcodes() {
        let mut m = Module::new("t");
        let mut f = FunctionBuilder::new("fsum", Type::F64);
        let a = f.add_param(Type::F64);
        let b_ = f.add_param(Type::F64);
        let s = f.bin(
            BinOp::FAdd,
            Type::F64,
            Operand::local(a),
            Operand::local(b_),
        );
        let d = f.bin(
            BinOp::FDiv,
            Type::F64,
            Operand::local(s),
            Operand::const_float(Type::F64, 2.0),
        );
        f.ret(Some(Operand::local(d)));
        m.push_function(f.finish());
        let b = lower_module(&m);
        let h = opcode_histogram(&b);
        assert!(h.contains_key(&Opcode::Addsd));
        assert!(h.contains_key(&Opcode::Divsd));
        assert!(h.contains_key(&Opcode::Movsd));
    }
}
