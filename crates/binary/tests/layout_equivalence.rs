//! Seed-equivalence pins for the flat operand-pool layout.
//!
//! The operand-pool refactor changed how `MInst` *stores* operands
//! (ranges into `BinFunction::operand_pool` instead of a `Vec` per
//! instruction) but must not change anything the diffing tools — or the
//! `khaos-diff` embedding cache — can observe. Two observables are
//! pinned here against digests captured from the **seed layout** (the
//! nested-`Vec` representation, commit `471c5e6`), for every workload
//! suite this repo evaluates on:
//!
//! * `Binary::fingerprint()` — every embedding-cache key minted before
//!   the refactor must stay valid, so the digest must be byte-for-byte
//!   identical;
//! * `MInst::display(pool)` — the printed instruction stream feeds
//!   human-facing dumps and must render exactly what the old
//!   `Display for MInst` rendered.
//!
//! If either constant changes, treat it as a **cache-key-breaking
//! event** (like `Pipeline::fingerprint` changes): it means the layout
//! refactor leaked into observable behaviour.

use khaos_binary::lower_module;
use khaos_ir::Module;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// (fingerprint chain, display chain, instruction count) over a suite:
/// FNV-1a over each lowered binary's fingerprint LE bytes, and over
/// every instruction's rendered text + `\n` in layout order.
fn suite_digests(modules: &[Module]) -> (u64, u64, usize) {
    let mut fp_chain: u64 = 0xcbf29ce484222325;
    let mut disp_chain: u64 = 0xcbf29ce484222325;
    let mut insts = 0usize;
    let mut line = String::new();
    for m in modules {
        let b = lower_module(m);
        fp_chain = fnv(fp_chain, &b.fingerprint().to_le_bytes());
        for f in &b.functions {
            for blk in &f.blocks {
                for i in &blk.insts {
                    use std::fmt::Write;
                    line.clear();
                    write!(line, "{}", i.display(&f.operand_pool)).expect("write to String");
                    disp_chain = fnv(disp_chain, line.as_bytes());
                    disp_chain = fnv(disp_chain, b"\n");
                    insts += 1;
                }
            }
        }
    }
    (fp_chain, disp_chain, insts)
}

/// Digests captured from the seed (nested-operand) layout. Columns:
/// suite, fingerprint chain, display chain, instruction count.
const SEED_DIGESTS: [(&str, u64, u64, usize); 4] = [
    ("spec2006", 0xae15c74d094a50d4, 0x1ea503a56b32a337, 156169),
    ("spec2017", 0x85884207956f96df, 0x53861c169c1d2641, 262208),
    ("coreutils", 0x4d463b1da74c9e95, 0x10f99f62834e239e, 303810),
    ("tiii", 0x873d96ea08c3c021, 0x49cb0e0b164ccfe1, 274319),
];

fn check_suite(name: &str, modules: &[Module]) {
    let (fp, disp, insts) = suite_digests(modules);
    let (_, want_fp, want_disp, want_insts) = *SEED_DIGESTS
        .iter()
        .find(|(n, ..)| *n == name)
        .expect("suite has a pinned digest");
    assert_eq!(
        insts, want_insts,
        "{name}: instruction count drifted from the seed lowering"
    );
    assert_eq!(
        fp, want_fp,
        "{name}: Binary::fingerprint() digests changed — embedding-cache keys broken"
    );
    assert_eq!(
        disp, want_disp,
        "{name}: MInst display output changed across the operand-pool refactor"
    );
}

#[test]
fn spec2006_fingerprints_and_display_match_seed() {
    check_suite("spec2006", &khaos_workloads::spec2006());
}

#[test]
fn spec2017_fingerprints_and_display_match_seed() {
    check_suite("spec2017", &khaos_workloads::spec2017());
}

#[test]
fn coreutils_fingerprints_and_display_match_seed() {
    check_suite("coreutils", &khaos_workloads::coreutils());
}

#[test]
fn tiii_fingerprints_and_display_match_seed() {
    check_suite("tiii", &khaos_workloads::tiii());
}

/// The pool layout itself must be tight for the lowered suites: every
/// instruction's range in bounds, ranges non-overlapping and in
/// emission order within a function (the lowering allocates
/// append-only), so traversal really is a forward scan of one
/// contiguous buffer.
#[test]
fn lowered_pools_are_dense_and_ordered() {
    for m in khaos_workloads::tiii() {
        let b = lower_module(&m);
        for f in &b.functions {
            let mut cursor = 0u32;
            let mut covered = 0usize;
            for blk in &f.blocks {
                for i in &blk.insts {
                    let r = i.operand_range;
                    assert!(
                        r.start >= cursor,
                        "{}: ranges out of emission order",
                        m.name
                    );
                    assert!(
                        (r.start + r.len) as usize <= f.operand_pool.len(),
                        "{}: range out of bounds",
                        m.name
                    );
                    cursor = r.start + r.len;
                    covered += r.len as usize;
                }
            }
            assert_eq!(
                covered,
                f.operand_pool.len(),
                "{}: pool has dead entries after lowering",
                m.name
            );
        }
    }
}
