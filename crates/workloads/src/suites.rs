//! The concrete benchmark suites (T-I, T-II, T-III).

use crate::generator::{generate, generate_with_vulnerable, ProgramProfile};
use khaos_ir::Module;

fn profile(name: &str, seed: u64) -> ProgramProfile {
    ProgramProfile { name: name.into(), seed, ..ProgramProfile::default() }
}

/// T-I part 1: the 19 SPEC CPU 2006 C/C++ programs of Figure 6, with
/// per-program shape profiles echoing the real benchmarks' character.
pub fn spec2006() -> Vec<Module> {
    let mut out = Vec::new();
    let specs: [(&str, usize, usize, f64, f64, u32); 19] = [
        // (name, functions, constructs, loop_rate, float_rate, work)
        ("400.perlbench", 56, 7, 0.25, 0.05, 24),
        ("401.bzip2", 24, 6, 0.45, 0.05, 40),
        ("403.gcc", 72, 8, 0.20, 0.05, 16),
        ("429.mcf", 16, 5, 0.50, 0.05, 48),
        ("433.milc", 28, 6, 0.45, 0.55, 32),
        ("444.namd", 26, 6, 0.40, 0.60, 32),
        ("445.gobmk", 48, 7, 0.30, 0.05, 24),
        ("447.dealII", 40, 6, 0.35, 0.50, 24),
        ("450.soplex", 36, 6, 0.35, 0.45, 24),
        ("453.povray", 44, 6, 0.30, 0.60, 24),
        ("456.hmmer", 26, 6, 0.50, 0.15, 40),
        ("458.sjeng", 30, 6, 0.35, 0.05, 32),
        ("462.libquantum", 14, 5, 0.50, 0.25, 48),
        ("464.h264ref", 42, 7, 0.45, 0.20, 24),
        ("470.lbm", 10, 5, 0.60, 0.50, 64),
        ("471.omnetpp", 44, 6, 0.25, 0.10, 24),
        ("473.astar", 18, 5, 0.45, 0.20, 40),
        ("482.sphinx3", 30, 6, 0.40, 0.45, 32),
        ("483.xalancbmk", 64, 7, 0.20, 0.05, 16),
    ];
    for (i, (name, functions, constructs, loop_rate, float_rate, work)) in
        specs.into_iter().enumerate()
    {
        let mut p = profile(name, 0x2006 + i as u64);
        p.functions = functions;
        p.constructs = constructs;
        p.loop_rate = loop_rate;
        p.float_rate = float_rate;
        p.work_scale = work;
        p.exceptions = matches!(
            name,
            "447.dealII" | "450.soplex" | "453.povray" | "471.omnetpp" | "483.xalancbmk"
        );
        out.push(generate(&p));
    }
    out
}

/// T-I part 2: the 28 SPEC CPU 2017 C/C++ programs of Figure 6.
pub fn spec2017() -> Vec<Module> {
    let names: [&str; 28] = [
        "500.perlbench_r",
        "502.gcc_r",
        "505.mcf_r",
        "508.namd_r",
        "510.parest_r",
        "511.povray_r",
        "519.lbm_r",
        "520.omnetpp_r",
        "523.xalancbmk_r",
        "525.x264_r",
        "526.blender_r",
        "531.deepsjeng_r",
        "538.imagick_r",
        "541.leela_r",
        "544.nab_r",
        "557.xz_r",
        "600.perlbench_s",
        "602.gcc_s",
        "605.mcf_s",
        "619.lbm_s",
        "620.omnetpp_s",
        "623.xalancbmk_s",
        "625.x264_s",
        "631.deepsjeng_s",
        "638.imagick_s",
        "641.leela_s",
        "644.nab_s",
        "657.xz_s",
    ];
    names
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            let mut p = profile(name, 0x2017 + i as u64);
            // Base shape on the benchmark family.
            let family = name.split('.').nth(1).unwrap_or(name);
            let family = family.trim_end_matches("_r").trim_end_matches("_s");
            let (functions, constructs, loop_rate, float_rate, work) = match family {
                "perlbench" => (58, 7, 0.25, 0.05, 20),
                "gcc" => (76, 8, 0.20, 0.05, 14),
                "mcf" => (16, 5, 0.50, 0.05, 48),
                "namd" => (26, 6, 0.40, 0.60, 32),
                "parest" => (48, 6, 0.35, 0.50, 20),
                "povray" => (44, 6, 0.30, 0.60, 24),
                "lbm" => (10, 5, 0.60, 0.50, 64),
                "omnetpp" => (46, 6, 0.25, 0.10, 20),
                "xalancbmk" => (64, 7, 0.20, 0.05, 16),
                "x264" => (40, 7, 0.45, 0.20, 24),
                "blender" => (70, 7, 0.30, 0.45, 14),
                "deepsjeng" => (28, 6, 0.35, 0.05, 32),
                "imagick" => (44, 6, 0.40, 0.50, 20),
                "leela" => (30, 6, 0.35, 0.15, 28),
                "nab" => (22, 6, 0.45, 0.50, 32),
                "xz" => (24, 6, 0.45, 0.05, 36),
                _ => (30, 6, 0.35, 0.15, 24),
            };
            p.functions = functions;
            p.constructs = constructs;
            p.loop_rate = loop_rate;
            p.float_rate = float_rate;
            p.work_scale = work;
            p.exceptions = matches!(family, "parest" | "povray" | "omnetpp" | "xalancbmk" | "blender" | "leela");
            generate(&p)
        })
        .collect()
}

/// The 108 CoreUtils 8.32 tool names (T-II).
pub const COREUTILS_NAMES: [&str; 108] = [
    "arch", "b2sum", "base32", "base64", "basename", "basenc", "cat", "chcon", "chgrp", "chmod",
    "chown", "chroot", "cksum", "comm", "cp", "csplit", "cut", "date", "dd", "df", "dir",
    "dircolors", "dirname", "du", "echo", "env", "expand", "expr", "factor", "false", "fmt",
    "fold", "groups", "head", "hostid", "id", "install", "join", "kill", "link", "ln", "logname",
    "ls", "md5sum", "mkdir", "mkfifo", "mknod", "mktemp", "mv", "nice", "nl", "nohup", "nproc",
    "numfmt", "od", "paste", "pathchk", "pinky", "pr", "printenv", "printf", "ptx", "pwd",
    "readlink", "realpath", "rm", "rmdir", "runcon", "seq", "sha1sum", "sha224sum", "sha256sum",
    "sha384sum", "sha512sum", "shred", "shuf", "sleep", "sort", "split", "stat", "stdbuf", "stty",
    "sum", "sync", "tac", "tail", "tee", "test", "timeout", "touch", "tr", "true", "truncate",
    "tsort", "tty", "uname", "unexpand", "uniq", "unlink", "uptime", "users", "vdir", "wc", "who",
    "whoami", "yes", "shuffle_mix", "digest_mix",
];

/// One CoreUtils-sized program.
pub fn coreutils_program(name: &str, seed: u64) -> Module {
    let mut p = profile(name, 0xC0DE + seed);
    let h = name.bytes().fold(7u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
    p.functions = 8 + (h % 12) as usize; // 8..19 functions
    p.constructs = 4 + (h % 3) as usize;
    p.loop_rate = 0.35;
    p.float_rate = if h % 5 == 0 { 0.2 } else { 0.0 };
    p.table_size = if h % 3 == 0 { 3 } else { 0 };
    p.exceptions = false;
    p.setjmp = h % 7 == 0; // a handful use setjmp, as real coreutils do
    p.globals = 2 + (h % 3) as usize;
    p.work_scale = 24;
    generate(&p)
}

/// T-II: all 108 CoreUtils stand-ins.
pub fn coreutils() -> Vec<Module> {
    COREUTILS_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| coreutils_program(name, i as u64))
        .collect()
}

/// Table 3: program → (vulnerable function, CVE) list.
pub const TIII_CVES: &[(&str, &[(&str, &str)])] = &[
    ("jerryscript", &[("opfunc_spread_arguments", "CVE-2020-13991")]),
    ("quickjs", &[("compute_stack_size_rec", "CVE-2020-22876")]),
    (
        "busybox-1.33.1",
        &[("getvar_s", "CVE-2021-42382"), ("handle_special", "CVE-2021-42384")],
    ),
    (
        "openssl-1.1.1",
        &[("init_sig_algs", "CVE-2021-3449"), ("EC_GROUP_set_generator", "CVE-2019-1547")],
    ),
    (
        "libcurl-7.34.0",
        &[
            ("suboption", "CVE-2021-22925,CVE-2021-22898"),
            ("init_wc_data", "CVE-2020-8285"),
            ("conn_is_conn", "CVE-2020-8231"),
            ("tftp_connect", "CVE-2019-5482,CVE-2019-5436"),
            ("ftp_state_list", "CVE-2018-1000120"),
            ("alloc_addbyter", "CVE-2016-8618"),
            ("Curl_cookie_getlist", "CVE-2016-8623"),
            ("ConnectionExists", "CVE-2016-8616,CVE-2016-0755,CVE-2014-0138,CVE-2015-3143"),
        ],
    ),
];

/// T-III: the five vulnerable embedded-software stand-ins.
pub fn tiii() -> Vec<Module> {
    TIII_CVES
        .iter()
        .enumerate()
        .map(|(i, (name, funcs))| {
            let mut p = profile(name, 0x111 + i as u64);
            // Real embedded binaries carry hundreds of functions; the
            // escape@k metric only means something when the top-50 is a
            // small fraction of the candidate pool.
            let (functions, constructs, loops) = match *name {
                "jerryscript" => (200, 7, 0.30),
                "quickjs" => (190, 7, 0.30),
                "busybox-1.33.1" => (230, 6, 0.35),
                "openssl-1.1.1" => (260, 6, 0.30),
                _ => (280, 6, 0.30), // libcurl
            };
            p.functions = functions;
            p.constructs = constructs;
            p.loop_rate = loops;
            p.float_rate = 0.05;
            p.table_size = 4;
            p.exceptions = *name == "jerryscript" || *name == "quickjs";
            p.setjmp = *name == "quickjs"; // real QuickJS uses setjmp-style error paths
            p.work_scale = 16;
            let vuln_names: Vec<&str> = funcs.iter().map(|(f, _)| *f).collect();
            generate_with_vulnerable(&p, &vuln_names)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_vm::run_to_completion;

    #[test]
    fn coreutils_names_are_unique() {
        let mut names: Vec<&str> = COREUTILS_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 108);
    }

    #[test]
    fn tiii_programs_run() {
        for m in tiii() {
            khaos_ir::verify::assert_valid(&m);
            run_to_completion(&m, &[2]).unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn spec2017_profiles_differ_by_family() {
        let progs = spec2017();
        let gcc = progs.iter().find(|m| m.name == "502.gcc_r").unwrap();
        let lbm = progs.iter().find(|m| m.name == "519.lbm_r").unwrap();
        assert!(gcc.functions.len() > lbm.functions.len() * 3);
    }
}
