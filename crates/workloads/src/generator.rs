//! The seeded program generator.

use khaos_ir::builder::FunctionBuilder;
use khaos_ir::{
    BinOp, Callee, CastKind, CmpPred, ExtFunc, ExtId, FuncId, GInit, Global, Module, Operand, Type,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for one synthetic program.
#[derive(Clone, Debug)]
pub struct ProgramProfile {
    /// Program (module/binary) name.
    pub name: String,
    /// Number of worker functions (before `main` and helpers).
    pub functions: usize,
    /// Average body complexity: structured constructs per function.
    pub constructs: usize,
    /// Probability a construct is a loop (hot code).
    pub loop_rate: f64,
    /// Probability a function gets an early-return cold path.
    pub cold_path_rate: f64,
    /// Calls emitted per function body (to later functions).
    pub call_density: f64,
    /// Fraction of functions that are float-flavoured.
    pub float_rate: f64,
    /// Probability a function works on a stack buffer.
    pub memory_rate: f64,
    /// Number of functions published in the indirect-call table
    /// (0 disables indirect calls).
    pub table_size: usize,
    /// Include the invoke/landing-pad (C++ EH) pair.
    pub exceptions: bool,
    /// Include the setjmp/longjmp pair.
    pub setjmp: bool,
    /// Fraction of functions that self-recurse (depth-bounded).
    pub recursion_rate: f64,
    /// Fraction of exported (API) functions.
    pub exported_rate: f64,
    /// Number of global variables.
    pub globals: usize,
    /// Iterations of `main`'s driver loop (scales simulated runtime).
    pub work_scale: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProgramProfile {
    fn default() -> Self {
        ProgramProfile {
            name: "program".into(),
            functions: 24,
            constructs: 6,
            loop_rate: 0.3,
            cold_path_rate: 0.6,
            call_density: 1.5,
            float_rate: 0.2,
            memory_rate: 0.5,
            table_size: 4,
            exceptions: true,
            setjmp: false,
            recursion_rate: 0.1,
            exported_rate: 0.15,
            globals: 4,
            work_scale: 40,
            seed: 1,
        }
    }
}

struct Externs {
    print_i64: ExtId,
    printf: ExtId,
    input: ExtId,
    throw_exc: ExtId,
    setjmp: ExtId,
    longjmp: ExtId,
}

fn declare_externs(m: &mut Module) -> Externs {
    let e = |m: &mut Module, name: &str, params: Vec<Type>, ret: Type, variadic: bool| {
        m.declare_external(ExtFunc { name: name.into(), params, ret_ty: ret, variadic })
    };
    Externs {
        print_i64: e(m, "print_i64", vec![Type::I64], Type::Void, false),
        printf: e(m, "printf", vec![Type::Ptr], Type::I32, true),
        input: e(m, "input_i64", vec![], Type::I64, false),
        throw_exc: e(m, "throw_exc", vec![Type::I64], Type::Void, false),
        setjmp: e(m, "setjmp", vec![Type::Ptr], Type::I32, false),
        longjmp: e(m, "longjmp", vec![Type::Ptr, Type::I32], Type::Void, false),
    }
}

/// Per-function body builder state.
struct BodyGen<'a> {
    fb: FunctionBuilder,
    rng: &'a mut StdRng,
    /// Initialized integer locals available as operands.
    ints: Vec<khaos_ir::LocalId>,
    /// Initialized float locals.
    floats: Vec<khaos_ir::LocalId>,
    /// Stack buffer (pointer local, size) when present.
    buffer: Option<(khaos_ir::LocalId, u32)>,
    /// Globals available (id, size).
    globals: Vec<(khaos_ir::GlobalId, u32)>,
}

impl<'a> BodyGen<'a> {
    fn int_operand(&mut self) -> Operand {
        if self.ints.is_empty() || self.rng.gen_bool(0.3) {
            // A small house pool of constants: real programs reuse the
            // same masks and small literals everywhere.
            let pool = [0i64, 1, 2, 4, 8, 15, 16, 31, 255];
            Operand::const_int(Type::I64, pool[self.rng.gen_range(0..pool.len())])
        } else {
            Operand::local(self.ints[self.rng.gen_range(0..self.ints.len())])
        }
    }

    fn float_operand(&mut self) -> Operand {
        if self.floats.is_empty() || self.rng.gen_bool(0.3) {
            Operand::const_float(Type::F64, self.rng.gen_range(-8.0..8.0))
        } else {
            Operand::local(self.floats[self.rng.gen_range(0..self.floats.len())])
        }
    }

    /// A handful of integer ALU operations.
    fn arith(&mut self, count: usize) {
        for _ in 0..count {
            let op = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Xor,
                BinOp::And,
                BinOp::Or,
                BinOp::Shl,
                BinOp::AShr,
            ][self.rng.gen_range(0..8)];
            let a = self.int_operand();
            let b = match op {
                // Keep shifts in range.
                BinOp::Shl | BinOp::AShr => Operand::const_int(Type::I64, self.rng.gen_range(0..8)),
                _ => self.int_operand(),
            };
            let r = self.fb.bin(op, Type::I64, a, b);
            self.ints.push(r);
        }
    }

    /// A guarded division (divisor forced odd, so never zero).
    fn division(&mut self) {
        let a = self.int_operand();
        let d0 = self.int_operand();
        let odd = self.fb.bin(BinOp::Or, Type::I64, d0, Operand::const_int(Type::I64, 1));
        let r = self.fb.bin(BinOp::SDiv, Type::I64, a, Operand::local(odd));
        self.ints.push(r);
    }

    fn float_arith(&mut self, count: usize) {
        for _ in 0..count {
            let op = [BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FDiv][self.rng.gen_range(0..4)];
            let a = self.float_operand();
            let b = self.float_operand();
            let r = self.fb.bin(op, Type::F64, a, b);
            self.floats.push(r);
        }
    }

    /// Read-modify-write on the stack buffer at a masked offset.
    fn memory_op(&mut self) {
        let Some((buf, size)) = self.buffer else { return };
        let slots = (size / 8) as i64;
        if self.rng.gen_bool(0.5) {
            // Constant offset.
            let off = self.rng.gen_range(0..slots) * 8;
            let p = self.fb.ptradd(Operand::local(buf), Operand::const_int(Type::I64, off));
            let v = self.fb.load(Type::I64, Operand::local(p));
            let addend = self.int_operand();
            let w = self.fb.bin(BinOp::Add, Type::I64, Operand::local(v), addend);
            self.fb.store(Type::I64, Operand::local(w), Operand::local(p));
            self.ints.push(w);
        } else {
            // Dynamic masked index.
            let i = self.int_operand();
            let masked = self.fb.bin(BinOp::And, Type::I64, i, Operand::const_int(Type::I64, slots - 1));
            let off = self.fb.bin(BinOp::Shl, Type::I64, Operand::local(masked), Operand::const_int(Type::I64, 3));
            let p = self.fb.ptradd(Operand::local(buf), Operand::local(off));
            let v = self.fb.load(Type::I64, Operand::local(p));
            let value = self.int_operand();
            self.fb.store(Type::I64, value, Operand::local(p));
            self.ints.push(v);
        }
    }

    /// Read-modify-write on a random global.
    fn global_op(&mut self) {
        if self.globals.is_empty() {
            return;
        }
        let (g, size) = self.globals[self.rng.gen_range(0..self.globals.len())];
        let slots = (size / 8).max(1) as i64;
        let off = self.rng.gen_range(0..slots) * 8;
        let ga = self.fb.globaladdr(g);
        let p = self.fb.ptradd(Operand::local(ga), Operand::const_int(Type::I64, off));
        let v = self.fb.load(Type::I64, Operand::local(p));
        let mask = self.int_operand();
        let w = self.fb.bin(BinOp::Xor, Type::I64, Operand::local(v), mask);
        self.fb.store(Type::I64, Operand::local(w), Operand::local(p));
        self.ints.push(v);
    }

    /// if/else diamond; arms may early-return.
    fn if_else(&mut self, ret_ty: Type, depth: usize) {
        let a = self.int_operand();
        let b = self.int_operand();
        let pred = [CmpPred::Slt, CmpPred::Sgt, CmpPred::Eq, CmpPred::Ne][self.rng.gen_range(0..4)];
        let c = self.fb.cmp(pred, Type::I64, a, b);
        let then_bb = self.fb.new_block();
        let else_bb = self.fb.new_block();
        let join = self.fb.new_block();
        self.fb.branch(Operand::local(c), then_bb, else_bb);

        self.fb.switch_to(then_bb);
        { let n = self.rng.gen_range(1..3); self.arith(n); }
        if depth > 0 && self.rng.gen_bool(0.3) {
            self.if_else(ret_ty, depth - 1);
        }
        if self.rng.gen_bool(0.25) {
            let v = self.ret_value(ret_ty);
            self.fb.ret(v);
        } else {
            self.fb.jump(join);
        }

        self.fb.switch_to(else_bb);
        { let n = self.rng.gen_range(1..3); self.arith(n); }
        self.fb.jump(join);
        self.fb.switch_to(join);
    }

    /// Bounded counting loop with a small body.
    fn bounded_loop(&mut self, depth: usize) {
        let bound = self.rng.gen_range(4..=12i64);
        let i = self.fb.new_local(Type::I64);
        self.fb.copy_to(i, Operand::const_int(Type::I64, 0));
        let head = self.fb.new_block();
        let body = self.fb.new_block();
        let exit = self.fb.new_block();
        self.fb.jump(head);
        self.fb.switch_to(head);
        let c = self.fb.cmp(CmpPred::Slt, Type::I64, Operand::local(i), Operand::const_int(Type::I64, bound));
        self.fb.branch(Operand::local(c), body, exit);
        self.fb.switch_to(body);
        self.ints.push(i);
        { let n = self.rng.gen_range(1..4); self.arith(n); }
        // Real hot loops are memory-bound; keep the simulated ones so too.
        self.memory_op();
        if self.rng.gen_bool(0.5) {
            self.memory_op();
        }
        if self.rng.gen_bool(0.3) {
            self.global_op();
        }
        if depth > 0 && self.rng.gen_bool(0.25) {
            self.bounded_loop(depth - 1);
        }
        let ni = self.fb.bin(BinOp::Add, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
        self.fb.copy_to(i, Operand::local(ni));
        self.fb.jump(head);
        self.fb.switch_to(exit);
    }

    /// Multi-way dispatch.
    fn switch_construct(&mut self) {
        let v = self.int_operand();
        let masked = self.fb.bin(BinOp::And, Type::I64, v, Operand::const_int(Type::I64, 3));
        let cases = self.rng.gen_range(2..=3usize);
        let blocks: Vec<_> = (0..cases).map(|_| self.fb.new_block()).collect();
        let default = self.fb.new_block();
        let join = self.fb.new_block();
        self.fb.switch(
            Type::I64,
            Operand::local(masked),
            blocks.iter().enumerate().map(|(k, b)| (k as i64, *b)).collect(),
            default,
        );
        for b in &blocks {
            self.fb.switch_to(*b);
            { let n = self.rng.gen_range(1..3); self.arith(n); }
            self.fb.jump(join);
        }
        self.fb.switch_to(default);
        self.arith(1);
        self.fb.jump(join);
        self.fb.switch_to(join);
    }

    fn ret_value(&mut self, ret_ty: Type) -> Option<Operand> {
        match ret_ty {
            Type::Void => None,
            Type::F64 => {
                let v = self.float_operand();
                Some(v)
            }
            Type::I64 => Some(self.int_operand()),
            Type::I32 => {
                let v = self.int_operand();
                let t = self.fb.cast(CastKind::Trunc, v, Type::I64, Type::I32);
                Some(Operand::local(t))
            }
            other => unreachable!("unsupported return type {other}"),
        }
    }
}

/// One worker function's interface.
#[derive(Clone, Debug)]
struct FnPlan {
    name: String,
    params: Vec<Type>,
    ret: Type,
    recursive: bool,
    exported: bool,
    float_flavoured: bool,
    vulnerable: bool,
}

/// Builds the module for `profile`.
pub fn generate(profile: &ProgramProfile) -> Module {
    generate_with_vulnerable(profile, &[])
}

/// [`generate`], additionally planting functions with the given names
/// that are annotated `"vulnerable"` (Table 3 stand-ins).
pub fn generate_with_vulnerable(profile: &ProgramProfile, vulnerable: &[&str]) -> Module {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut m = Module::new(profile.name.clone());
    let ext = declare_externs(&mut m);

    // Globals.
    let mut globals = Vec::new();
    for gi in 0..profile.globals {
        let size = [8u32, 16, 32, 64][rng.gen_range(0..4)];
        let id = m.push_global(Global {
            name: format!("g_state_{gi}"),
            init: vec![GInit::Int { value: rng.gen_range(0..100), ty: Type::I64 }, GInit::Zero(size.saturating_sub(8))],
            align: 8,
            exported: false,
        });
        globals.push((id, size));
    }
    // printf format string.
    let fmt = m.push_global(Global {
        name: "fmt_result".into(),
        init: vec![GInit::Bytes(b"result %ld\n\0".to_vec())],
        align: 1,
        exported: false,
    });

    // ---- Plan the worker functions. ----
    let total = profile.functions.max(vulnerable.len() + 2);
    let mut plans: Vec<FnPlan> = Vec::with_capacity(total);
    // Table members need a uniform (i64) -> i64 signature.
    let table_members: Vec<usize> = if profile.table_size > 0 {
        (0..profile.table_size.min(total / 2).max(1)).map(|k| k * 2).collect()
    } else {
        Vec::new()
    };
    for i in 0..total {
        let in_table = table_members.contains(&i);
        let vulnerable_name = vulnerable.get(i).copied();
        let float_flavoured = !in_table && rng.gen_bool(profile.float_rate);
        let nparams = if in_table { 1 } else { rng.gen_range(1..=4usize) };
        let mut params = vec![Type::I64];
        for _ in 1..nparams {
            params.push(if float_flavoured && rng.gen_bool(0.5) {
                Type::F64
            } else if rng.gen_bool(0.3) {
                Type::I32
            } else {
                Type::I64
            });
        }
        let ret = if in_table {
            Type::I64
        } else if float_flavoured && rng.gen_bool(0.5) {
            Type::F64
        } else if rng.gen_bool(0.2) {
            Type::Void
        } else if rng.gen_bool(0.3) {
            Type::I32
        } else {
            Type::I64
        };
        plans.push(FnPlan {
            name: vulnerable_name
                .map(String::from)
                .unwrap_or_else(|| realistic_name(&mut rng, i)),
            params,
            ret,
            recursive: !in_table && rng.gen_bool(profile.recursion_rate),
            // Vulnerable third-party functions are library API: exported,
            // so whole-program optimization cannot discard them.
            exported: vulnerable_name.is_some() || rng.gen_bool(profile.exported_rate),
            float_flavoured,
            vulnerable: vulnerable_name.is_some(),
        });
    }

    // Reserve ids (bodies reference later functions by id).
    let ids: Vec<FuncId> = (0..total).map(FuncId::new).collect();

    // ---- Build the worker bodies. ----
    for (i, plan) in plans.iter().enumerate() {
        let mut fb = FunctionBuilder::new(&plan.name, plan.ret);
        let mut param_ids = Vec::new();
        for &t in &plan.params {
            param_ids.push(fb.add_param(t));
        }
        if plan.exported {
            fb.set_exported();
        }
        if plan.vulnerable {
            fb.annotate("vulnerable");
        }

        let mut g = BodyGen {
            fb,
            rng: &mut rng,
            ints: Vec::new(),
            floats: Vec::new(),
            buffer: None,
            globals: globals.clone(),
        };
        // Seed available operands from the parameters.
        for (k, &t) in plan.params.iter().enumerate() {
            match t {
                Type::I64 => g.ints.push(param_ids[k]),
                Type::F64 => g.floats.push(param_ids[k]),
                Type::I32 => {
                    let w = g.fb.cast(CastKind::SExt, Operand::local(param_ids[k]), Type::I32, Type::I64);
                    g.ints.push(w);
                }
                _ => {}
            }
        }
        if g.rng.gen_bool(profile.memory_rate) {
            let size = [32u32, 64][g.rng.gen_range(0..2)];
            let buf = g.fb.alloca(size);
            // Initialize every slot: reading uninitialized stack memory
            // would make program output depend on stale frame contents
            // (and thus on code layout), breaking differential testing.
            g.fb.store(Type::I64, Operand::local(param_ids[0]), Operand::local(buf));
            for slot in 1..(size / 8) as i64 {
                let p = g.fb.ptradd(Operand::local(buf), Operand::const_int(Type::I64, slot * 8));
                g.fb.store(Type::I64, Operand::const_int(Type::I64, slot), Operand::local(p));
            }
            g.buffer = Some((buf, size));
        }

        // Recursion: depth-bounded self call on a masked counter.
        if plan.recursive {
            let d = g.fb.bin(
                BinOp::And,
                Type::I64,
                Operand::local(param_ids[0]),
                Operand::const_int(Type::I64, 7),
            );
            let base = g.fb.new_block();
            let rec = g.fb.new_block();
            let cont = g.fb.new_block();
            let c = g.fb.cmp(CmpPred::Sle, Type::I64, Operand::local(d), Operand::const_int(Type::I64, 0));
            g.fb.branch(Operand::local(c), base, rec);
            g.fb.switch_to(base);
            g.fb.jump(cont);
            g.fb.switch_to(rec);
            let dm1 = g.fb.bin(BinOp::Sub, Type::I64, Operand::local(d), Operand::const_int(Type::I64, 1));
            let mut args: Vec<Operand> = vec![Operand::local(dm1)];
            for &t in plan.params.iter().skip(1) {
                args.push(Operand::Const(khaos_ir::Const::zero(t)));
            }
            let r = g.fb.call(ids[i], plan.ret, args);
            if let (Some(r), Type::I64) = (r, plan.ret) {
                g.ints.push(r);
            }
            g.fb.jump(cont);
            g.fb.switch_to(cont);
        }

        // Cold early-return path.
        if g.rng.gen_bool(profile.cold_path_rate) {
            let c = g.fb.cmp(
                CmpPred::Sgt,
                Type::I64,
                Operand::local(param_ids[0]),
                Operand::const_int(Type::I64, 1 << 40),
            );
            let cold1 = g.fb.new_block();
            let cold2 = g.fb.new_block();
            let warm = g.fb.new_block();
            g.fb.branch(Operand::local(c), cold1, warm);
            g.fb.switch_to(cold1);
            g.arith(2);
            g.global_op();
            g.fb.jump(cold2);
            g.fb.switch_to(cold2);
            g.arith(2);
            let v = g.ret_value(plan.ret);
            g.fb.ret(v);
            g.fb.switch_to(warm);
        }

        // Main body constructs. Real codebases are stylistically uniform —
        // most functions follow one of a few shapes (check, loop over
        // data, update state, return). Drawing the construct sequence
        // from a small set of house patterns (instead of independently
        // random picks) reproduces that self-similarity, which is what
        // makes nearest-neighbour function matching brittle in practice.
        let constructs = profile.constructs.max(1);
        // House style: one dominant pattern per program, with a minority
        // of functions deviating.
        let pattern = if g.rng.gen_bool(0.75) {
            (profile.seed % 4) as u8
        } else {
            g.rng.gen_range(0..4u8)
        };
        for ci in 0..constructs {
            let kind = match (pattern, ci % 4) {
                (0, 0) | (1, 1) | (2, 2) => 0u8, // loop
                (0, 1) | (1, 2) | (3, 0) => 1,   // if/else
                (0, 2) | (2, 0) | (3, 2) => 2,   // memory + global
                (1, 0) | (2, 3) | (3, 3) => 3,   // switch
                _ => 4,                          // arithmetic
            };
            let roll: f64 = g.rng.gen();
            match kind {
                0 if roll < profile.loop_rate + 0.5 => g.bounded_loop(1),
                1 => g.if_else(plan.ret, 1),
                2 => {
                    g.memory_op();
                    g.global_op();
                }
                3 if roll < 0.6 => g.switch_construct(),
                3 => g.division(),
                _ if plan.float_flavoured => g.float_arith(2),
                _ => g.arith(2),
            }
            // Calls into later functions (forward DAG, no accidental cycles).
            if g.rng.gen_bool((profile.call_density / constructs as f64).min(0.9)) && i + 1 < total
            {
                let callee = g.rng.gen_range(i + 1..total);
                let cp = plans[callee].clone();
                let mut args = Vec::new();
                for (k, &t) in cp.params.iter().enumerate() {
                    match t {
                        Type::I64 => {
                            // First arg doubles as depth/work for callees.
                            let raw = g.int_operand();
                            let masked = g.fb.bin(
                                BinOp::And,
                                Type::I64,
                                raw,
                                Operand::const_int(Type::I64, 63),
                            );
                            let _ = k;
                            args.push(Operand::local(masked));
                        }
                        Type::I32 => {
                            let raw = g.int_operand();
                            let t32 = g.fb.cast(CastKind::Trunc, raw, Type::I64, Type::I32);
                            args.push(Operand::local(t32));
                        }
                        Type::F64 => args.push(g.float_operand()),
                        other => unreachable!("unplanned param type {other}"),
                    }
                }
                let r = g.fb.call(ids[callee], cp.ret, args);
                match (r, cp.ret) {
                    (Some(r), Type::I64) => g.ints.push(r),
                    (Some(r), Type::I32) => {
                        let w = g.fb.cast(CastKind::SExt, Operand::local(r), Type::I32, Type::I64);
                        g.ints.push(w);
                    }
                    (Some(r), Type::F64) => g.floats.push(r),
                    _ => {}
                }
            }
        }

        // Fold available values into the return.
        let mut acc = g.fb.iconst(Type::I64, 0x9e37);
        let folds = g.ints.len().min(4);
        for k in 0..folds {
            let v = g.ints[g.ints.len() - 1 - k];
            acc = g.fb.bin(BinOp::Xor, Type::I64, Operand::local(acc), Operand::local(v));
        }
        if !g.floats.is_empty() && plan.ret == Type::F64 {
            let v = g.float_operand();
            g.fb.ret(Some(v));
        } else {
            match plan.ret {
                Type::Void => g.fb.ret(None),
                Type::I64 => g.fb.ret(Some(Operand::local(acc))),
                Type::I32 => {
                    let t = g.fb.cast(CastKind::Trunc, Operand::local(acc), Type::I64, Type::I32);
                    g.fb.ret(Some(Operand::local(t)));
                }
                Type::F64 => {
                    let f = g.fb.cast(CastKind::SiToFp, Operand::local(acc), Type::I64, Type::F64);
                    g.fb.ret(Some(Operand::local(f)));
                }
                other => unreachable!("unsupported return type {other}"),
            }
        }
        let id = m.push_function(g.fb.finish());
        debug_assert_eq!(id, ids[i]);
    }

    // ---- Indirect-call table + dispatcher. ----
    let mut dispatcher: Option<FuncId> = None;
    if !table_members.is_empty() {
        let tbl = m.push_global(Global {
            name: "fn_table".into(),
            init: table_members
                .iter()
                .map(|&k| GInit::FuncPtr { func: ids[k], addend: 0 })
                .collect(),
            align: 8,
            exported: false,
        });
        let n = table_members.len() as i64;
        let mut fb = FunctionBuilder::new("dispatch", Type::I64);
        let sel = fb.add_param(Type::I64);
        let ga = fb.globaladdr(tbl);
        // Power-of-two table? Use modulo via masked compare chain instead:
        // idx = sel % n  (n odd-safe via srem; n > 0 constant).
        let idx = fb.bin(BinOp::SRem, Type::I64, Operand::local(sel), Operand::const_int(Type::I64, n));
        let pos = fb.bin(BinOp::Mul, Type::I64, Operand::local(idx), Operand::const_int(Type::I64, 8));
        // srem can be negative; take abs via masking to [0, n): add n, rem again.
        let shifted = fb.bin(BinOp::Add, Type::I64, Operand::local(pos), Operand::const_int(Type::I64, (n - 1) * 8));
        let wrapped = fb.bin(
            BinOp::SRem,
            Type::I64,
            Operand::local(shifted),
            Operand::const_int(Type::I64, n * 8),
        );
        let p = fb.ptradd(Operand::local(ga), Operand::local(wrapped));
        let fp = fb.load(Type::Ptr, Operand::local(p));
        let arg = fb.bin(BinOp::And, Type::I64, Operand::local(sel), Operand::const_int(Type::I64, 31));
        let r = fb.call_indirect(Operand::local(fp), Type::I64, vec![Operand::local(arg)]).expect("i64 ret");
        fb.ret(Some(Operand::local(r)));
        dispatcher = Some(m.push_function(fb.finish()));
    }

    // ---- EH pair. ----
    let mut guard: Option<FuncId> = None;
    if profile.exceptions {
        let mut th = FunctionBuilder::new("may_throw", Type::Void);
        let x = th.add_param(Type::I64);
        let yes = th.new_block();
        let no = th.new_block();
        let masked = th.bin(BinOp::And, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 15));
        let c = th.cmp(CmpPred::Eq, Type::I64, Operand::local(masked), Operand::const_int(Type::I64, 3));
        th.branch(Operand::local(c), yes, no);
        th.switch_to(yes);
        th.call_ext(ext.throw_exc, Type::Void, vec![Operand::local(x)]);
        th.ret(None);
        th.switch_to(no);
        th.ret(None);
        let thrower = m.push_function(th.finish());

        let mut gd = FunctionBuilder::new("guarded_call", Type::I64);
        let x = gd.add_param(Type::I64);
        let exc = gd.new_local(Type::I64);
        let normal = gd.new_block();
        let pad = gd.new_pad_block(Some(exc));
        gd.invoke(Callee::Direct(thrower), Type::Void, vec![Operand::local(x)], normal, pad);
        gd.switch_to(normal);
        let ok = gd.bin(BinOp::Add, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 1));
        gd.ret(Some(Operand::local(ok)));
        gd.switch_to(pad);
        let neg = gd.un(khaos_ir::UnOp::Neg, Type::I64, Operand::local(exc));
        gd.ret(Some(Operand::local(neg)));
        guard = Some(m.push_function(gd.finish()));
    }

    // ---- setjmp pair. ----
    let mut sj_entry: Option<FuncId> = None;
    if profile.setjmp {
        // jumper(buf, x): if (x & 7) == 5 longjmp(buf, x | 1)
        let mut jp = FunctionBuilder::new("maybe_longjmp", Type::Void);
        let buf = jp.add_param(Type::Ptr);
        let x = jp.add_param(Type::I64);
        let yes = jp.new_block();
        let no = jp.new_block();
        let masked = jp.bin(BinOp::And, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 7));
        let c = jp.cmp(CmpPred::Eq, Type::I64, Operand::local(masked), Operand::const_int(Type::I64, 5));
        jp.branch(Operand::local(c), yes, no);
        jp.switch_to(yes);
        let val = jp.bin(BinOp::Or, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 1));
        let v32 = jp.cast(CastKind::Trunc, Operand::local(val), Type::I64, Type::I32);
        jp.call_ext(ext.longjmp, Type::Void, vec![Operand::local(buf), Operand::local(v32)]);
        jp.ret(None);
        jp.switch_to(no);
        jp.ret(None);
        let jumper = m.push_function(jp.finish());

        let mut sj = FunctionBuilder::new("checkpoint", Type::I64);
        let x = sj.add_param(Type::I64);
        let buf = sj.alloca(8);
        let r = sj.call_ext(ext.setjmp, Type::I32, vec![Operand::local(buf)]).expect("i32");
        let first = sj.new_block();
        let resumed = sj.new_block();
        let c = sj.cmp(CmpPred::Eq, Type::I32, Operand::local(r), Operand::const_int(Type::I32, 0));
        sj.branch(Operand::local(c), first, resumed);
        sj.switch_to(first);
        sj.call(jumper, Type::Void, vec![Operand::local(buf), Operand::local(x)]);
        sj.ret(Some(Operand::const_int(Type::I64, 0)));
        sj.switch_to(resumed);
        let w = sj.cast(CastKind::SExt, Operand::local(r), Type::I32, Type::I64);
        sj.ret(Some(Operand::local(w)));
        sj_entry = Some(m.push_function(sj.finish()));
    }

    // ---- main: the driver loop. ----
    let mut mb = FunctionBuilder::new("main", Type::I64);
    mb.set_exported();
    let acc = mb.new_local(Type::I64);
    let i = mb.new_local(Type::I64);
    mb.copy_to(acc, Operand::const_int(Type::I64, 0));
    mb.copy_to(i, Operand::const_int(Type::I64, 0));
    let seed_in = mb.call_ext(ext.input, Type::I64, vec![]).expect("i64");
    let head = mb.new_block();
    let body = mb.new_block();
    let tail = mb.new_block();
    mb.jump(head);
    mb.switch_to(head);
    let c = mb.cmp(
        CmpPred::Slt,
        Type::I64,
        Operand::local(i),
        Operand::const_int(Type::I64, profile.work_scale as i64),
    );
    mb.branch(Operand::local(c), body, tail);
    mb.switch_to(body);
    // Rotate over the first few workers.
    let roots: Vec<usize> = (0..total.min(4)).collect();
    let mixed = mb.bin(BinOp::Add, Type::I64, Operand::local(i), Operand::local(seed_in));
    for &r in &roots {
        let plan = &plans[r];
        let mut args = Vec::new();
        for (k, &t) in plan.params.iter().enumerate() {
            match t {
                Type::I64 => {
                    let a = mb.bin(
                        BinOp::And,
                        Type::I64,
                        Operand::local(mixed),
                        Operand::const_int(Type::I64, 63 - k as i64),
                    );
                    args.push(Operand::local(a));
                }
                Type::I32 => {
                    let a = mb.cast(CastKind::Trunc, Operand::local(mixed), Type::I64, Type::I32);
                    args.push(Operand::local(a));
                }
                Type::F64 => {
                    let a = mb.cast(CastKind::SiToFp, Operand::local(mixed), Type::I64, Type::F64);
                    args.push(Operand::local(a));
                }
                other => unreachable!("unplanned param type {other}"),
            }
        }
        let ret = mb.call(ids[r], plan.ret, args);
        match (ret, plan.ret) {
            (Some(v), Type::I64) => {
                let nx = mb.bin(BinOp::Xor, Type::I64, Operand::local(acc), Operand::local(v));
                mb.copy_to(acc, Operand::local(nx));
            }
            (Some(v), Type::I32) => {
                let w = mb.cast(CastKind::SExt, Operand::local(v), Type::I32, Type::I64);
                let nx = mb.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(w));
                mb.copy_to(acc, Operand::local(nx));
            }
            (Some(v), Type::F64) => {
                let w = mb.cast(CastKind::FpToSi, Operand::local(v), Type::F64, Type::I64);
                let nx = mb.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(w));
                mb.copy_to(acc, Operand::local(nx));
            }
            _ => {}
        }
    }
    if let Some(d) = dispatcher {
        let r = mb.call(d, Type::I64, vec![Operand::local(mixed)]).expect("i64");
        let nx = mb.bin(BinOp::Xor, Type::I64, Operand::local(acc), Operand::local(r));
        mb.copy_to(acc, Operand::local(nx));
    }
    if let Some(gd) = guard {
        let r = mb.call(gd, Type::I64, vec![Operand::local(mixed)]).expect("i64");
        let nx = mb.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(r));
        mb.copy_to(acc, Operand::local(nx));
    }
    if let Some(sj) = sj_entry {
        let r = mb.call(sj, Type::I64, vec![Operand::local(mixed)]).expect("i64");
        let nx = mb.bin(BinOp::Xor, Type::I64, Operand::local(acc), Operand::local(r));
        mb.copy_to(acc, Operand::local(nx));
    }
    let ni = mb.bin(BinOp::Add, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
    mb.copy_to(i, Operand::local(ni));
    mb.jump(head);
    mb.switch_to(tail);
    mb.call_ext(ext.print_i64, Type::Void, vec![Operand::local(acc)]);
    let fp = mb.globaladdr(fmt);
    mb.call_ext(ext.printf, Type::I32, vec![Operand::local(fp), Operand::local(acc)]);
    mb.ret(Some(Operand::local(acc)));
    m.push_function(mb.finish());

    debug_assert!(
        khaos_ir::verify::verify_module(&m).is_ok(),
        "generator produced invalid module `{}`: {:?}",
        profile.name,
        khaos_ir::verify::verify_module(&m).err()
    );
    m
}

/// Plausible C-style function names (real binaries have diverse symbol
/// names; a shared prefix would make name-based matching artificially
/// hard or easy).
fn realistic_name(rng: &mut StdRng, index: usize) -> String {
    const VERBS: [&str; 24] = [
        "parse", "read", "write", "init", "update", "compute", "hash", "alloc", "release",
        "check", "scan", "emit", "load", "store", "merge", "split", "encode", "decode", "open",
        "find", "insert", "remove", "copy", "flush",
    ];
    const NOUNS: [&str; 20] = [
        "buffer", "node", "table", "state", "block", "header", "record", "queue", "tree",
        "cache", "stream", "chunk", "page", "index", "token", "frame", "entry", "list", "map",
        "field",
    ];
    let v = VERBS[rng.gen_range(0..VERBS.len())];
    let n = NOUNS[rng.gen_range(0..NOUNS.len())];
    // The index suffix keeps names unique within a module.
    format!("{v}_{n}_{index}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_vm::run_to_completion;

    #[test]
    fn default_profile_builds_valid_runnable_module() {
        let m = generate(&ProgramProfile::default());
        khaos_ir::verify::assert_valid(&m);
        let r = run_to_completion(&m, &[7]).expect("runs");
        assert!(!r.output.is_empty());
    }

    #[test]
    fn vulnerable_functions_are_planted() {
        let m = generate_with_vulnerable(
            &ProgramProfile { name: "vuln".into(), ..Default::default() },
            &["bad_memcpy", "bad_parse"],
        );
        for n in ["bad_memcpy", "bad_parse"] {
            let (_, f) = m.function_by_name(n).expect("planted");
            assert!(f.has_annotation("vulnerable"));
        }
    }

    #[test]
    fn setjmp_profile_runs() {
        let p = ProgramProfile { setjmp: true, seed: 5, ..Default::default() };
        let m = generate(&p);
        khaos_ir::verify::assert_valid(&m);
        run_to_completion(&m, &[3]).expect("setjmp workload runs");
    }

    #[test]
    fn work_scale_scales_cycles() {
        let small = generate(&ProgramProfile { work_scale: 10, ..Default::default() });
        let big = generate(&ProgramProfile { work_scale: 100, ..Default::default() });
        let rs = run_to_completion(&small, &[1]).unwrap();
        let rb = run_to_completion(&big, &[1]).unwrap();
        assert!(rb.cycles > rs.cycles * 5, "{} !> {}", rb.cycles, rs.cycles * 5);
    }

    #[test]
    fn different_seeds_different_programs() {
        let a = generate(&ProgramProfile { seed: 1, ..Default::default() });
        let b = generate(&ProgramProfile { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }
}
