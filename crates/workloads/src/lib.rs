//! # khaos-workloads — synthetic benchmark suites
//!
//! Seeded generators producing KIR programs that stand in for the paper's
//! test suites:
//!
//! * **T-I** — [`spec2006`] (19 programs) and [`spec2017`] (28 programs),
//!   named after the C/C++ SPEC CPU benchmarks of Figure 6, each with a
//!   size/shape profile matching its real counterpart's character
//!   (`gcc`-alikes are big and branchy, `lbm`-alikes are small and
//!   loop-hot, `povray`-alikes are float-heavy…);
//! * **T-II** — [`coreutils`]: 108 small utility programs;
//! * **T-III** — [`tiii`]: five vulnerable-program stand-ins whose
//!   functions carry the names from the paper's Table 3, annotated
//!   `"vulnerable"` for the escape@k experiment.
//!
//! Every program is fully deterministic, terminates quickly under the VM,
//! and exercises the features the obfuscator must handle: loops, cold
//! paths, multiple returns, arrays, globals, direct/indirect/recursive
//! calls, C++-style exception edges, `setjmp`/`longjmp` and a variadic
//! `printf`.

mod generator;
mod suites;

pub use generator::{generate, ProgramProfile};
pub use suites::{coreutils, coreutils_program, spec2006, spec2017, tiii, TIII_CVES};

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_vm::run_to_completion;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(spec2006().len(), 19);
        assert_eq!(spec2017().len(), 28);
        assert_eq!(coreutils().len(), 108);
        assert_eq!(tiii().len(), 5);
    }

    #[test]
    fn all_tiii_vulnerable_functions_present() {
        let programs = tiii();
        let mut found = 0;
        for (prog, funcs) in TIII_CVES {
            let module = programs
                .iter()
                .find(|m| m.name == *prog)
                .unwrap_or_else(|| panic!("program {prog} missing"));
            for (fname, _cve) in *funcs {
                let (_, f) = module
                    .function_by_name(fname)
                    .unwrap_or_else(|| panic!("{prog}: function {fname} missing"));
                assert!(f.has_annotation("vulnerable"), "{prog}:{fname} must be marked");
                found += 1;
            }
        }
        assert_eq!(found, 14, "Table 3 lists 14 vulnerable functions");
    }

    #[test]
    fn a_spec_program_verifies_and_runs() {
        let m = &spec2006()[3]; // 429.mcf — mid-size
        khaos_ir::verify::assert_valid(m);
        let r = run_to_completion(m, &[]).expect("program runs");
        assert!(!r.output.is_empty(), "programs print observable output");
        assert!(r.steps > 1_000, "non-trivial execution");
    }

    #[test]
    fn coreutils_programs_are_small_and_runnable() {
        let m = coreutils_program("cat", 3);
        khaos_ir::verify::assert_valid(&m);
        assert!(m.functions.len() <= 24);
        let r = run_to_completion(&m, &[]).expect("runs");
        assert!(!r.output.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = coreutils_program("ls", 1);
        let b = coreutils_program("ls", 1);
        assert_eq!(a, b);
        let r1 = run_to_completion(&a, &[]).unwrap();
        let r2 = run_to_completion(&b, &[]).unwrap();
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.cycles, r2.cycles);
    }
}
