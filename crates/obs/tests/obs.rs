//! khaos-obs battery: histogram bucket boundaries, snapshot exactness
//! under concurrent `khaos-par` writers, and span-tree well-formedness
//! over fuzzed nesting programs.

use khaos_obs::metrics::{bucket_bounds, bucket_index, Histogram, NUM_BUCKETS};
use khaos_obs::{trace, Registry};
use proptest::prelude::*;
use std::sync::Mutex;

/// Tracer state is process-global; tests that install a sink
/// serialize here (and the file keeps one tracer test per `#[test]`
/// anyway — this guards against future additions racing).
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic value stream for fuzz-style tests (the proptest shim
/// has no `vec` strategy, so sequences derive from sampled seeds).
fn mix(seed: u64, i: u64) -> u64 {
    let mut x = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Every value lands in a bucket whose bounds contain it, and the
    /// log-scale buckets stay within 25% relative width (quarter
    /// octaves: width = 2^(e-2), lower bound ≥ 2^e).
    #[test]
    fn bucket_contains_value_and_width_is_bounded(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {idx} = [{lo}, {hi}]");
        if v >= 16 {
            prop_assert!(
                (hi - lo) as f64 <= 0.25 * lo as f64,
                "bucket {idx} = [{lo}, {hi}] wider than a quarter octave"
            );
        } else {
            prop_assert_eq!((lo, hi), (v, v), "values below 16 bucket exactly");
        }
    }

    /// A reported quantile is exactly the upper bound of the bucket
    /// holding the true rank-order sample: deterministic, and never
    /// below the true quantile.
    #[test]
    fn quantiles_are_bucket_upper_bounds_of_true_ranks(seed in any::<u64>(), n in 1u64..300) {
        let h = Histogram::default();
        let mut values: Vec<u64> = (0..n)
            // Spread across the full log scale: shift by a derived
            // amount so small and huge samples mix in one histogram.
            .map(|i| mix(seed, i) >> (mix(seed, i ^ 0xABCD) % 64))
            .collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        prop_assert_eq!(s.count, n);
        prop_assert_eq!(s.max, *values.last().unwrap(), "max is exact, not bucketed");
        for (q, got) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let truth = values[rank as usize - 1];
            let want = bucket_bounds(bucket_index(truth)).1;
            prop_assert_eq!(got, want, "q={} rank={} truth={}", q, rank, truth);
            prop_assert!(got >= truth, "quantile under-reports: {got} < {truth}");
        }
    }
}

/// After concurrent `khaos-par` writers quiesce, the snapshot is
/// exact: count, sum, max, and bucket totals all agree with the
/// recorded samples, at any `KHAOS_THREADS`.
#[test]
fn snapshot_is_exact_after_concurrent_writers() {
    let r = Registry::new();
    let h = r.histogram("t.lat");
    let c = r.counter("t.events");
    const N: usize = 4096;
    khaos_par::par_map(N, |i| {
        // Every worker records through clones of the same handles.
        h.record(i as u64);
        c.inc();
    });
    assert_eq!(c.get(), N as u64);
    let s = h.snapshot();
    assert_eq!(s.count, N as u64);
    assert_eq!(s.sum, (N as u64 - 1) * N as u64 / 2);
    assert_eq!(s.max, N as u64 - 1);
    // The quantile estimates bound the true order statistics from
    // above by construction (samples here are 0..N, so the true
    // quantiles are known exactly).
    assert!(s.p50 >= (N / 2) as u64 - 1 && s.p50 <= (N as u64) * 5 / 8);
    // And a second snapshot with no writers in between is identical.
    assert_eq!(h.snapshot(), s, "snapshot must be stable once quiesced");
}

/// One parsed trace event (just the fields the tree checks need).
#[derive(Debug)]
struct Ev {
    name: String,
    id: u64,
    parent: u64,
    ts: f64,
    dur: f64,
}

fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn field_f64(line: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect::<String>()
        .parse()
        .unwrap()
}

fn parse_events(text: &str) -> Vec<Ev> {
    text.lines()
        .map(|line| {
            assert!(
                line.contains("\"ph\":\"X\""),
                "not a complete event: {line}"
            );
            let name_at = line.find("\"name\":\"").expect("name") + 8;
            let name_end = line[name_at..].find('"').expect("name close") + name_at;
            Ev {
                name: line[name_at..name_end].to_string(),
                id: field_u64(line, "id"),
                parent: field_u64(line, "parent"),
                ts: field_f64(line, "ts"),
                dur: field_f64(line, "dur"),
            }
        })
        .collect()
}

/// Timestamps print at nanosecond resolution (µs with 3 decimals);
/// containment checks allow one rounding step per endpoint.
const ROUND_SLACK_US: f64 = 0.002;

fn assert_well_formed(events: &[Ev]) {
    let mut ids = std::collections::BTreeMap::new();
    for e in events {
        assert!(e.id != 0, "span ids are never zero");
        assert!(ids.insert(e.id, e).is_none(), "duplicate span id {}", e.id);
    }
    for e in events {
        if e.parent == 0 {
            continue;
        }
        let p = ids
            .get(&e.parent)
            .unwrap_or_else(|| panic!("span {} has unknown parent {}", e.id, e.parent));
        assert!(
            e.ts >= p.ts - ROUND_SLACK_US && e.ts + e.dur <= p.ts + p.dur + ROUND_SLACK_US,
            "child {} [{:.3}, {:.3}] escapes parent {} [{:.3}, {:.3}]",
            e.id,
            e.ts,
            e.ts + e.dur,
            p.id,
            p.ts,
            p.ts + p.dur,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Fuzzed nesting programs always export a well-formed span tree:
    /// unique non-zero ids, every parent resolves, child intervals
    /// nest inside their parents. Programs mix plain nesting, lazily
    /// named spans, and explicit `span_child_of` edges.
    #[test]
    fn fuzzed_span_programs_export_well_formed_trees(seed in any::<u64>(), steps in 1u64..60) {
        let _g = TRACE_LOCK.lock().unwrap();
        let was = trace::enabled();
        let path = std::env::temp_dir().join(format!(
            "khaos-obs-tree-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        trace::install(&path).expect("install trace sink");

        let mut open: Vec<khaos_obs::SpanGuard> = Vec::new();
        let mut created = 0u64;
        for i in 0..steps {
            let r = mix(seed, i);
            match r % 4 {
                // Push: three flavors of span creation.
                0 => open.push(khaos_obs::span("fixed")),
                1 => open.push(khaos_obs::span_with(|| format!("dyn-{i}"))),
                2 => {
                    // Explicit parent: any currently open span.
                    let parent = if open.is_empty() {
                        None
                    } else {
                        open[(r / 7) as usize % open.len()].id()
                    };
                    open.push(khaos_obs::span_child_of("linked", parent));
                }
                // Pop innermost (LIFO — the natural scoping).
                _ => {
                    open.pop();
                    continue;
                }
            }
            created += 1;
        }
        // Close everything, innermost first.
        while open.pop().is_some() {}
        trace::set_enabled(was);

        let text = std::fs::read_to_string(&path).expect("trace file");
        let events = parse_events(&text);
        prop_assert_eq!(events.len() as u64, created, "one event per span:\n{}", text);
        assert_well_formed(&events);
        let _ = std::fs::remove_file(&path);
    }
}

/// Spans created on `khaos-par` workers link to a parent on the
/// spawning thread via explicit ids, land on worker timeline lanes,
/// and still form a contained tree.
#[test]
fn worker_spans_parent_across_threads() {
    let _g = TRACE_LOCK.lock().unwrap();
    let was = trace::enabled();
    let path = std::env::temp_dir().join(format!("khaos-obs-workers-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    trace::install(&path).expect("install trace sink");

    let root = khaos_obs::span("batch");
    let parent = root.id();
    khaos_par::par_map(64, |i| {
        let _s = khaos_obs::span_child_of("item", parent);
        std::hint::black_box(i * 2)
    });
    drop(root);
    trace::set_enabled(was);

    let text = std::fs::read_to_string(&path).expect("trace file");
    let events = parse_events(&text);
    assert_eq!(events.len(), 65, "64 items + 1 root:\n{text}");
    assert_well_formed(&events);
    let root_ev = events.iter().find(|e| e.name == "batch").expect("root");
    for e in events.iter().filter(|e| e.name == "item") {
        assert_eq!(e.parent, root_ev.id, "explicit cross-thread edge");
    }
    let _ = std::fs::remove_file(&path);
}
