//! The workspace's one blessed stopwatch.
//!
//! Three timing idioms used to be hand-rolled in three places — the
//! `PassReport` stopwatch in `khaos-pass`, `time_ns_best` in
//! `bench_similarity`, and the serve dispatcher's request timing.
//! They now all route through here, so "how we measure" is defined
//! once: monotonic [`std::time::Instant`], nanosecond reads, and
//! best-of-N for benchmark repeatability.

use std::time::{Duration, Instant};

/// A started monotonic stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Restarts the stopwatch, returning the time elapsed before the
    /// restart (lap timing).
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.start;
        self.start = now;
        lap
    }
}

/// Runs `f` once and returns `(elapsed, result)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let sw = Stopwatch::start();
    let out = f();
    (sw.elapsed(), out)
}

/// Runs `f` once and returns `(elapsed nanoseconds, result)`.
pub fn time_ns<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let sw = Stopwatch::start();
    let out = f();
    (sw.elapsed_ns(), out)
}

/// Runs `f` `rounds` times and returns the **minimum** wall-clock
/// nanoseconds over the rounds plus the last result — the benchmark
/// idiom: the minimum is the least-noisy estimate of a deterministic
/// workload's cost. `rounds` is clamped to at least 1.
pub fn best_of_ns<R>(rounds: u32, mut f: impl FnMut() -> R) -> (f64, R) {
    let rounds = rounds.max(1);
    let (mut best, mut last) = time_ns(&mut f);
    for _ in 1..rounds {
        let (ns, out) = time_ns(&mut f);
        best = best.min(ns);
        last = out;
    }
    (best as f64, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances_and_laps() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(2), "{lap:?}");
        assert!(sw.elapsed() < lap, "lap must restart the clock");
        assert!(sw.elapsed_ns() > 0, "monotonic reads advance");
    }

    #[test]
    fn time_returns_result_and_elapsed() {
        let (dt, v) = time(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(dt >= Duration::ZERO);
        let (ns, v) = time_ns(|| "x");
        assert_eq!(v, "x");
        assert!(ns < u64::MAX);
    }

    #[test]
    fn best_of_is_min_over_rounds() {
        let mut calls = 0u32;
        let (best, last) = best_of_ns(5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(last, 5, "last round's result comes back");
        assert!(best >= 0.0);
        // Zero rounds clamps to one.
        let (_, one) = best_of_ns(0, || 1);
        assert_eq!(one, 1);
    }
}
