//! # khaos-obs — unified tracing, metrics, and self-profiling
//!
//! A dependency-free observability substrate for the whole workspace
//! (offline-shim discipline, like `khaos-par`): every layer — build
//! pipelines, the three-tier embedding cache, the artifact store, the
//! IVF index, and the TCP daemon — reports health through one shared
//! registry and one shared timeline instead of scattered ad-hoc
//! structs.
//!
//! The crate has three parts:
//!
//! * [`metrics`] — a process-wide [`metrics::Registry`] of named
//!   atomic [`metrics::Counter`]s, [`metrics::Gauge`]s, and
//!   fixed-bucket log-scale [`metrics::Histogram`]s with
//!   p50/p95/p99 snapshots. Layers pre-resolve their handles once
//!   (an `Arc` per metric) and update them with relaxed atomics, so
//!   counting is a handful of nanoseconds per event. `KHAOS_METRICS`
//!   selects an end-of-run dump target (see
//!   [`metrics::maybe_dump`]).
//! * [`trace`] — a span-based tracer: scoped RAII [`trace::SpanGuard`]s
//!   form a per-thread parent/child tree (cross-thread edges are
//!   linked explicitly, e.g. daemon request → dispatcher), stamped
//!   with `khaos-par` worker lane ids, and exported as Chrome
//!   trace-event JSONL when `KHAOS_TRACE=path` is set. When unset the
//!   whole tracer collapses to a single relaxed atomic load per
//!   span — the disabled path's overhead is bench-gated (see the
//!   `obs` section of `BENCH_similarity.json`).
//! * [`timer`] — the one blessed stopwatch: [`timer::Stopwatch`],
//!   [`timer::time`], and [`timer::best_of_ns`] subsume the
//!   hand-rolled timing idioms that used to live in `khaos-pass`
//!   (`PassReport`), `bench_similarity`, and the serve dispatcher.
//!
//! ## The standing invariant: observability never changes ranked bits
//!
//! Instrumentation is *pure observation*: counters, spans, and timers
//! may never influence any value on a ranked path. Tier-1 must pass
//! bit-identical with tracing on and off (CI's `obs` job runs the
//! suite both ways and diffs the output), exactly like the workspace's
//! thread-count and SIMD-dispatch invariance guarantees.
//!
//! ## Coordination telemetry
//!
//! The elastic shard coordinator reports through the same registry:
//! `store.lease.acquired` / `store.lease.stolen` /
//! `store.lease.contended` count cell-lease claims, stale-lease
//! steals, and claims lost to a live peer, and `store.merge.copied` /
//! `store.merge.skipped` count records a write-side `khaos-store
//! merge` moved vs found already present (the store's `store:merge`
//! span covers the verify-then-copy pass). A fleet-wide sweep's
//! health is readable from these five numbers: `stolen` > 0 means a
//! worker died (its units were redone), `contended` rising means
//! workers are racing over too-few open units near the end of a grid.
//!
//! ## Environment surface
//!
//! | variable        | effect |
//! |-----------------|--------|
//! | `KHAOS_TRACE`   | `path` — append Chrome trace-event JSONL there; `1`/`true` — default path `khaos-trace.jsonl`; unset/empty/`0` — tracing disabled |
//! | `KHAOS_METRICS` | `stderr`/`1` — dump the global registry to stderr via [`metrics::maybe_dump`]; `path` — append the dump there; unset — no dump |
//!
//! The exported JSONL (one complete `"ph":"X"` event per line) is
//! rendered into a text flamegraph / summary table by the
//! `khaos-profile` bin, and wraps trivially into the JSON array form
//! `chrome://tracing` loads.

pub mod metrics;
pub mod timer;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricValue, Registry};
pub use timer::Stopwatch;
pub use trace::{span, span_child_of, span_with, SpanGuard};
