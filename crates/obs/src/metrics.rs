//! Process-wide metrics: named atomic counters, gauges, and
//! fixed-bucket log-scale latency histograms.
//!
//! A [`Registry`] maps names to metric handles. The process-wide
//! default is [`Registry::global`]; components that must not share
//! state across instances (one daemon's request counts vs another's
//! in the same test process) create their own [`Registry::new`] —
//! the handles and snapshot machinery are identical, so a stats
//! surface and a metrics surface reading the same registry cannot
//! drift apart.
//!
//! Handles are `Arc`s: resolve once (a mutex-guarded map lookup),
//! then update forever with relaxed atomics. All updates are
//! wait-free; [`Registry::snapshot`] is only *approximately*
//! consistent while writers are live (count/sum/buckets are separate
//! atomics), and exactly consistent once writers have quiesced —
//! which is what the tests pin.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed level (queue depths, cache entry counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: 16 exact unit buckets for values
/// `0..=15`, then four sub-buckets per power of two ("quarter
/// octaves") up to `u64::MAX`.
pub const NUM_BUCKETS: usize = 256;

/// Maps a recorded value to its bucket index.
///
/// * `0..=15` map to buckets `0..=15` exactly;
/// * `v >= 16` with `e = floor(log2 v)` lands in
///   `16 + 4·(e−4) + sub` where `sub` is the two bits below the
///   leading one — a fixed log-scale layout with ≤ 12.5% relative
///   bucket width, so p50/p95/p99 read from bucket upper bounds are
///   conservative by at most one eighth.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // e >= 4
    let sub = ((v >> (e - 2)) & 3) as usize;
    16 + (e - 4) * 4 + sub
}

/// The inclusive `(lower, upper)` value range of bucket `idx`.
///
/// # Panics
/// Panics when `idx >= NUM_BUCKETS`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < NUM_BUCKETS, "bucket {idx} out of range");
    if idx < 16 {
        return (idx as u64, idx as u64);
    }
    let g = idx - 16;
    let e = 4 + g / 4;
    let sub = (g % 4) as u64;
    let quarter = 1u64 << (e - 2);
    let lo = (1u64 << e) + sub * quarter;
    (lo, lo + (quarter - 1))
}

/// A fixed-bucket log-scale histogram of `u64` samples (latencies in
/// nanoseconds, shortlist sizes, …). Recording is one relaxed
/// `fetch_add` per atomic touched; quantiles are estimated from
/// bucket upper bounds, so they are deterministic and conservative
/// (never an under-estimate by more than the ≤ 12.5% bucket width).
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); NUM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram({s:?})")
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records the wall-clock nanoseconds `f` takes, returning its
    /// result.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let sw = crate::timer::Stopwatch::start();
        let out = f();
        self.record(sw.elapsed_ns());
        out
    }

    /// A point-in-time digest (see the module note on consistency:
    /// exact once writers quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile sample, 1-based, at least 1.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_bounds(i).1;
                }
            }
            bucket_bounds(NUM_BUCKETS - 1).1
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// The digest [`Histogram::snapshot`] returns; quantiles are bucket
/// upper bounds (conservative, deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest sample recorded (exact, not bucketed).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One registered metric, by kind.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A snapshot value, by kind — what [`Registry::snapshot`] yields and
/// what the daemon's metrics frame carries over the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current level.
    Gauge(i64),
    /// A histogram's digest.
    Histogram(HistogramSnapshot),
}

/// A named collection of metrics. Names sort lexicographically in
/// snapshots, so renderings are deterministic.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry (for per-component isolation; most callers
    /// want [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide default registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind —
    /// that is a programming error, and silently returning a fresh
    /// handle would fork the metric.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use (panics on kind
    /// mismatch, like [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use (panics on
    /// kind mismatch, like [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::default()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// All metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = self.inner.lock().expect("metrics registry poisoned");
        map.iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// A deterministic text rendering of [`Registry::snapshot`], one
    /// metric per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name} counter {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name} gauge {v}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{name} histogram count={} sum={} mean={:.1} p50={} p95={} p99={} max={}\n",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                )),
            }
        }
        out
    }
}

/// Dumps [`Registry::global`] according to `KHAOS_METRICS`: unset or
/// empty — nothing; `1`, `true`, or `stderr` — write the text
/// rendering to stderr; anything else — append it to that path.
/// Binaries call this at orderly exit points; errors are reported to
/// stderr and swallowed (a metrics dump must never fail a run).
pub fn maybe_dump() {
    let target = match std::env::var("KHAOS_METRICS") {
        Ok(v) if !v.trim().is_empty() => v,
        _ => return,
    };
    let text = Registry::global().render_text();
    match target.trim() {
        "1" | "true" | "stderr" => eprint!("{text}"),
        path => {
            let res = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(text.as_bytes()));
            if let Err(e) = res {
                eprintln!("khaos-obs: cannot dump metrics to `{path}`: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_count() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("c").get(), 5, "same handle by name");
        let g = r.gauge("g");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn bucket_layout_is_exhaustive_and_monotonic() {
        // Every index round-trips through its bounds, bounds tile the
        // u64 line with no gap or overlap.
        let mut expected_lo = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(
                lo,
                expected_lo,
                "bucket {idx} starts where {} ended",
                idx.wrapping_sub(1)
            );
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket must end at u64::MAX");
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn histogram_snapshot_digest() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // Quantiles are conservative bucket upper bounds: within one
        // bucket width (≤ 12.5%) above the true quantile.
        assert!(s.p50 >= 50 && s.p50 <= 57, "p50={}", s.p50);
        assert!(s.p95 >= 95 && s.p95 <= 108, "p95={}", s.p95);
        assert!(s.p99 >= 99 && s.p99 <= 112, "p99={}", s.p99);
    }

    #[test]
    fn render_text_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("z.last").add(2);
        r.counter("a.first").inc();
        r.histogram("m.hist").record(3);
        let text = r.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a.first counter 1");
        assert_eq!(
            lines[1],
            "m.hist histogram count=1 sum=3 mean=3.0 p50=3 p95=3 p99=3 max=3"
        );
        assert_eq!(lines[2], "z.last counter 2");
    }
}
