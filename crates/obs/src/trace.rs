//! Span-based tracing with Chrome trace-event JSONL export.
//!
//! A [`SpanGuard`] is a scoped RAII span: creation records the start,
//! drop records the end and appends one complete (`"ph":"X"`) Chrome
//! trace event to the sink as a single JSON line. Spans form a
//! parent/child tree: within a thread, nesting follows a thread-local
//! stack; across threads (a daemon request handed to the dispatcher,
//! a fan-out onto `khaos-par` workers) the parent is linked
//! explicitly with [`span_child_of`] using the parent guard's
//! [`SpanGuard::id`]. Timeline lanes (`tid`) are `khaos-par` worker
//! lane ids (`1 + lane`) on pool threads and stable per-thread ids
//! (`>= 1000`) elsewhere.
//!
//! ## Enabling
//!
//! Tracing is off by default and costs two relaxed atomic loads per
//! span site. `KHAOS_TRACE=path` (checked once, at the first span)
//! opens `path` in append mode; `KHAOS_TRACE=1` uses
//! `khaos-trace.jsonl` in the current directory. Each event is
//! written with one `write_all` on an append-mode file, so multiple
//! processes can safely share a trace file (lines never interleave).
//! [`install`] redirects the sink programmatically — how benches and
//! tests trace without touching the environment.
//!
//! ## The invariant
//!
//! Span creation and export are pure observation: no value on any
//! ranked path may depend on them. CI runs tier-1 with and without
//! `KHAOS_TRACE` and asserts identical output.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
/// Span ids are process-unique and never zero (0 = "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Timeline ids for threads outside the `khaos-par` pool.
static NEXT_FREE_TID: AtomicU64 = AtomicU64::new(1000);

thread_local! {
    /// Open span ids on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's assigned timeline id when off the worker pool
    /// (0 = not yet assigned).
    static FREE_TID: Cell<u64> = const { Cell::new(0) };
}

fn sink() -> &'static Mutex<Option<File>> {
    static SINK: OnceLock<Mutex<Option<File>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// The process trace epoch: all timestamps are microseconds since the
/// first tracer touch, so one process's events share one timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(raw) = std::env::var("KHAOS_TRACE") else {
            return;
        };
        let v = raw.trim();
        if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") {
            return;
        }
        let path = if v == "1" || v.eq_ignore_ascii_case("true") {
            "khaos-trace.jsonl"
        } else {
            v
        };
        match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => {
                epoch();
                *sink().lock().expect("trace sink poisoned") = Some(f);
                ENABLED.store(true, Ordering::Release);
            }
            Err(e) => {
                eprintln!("khaos-obs: cannot open KHAOS_TRACE `{path}`: {e}; tracing disabled")
            }
        }
    });
}

/// Whether spans are currently recorded. The disabled fast path is
/// two relaxed atomic loads — the cost bench-gated by the `obs`
/// section of `BENCH_similarity.json`.
#[inline]
pub fn enabled() -> bool {
    if !ENV_INIT.is_completed() {
        init_from_env();
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Points the tracer at `path` (append mode), enabling it. Claims the
/// one-shot environment initialization, so a later `KHAOS_TRACE`
/// check cannot override the explicit sink. Benches and tests use
/// this to trace without touching process-global environment state.
pub fn install(path: &Path) -> std::io::Result<()> {
    ENV_INIT.call_once(|| {});
    let f = OpenOptions::new().create(true).append(true).open(path)?;
    epoch();
    *sink().lock().expect("trace sink poisoned") = Some(f);
    ENABLED.store(true, Ordering::Release);
    Ok(())
}

/// Pauses (`false`) or resumes (`true`) recording; resuming requires
/// a sink (from the environment or [`install`]) and reports whether
/// recording is now on. Benches use the pause path to measure the
/// disabled-tracer cost with instrumentation still compiled in.
pub fn set_enabled(on: bool) -> bool {
    if !ENV_INIT.is_completed() {
        init_from_env();
    }
    let can = on && sink().lock().expect("trace sink poisoned").is_some();
    ENABLED.store(can, Ordering::Release);
    can
}

/// The timeline id of the calling thread (see the module docs).
fn tid() -> u64 {
    if let Some(lane) = khaos_par::worker_id() {
        return 1 + lane as u64;
    }
    FREE_TID.with(|c| {
        let v = c.get();
        if v != 0 {
            return v;
        }
        let fresh = NEXT_FREE_TID.fetch_add(1, Ordering::Relaxed);
        c.set(fresh);
        fresh
    })
}

/// Opens a span named `name`; the span ends (and its trace event is
/// written) when the returned guard drops. Nested calls on one thread
/// form a tree via a thread-local stack; guards must drop in LIFO
/// order (the natural scoping).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { data: None };
    }
    enter(Cow::Borrowed(name), None)
}

/// [`span`] with a lazily built name: `make` runs only when tracing
/// is enabled, so dynamic span names (`embed:bsdiff`, `pass:fission`)
/// cost nothing on the disabled path.
#[inline]
pub fn span_with(make: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard { data: None };
    }
    enter(Cow::Owned(make()), None)
}

/// [`span`] with an explicit parent span id — the cross-thread edge
/// (pass the parent guard's [`SpanGuard::id`] through the work item).
/// With `parent = None` this is exactly [`span`].
#[inline]
pub fn span_child_of(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { data: None };
    }
    enter(Cow::Borrowed(name), parent)
}

fn enter(name: Cow<'static, str>, explicit_parent: Option<u64>) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = explicit_parent
        .or_else(|| STACK.with(|s| s.borrow().last().copied()))
        .unwrap_or(0);
    STACK.with(|s| s.borrow_mut().push(id));
    let start_ns = u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
    SpanGuard {
        data: Some(SpanData {
            name,
            id,
            parent,
            start_ns,
        }),
    }
}

struct SpanData {
    name: Cow<'static, str>,
    id: u64,
    parent: u64,
    start_ns: u64,
}

/// An open span; dropping it closes the span and writes its trace
/// event. Inert (a `None` payload) when tracing is disabled.
pub struct SpanGuard {
    data: Option<SpanData>,
}

impl SpanGuard {
    /// The span's process-unique id, for explicit cross-thread
    /// parent links ([`span_child_of`]); `None` when tracing is
    /// disabled.
    pub fn id(&self) -> Option<u64> {
        self.data.as_ref().map(|d| d.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        let end_ns = u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            if let Some(pos) = st.iter().rposition(|&x| x == data.id) {
                let popped = st.remove(pos);
                debug_assert_eq!(
                    pos,
                    st.len(),
                    "span `{}` ({popped}) dropped out of LIFO order",
                    data.name
                );
            }
        });
        let dur_ns = end_ns.saturating_sub(data.start_ns);
        // One JSON object per line; a single write_all on an
        // append-mode file keeps concurrent writers (threads and
        // processes) from interleaving within a line.
        let line = format!(
            "{{\"name\":\"{}\",\"cat\":\"khaos\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"id\":{},\"parent\":{}}}}}\n",
            escape(&data.name),
            std::process::id(),
            tid(),
            data.start_ns as f64 / 1000.0,
            dur_ns as f64 / 1000.0,
            data.id,
            data.parent,
        );
        if let Some(f) = sink().lock().expect("trace sink poisoned").as_mut() {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// JSON string escaping for span names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracer state is process-global; tests that flip it serialize
    // here so they compose with any ambient KHAOS_TRACE setting (the
    // CI bit-identity job runs this suite with tracing on).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_guards_are_inert() {
        let _g = TEST_LOCK.lock().unwrap();
        let was = enabled();
        set_enabled(false);
        let s = span("inert");
        assert_eq!(s.id(), None);
        drop(s);
        set_enabled(was);
    }

    #[test]
    fn spans_nest_and_export_jsonl() {
        let _g = TEST_LOCK.lock().unwrap();
        let was = enabled();
        let path =
            std::env::temp_dir().join(format!("khaos-obs-trace-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        install(&path).expect("install trace sink");

        let root = span("root");
        let root_id = root.id().expect("enabled span has an id");
        {
            let child = span_with(|| format!("child-{}", 1));
            assert_ne!(child.id(), Some(root_id));
            let _grand = span_child_of("grand", child.id());
        }
        drop(root);
        set_enabled(was);

        let text = std::fs::read_to_string(&path).expect("trace file");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "three spans → three events:\n{text}");
        // Events are written at close: grand, child-1, root.
        assert!(lines[0].contains("\"name\":\"grand\""));
        assert!(lines[1].contains("\"name\":\"child-1\""));
        assert!(lines[2].contains("\"name\":\"root\""));
        // Every line is a complete X event with our schema fields.
        for line in &lines {
            for needle in [
                "\"ph\":\"X\"",
                "\"ts\":",
                "\"dur\":",
                "\"id\":",
                "\"parent\":",
            ] {
                assert!(line.contains(needle), "`{needle}` missing in {line}");
            }
        }
        // child-1's parent is root (thread-local stack), grand's is
        // child-1 (explicit).
        let child_line = lines[1];
        assert!(
            child_line.contains(&format!("\"parent\":{root_id}")),
            "{child_line}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn names_are_json_escaped() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("q\"b\\s"), "q\\\"b\\\\s");
        assert_eq!(escape("n\nl"), "n\\u000al");
    }
}
