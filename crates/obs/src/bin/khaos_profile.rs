//! `khaos-profile` — render a `KHAOS_TRACE` JSONL file into a text
//! flamegraph and per-span summary table, and validate its schema.
//!
//! ```text
//! khaos-profile <trace.jsonl> [--validate] [--assert-coverage PCT] [--top N]
//! ```
//!
//! * default — print a summary table (per span name: count, total,
//!   self, mean, max) and a text flamegraph (span trees aggregated by
//!   path, self-time bars);
//! * `--validate` — additionally fail (exit 1) unless every line is a
//!   well-formed Chrome `"ph":"X"` event with the khaos-obs schema,
//!   span ids are unique per process, parent links resolve, and every
//!   child interval nests inside its parent;
//! * `--assert-coverage PCT` — fail unless, for every root span of
//!   the largest tree, the self-times of the tree sum to within
//!   `100−PCT` percent of the root's wall clock (the "where did this
//!   query's 4 ms go?" acceptance check);
//! * `--top N` — table rows to print (default 24).
//!
//! The parser is a tiny recursive-descent JSON reader: the offline
//! container has no serde, and the schema is our own emitter's.

use std::collections::BTreeMap;
use std::process::ExitCode;

// ---------------------------------------------------------------
// Minimal JSON value parser (objects/arrays/strings/numbers/atoms).
// ---------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        raw.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{raw}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------
// Trace model.
// ---------------------------------------------------------------

/// One complete span event, times in microseconds.
#[derive(Clone, Debug)]
struct Event {
    name: String,
    pid: u64,
    tid: u64,
    ts: f64,
    dur: f64,
    id: u64,
    parent: u64,
}

fn parse_event(line: &str, lineno: usize) -> Result<Event, String> {
    let v = Parser::new(line)
        .parse()
        .map_err(|e| format!("line {lineno}: {e}"))?;
    let field = |key: &str| {
        v.get(key)
            .ok_or_else(|| format!("line {lineno}: missing `{key}`"))
    };
    let num = |key: &str| {
        field(key)?
            .as_f64()
            .ok_or_else(|| format!("line {lineno}: `{key}` is not a number"))
    };
    let ph = field("ph")?
        .as_str()
        .ok_or_else(|| format!("line {lineno}: `ph` is not a string"))?;
    if ph != "X" {
        return Err(format!("line {lineno}: `ph` is `{ph}`, want `X`"));
    }
    let name = field("name")?
        .as_str()
        .ok_or_else(|| format!("line {lineno}: `name` is not a string"))?
        .to_string();
    let args = field("args")?;
    let arg_num = |key: &str| {
        args.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {lineno}: missing numeric `args.{key}`"))
    };
    let ts = num("ts")?;
    let dur = num("dur")?;
    if dur < 0.0 || ts < 0.0 {
        return Err(format!("line {lineno}: negative ts/dur"));
    }
    Ok(Event {
        name,
        pid: num("pid")? as u64,
        tid: num("tid")? as u64,
        ts,
        dur,
        id: arg_num("id")? as u64,
        parent: arg_num("parent")? as u64,
    })
}

/// Clock-read slack when checking child-inside-parent containment, in
/// microseconds (two adjacent monotonic reads on different cores).
const NEST_SLACK_US: f64 = 50.0;

/// Validates per-process id uniqueness, parent resolution, and
/// interval containment; returns the error list.
fn validate(events: &[Event]) -> Vec<String> {
    let mut errors = Vec::new();
    let mut by_pid: BTreeMap<u64, BTreeMap<u64, &Event>> = BTreeMap::new();
    for e in events {
        if let Some(old) = by_pid.entry(e.pid).or_default().insert(e.id, e) {
            errors.push(format!(
                "pid {}: span id {} used by both `{}` and `{}`",
                e.pid, e.id, old.name, e.name
            ));
        }
    }
    for e in events {
        if e.parent == 0 {
            continue;
        }
        match by_pid[&e.pid].get(&e.parent) {
            None => errors.push(format!(
                "pid {}: span `{}` ({}) has unknown parent {}",
                e.pid, e.name, e.id, e.parent
            )),
            Some(p) => {
                let starts_ok = e.ts + NEST_SLACK_US >= p.ts;
                let ends_ok = e.ts + e.dur <= p.ts + p.dur + NEST_SLACK_US;
                if !starts_ok || !ends_ok {
                    errors.push(format!(
                        "pid {}: span `{}` [{:.1}..{:.1}us] escapes parent `{}` [{:.1}..{:.1}us]",
                        e.pid,
                        e.name,
                        e.ts,
                        e.ts + e.dur,
                        p.name,
                        p.ts,
                        p.ts + p.dur
                    ));
                }
            }
        }
    }
    errors
}

/// Per-event self time: duration minus direct children durations
/// (clamped at zero — concurrent children can overlap the parent).
fn self_times(events: &[Event]) -> Vec<f64> {
    let mut child_dur: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for e in events {
        if e.parent != 0 {
            *child_dur.entry((e.pid, e.parent)).or_default() += e.dur;
        }
    }
    events
        .iter()
        .map(|e| (e.dur - child_dur.get(&(e.pid, e.id)).copied().unwrap_or(0.0)).max(0.0))
        .collect()
}

fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{us:.1}us")
    }
}

fn summary_table(events: &[Event], selfs: &[f64], top: usize) {
    struct Row {
        count: u64,
        total: f64,
        self_t: f64,
        max: f64,
    }
    let mut rows: BTreeMap<&str, Row> = BTreeMap::new();
    for (e, s) in events.iter().zip(selfs) {
        let r = rows.entry(&e.name).or_insert(Row {
            count: 0,
            total: 0.0,
            self_t: 0.0,
            max: 0.0,
        });
        r.count += 1;
        r.total += e.dur;
        r.self_t += s;
        r.max = r.max.max(e.dur);
    }
    let mut rows: Vec<(&str, Row)> = rows.into_iter().collect();
    rows.sort_by(|a, b| b.1.total.total_cmp(&a.1.total).then(a.0.cmp(b.0)));
    println!(
        "{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "span", "count", "total", "self", "mean", "max"
    );
    for (name, r) in rows.iter().take(top) {
        println!(
            "{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
            name,
            r.count,
            fmt_us(r.total),
            fmt_us(r.self_t),
            fmt_us(r.total / r.count as f64),
            fmt_us(r.max)
        );
    }
    if rows.len() > top {
        println!("… {} more span names (raise --top)", rows.len() - top);
    }
}

/// Aggregated path node for the text flamegraph.
#[derive(Default)]
struct PathNode {
    total: f64,
    count: u64,
    children: BTreeMap<String, PathNode>,
}

fn flamegraph(events: &[Event]) {
    // Index events and group children under parents; roots carry
    // parent 0 or an unresolvable parent (trace cut mid-tree).
    let by_id: BTreeMap<(u64, u64), &Event> = events.iter().map(|e| ((e.pid, e.id), e)).collect();
    let mut root = PathNode::default();
    for e in events {
        // Build this event's name path by walking to its root.
        let mut path = vec![e.name.as_str()];
        let mut cur = e;
        while cur.parent != 0 {
            match by_id.get(&(cur.pid, cur.parent)) {
                Some(p) => {
                    path.push(p.name.as_str());
                    cur = p;
                }
                None => break,
            }
        }
        path.reverse();
        let mut node = &mut root;
        for part in path {
            node = node.children.entry(part.to_string()).or_default();
        }
        node.total += e.dur;
        node.count += 1;
    }
    let grand: f64 = root.children.values().map(|n| n.total).sum();
    if grand <= 0.0 {
        return;
    }
    println!("\nflame (total time per span path):");
    fn render(node: &PathNode, depth: usize, grand: f64) {
        let mut kids: Vec<(&String, &PathNode)> = node.children.iter().collect();
        kids.sort_by(|a, b| b.1.total.total_cmp(&a.1.total).then(a.0.cmp(b.0)));
        for (name, kid) in kids {
            let frac = kid.total / grand;
            let bar = "#".repeat(((frac * 40.0).round() as usize).clamp(1, 40));
            println!(
                "{:indent$}{:<w$} {:>10} ×{:<6} {}",
                "",
                name,
                fmt_us(kid.total),
                kid.count,
                bar,
                indent = depth * 2,
                w = 36usize.saturating_sub(depth * 2),
            );
            render(kid, depth + 1, grand);
        }
    }
    render(&root, 0, grand);
}

/// The coverage assertion: on the tree under the longest root span,
/// the self-times must sum to within `tolerance` of the root's wall
/// clock (they sum exactly when children nest sequentially; slack
/// covers clock-read jitter).
fn check_coverage(events: &[Event], selfs: &[f64], pct: f64) -> Result<String, String> {
    let root_idx = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.parent == 0)
        .max_by(|a, b| a.1.dur.total_cmp(&b.1.dur))
        .map(|(i, _)| i)
        .ok_or("no root span found")?;
    let root = &events[root_idx];
    // Collect the subtree.
    let mut children: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.parent != 0 {
            children.entry((e.pid, e.parent)).or_default().push(i);
        }
    }
    let mut stack = vec![root_idx];
    let mut self_sum = 0.0;
    let mut members = Vec::new();
    while let Some(i) = stack.pop() {
        self_sum += selfs[i];
        members.push(events[i].name.clone());
        if let Some(kids) = children.get(&(events[i].pid, events[i].id)) {
            stack.extend(kids.iter().copied());
        }
    }
    let frac = if root.dur > 0.0 {
        self_sum / root.dur
    } else {
        1.0
    };
    let line = format!(
        "coverage: root `{}` wall={} self-sum={} ({:.1}%) over {} spans",
        root.name,
        fmt_us(root.dur),
        fmt_us(self_sum),
        frac * 100.0,
        members.len()
    );
    if frac * 100.0 + 1e-9 < pct || frac > 1.0 + (100.0 - pct) / 100.0 {
        Err(format!("{line} — outside the {pct}% bound"))
    } else {
        Ok(line)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut do_validate = false;
    let mut coverage: Option<f64> = None;
    let mut top = 24usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--validate" => do_validate = true,
            "--assert-coverage" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if (0.0..=100.0).contains(&p) => coverage = Some(p),
                _ => {
                    eprintln!("--assert-coverage wants a percentage 0..=100");
                    return ExitCode::FAILURE;
                }
            },
            "--top" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => top = n.max(1),
                None => {
                    eprintln!("--top wants a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: khaos-profile <trace.jsonl> [--validate] \
                     [--assert-coverage PCT] [--top N]"
                );
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: khaos-profile <trace.jsonl> [--validate] [--assert-coverage PCT]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("khaos-profile: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut events = Vec::new();
    let mut parse_errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_event(line, i + 1) {
            Ok(e) => events.push(e),
            Err(e) => parse_errors.push(e),
        }
    }
    println!(
        "{path}: {} events, {} processes, {} timeline lanes",
        events.len(),
        events
            .iter()
            .map(|e| e.pid)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        events
            .iter()
            .map(|e| (e.pid, e.tid))
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    if events.is_empty() && parse_errors.is_empty() {
        eprintln!("khaos-profile: empty trace");
        return ExitCode::FAILURE;
    }

    let selfs = self_times(&events);
    summary_table(&events, &selfs, top);
    flamegraph(&events);

    let mut failed = false;
    if do_validate {
        let mut errors = parse_errors.clone();
        errors.extend(validate(&events));
        if errors.is_empty() {
            println!("\nvalidate: ok ({} events)", events.len());
        } else {
            for e in errors.iter().take(20) {
                eprintln!("validate: {e}");
            }
            eprintln!("validate: {} error(s)", errors.len());
            failed = true;
        }
    } else if !parse_errors.is_empty() {
        eprintln!("warning: {} unparseable line(s)", parse_errors.len());
    }
    if let Some(pct) = coverage {
        match check_coverage(&events, &selfs, pct) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("khaos-profile: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
