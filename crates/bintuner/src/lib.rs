//! # khaos-bintuner — the BinTuner comparison baseline
//!
//! BinTuner (Ren et al., PLDI 2021) searches *compiler option sequences*
//! that maximise the binary difference from a reference build, showing how
//! much "hidden power" plain optimization flags have against diffing.
//! The paper compares Khaos against it in Figure 9.
//!
//! This reproduction searches the same kind of space — toggles over the
//! scalar pass pipeline, the inliner threshold and LTO — with a seeded
//! hill-climbing loop (BinTuner's genetic search collapses to this at our
//! scale), scoring candidates by BinDiff similarity against the `-O0`
//! build, exactly as the original tool does.
//!
//! The search space is *pipelines*: every [`TunerConfig`] is a
//! declarative generator of a [`khaos_pass::Pipeline`]
//! ([`TunerConfig::pipeline`]), candidate mutation is pipeline mutation,
//! and the winning candidate's spec and fingerprint come back in the
//! [`TunedResult`] as build provenance.

use khaos_binary::{lower_module, Binary};
use khaos_diff::{binary_similarity, BinDiff};
use khaos_ir::Module;
use khaos_pass::{InlinePass, PassCtx, Pipeline, ScalarKind, ScalarPass, VerifyPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Errors constructing tuner configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TunerError {
    /// A pipeline repetition count outside [`Rounds::MIN`]..=[`Rounds::MAX`].
    RoundsOutOfRange(u8),
}

impl fmt::Display for TunerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunerError::RoundsOutOfRange(n) => write!(
                f,
                "rounds {n} outside the supported range {}..={}",
                Rounds::MIN.get(),
                Rounds::MAX.get()
            ),
        }
    }
}

impl std::error::Error for TunerError {}

/// Number of pipeline repetitions, valid by construction (1–3).
///
/// The range used to be enforced by a silent `clamp(1, 3)` inside
/// `TunerConfig::apply`, which would quietly rewrite out-of-range search
/// candidates; now an out-of-range count is a constructor [`TunerError`]
/// and every held value is valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rounds(u8);

impl Rounds {
    /// The minimum (single application).
    pub const MIN: Rounds = Rounds(1);
    /// The maximum repetition count the search explores.
    pub const MAX: Rounds = Rounds(3);

    /// Validates a repetition count.
    ///
    /// # Errors
    /// [`TunerError::RoundsOutOfRange`] outside `1..=3`.
    pub fn new(n: u8) -> Result<Rounds, TunerError> {
        if (Self::MIN.0..=Self::MAX.0).contains(&n) {
            Ok(Rounds(n))
        } else {
            Err(TunerError::RoundsOutOfRange(n))
        }
    }

    /// The validated count.
    pub fn get(self) -> u8 {
        self.0
    }
}

/// One point in the option space — a declarative pipeline generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunerConfig {
    /// mem2reg on/off.
    pub mem2reg: bool,
    /// Constant propagation / folding on/off.
    pub constprop: bool,
    /// Local CSE on/off.
    pub cse: bool,
    /// Dead-code elimination on/off.
    pub dce: bool,
    /// CFG simplification on/off.
    pub simplifycfg: bool,
    /// Inliner threshold; 0 disables inlining.
    pub inline_threshold: usize,
    /// Dead-function elimination (the LTO effect).
    pub lto: bool,
    /// Number of pipeline repetitions.
    pub rounds: Rounds,
}

impl TunerConfig {
    /// The `-O0` reference configuration.
    pub fn o0() -> Self {
        TunerConfig {
            mem2reg: false,
            constprop: false,
            cse: false,
            dce: false,
            simplifycfg: false,
            inline_threshold: 0,
            lto: false,
            rounds: Rounds::MIN,
        }
    }

    /// The pipeline this configuration denotes: `rounds` repetitions of
    /// the enabled scalar passes plus the inliner, then `dfe` under
    /// LTO. The spec round-trips through `khaos_pass::Pipeline::parse`.
    pub fn pipeline(&self) -> Pipeline {
        let mut b = Pipeline::builder();
        for _ in 0..self.rounds.get() {
            for (enabled, kind) in [
                (self.mem2reg, ScalarKind::Mem2Reg),
                (self.constprop, ScalarKind::ConstProp),
                (self.cse, ScalarKind::Cse),
                (self.dce, ScalarKind::Dce),
                (self.simplifycfg, ScalarKind::SimplifyCfg),
            ] {
                if enabled {
                    b = b.pass(ScalarPass { kind });
                }
            }
            if self.inline_threshold > 0 {
                b = b.pass(InlinePass {
                    threshold: self.inline_threshold,
                    exported: self.lto,
                });
            }
        }
        if self.lto {
            b = b.pass(khaos_pass::DfePass);
        }
        b.build()
    }

    /// Build-provenance fingerprint of [`TunerConfig::pipeline`].
    pub fn fingerprint(&self) -> u64 {
        self.pipeline().fingerprint()
    }

    /// Applies this configuration's pipeline to a module (compatibility
    /// wrapper over [`TunerConfig::pipeline`]).
    ///
    /// Hot search sweeps skip verification ([`VerifyPolicy::Never`]) —
    /// tuner pipelines are composed purely of trusted scalar passes. Set
    /// `KHAOS_AUDIT=1` to run every candidate build under
    /// [`VerifyPolicy::AuditAfterEach`] instead (structural verification
    /// plus the semantic observable-behavior audit after each pass), the
    /// mode to use when bisecting a suspected tuner miscompile.
    pub fn apply(&self, m: &mut Module) {
        let verify = if std::env::var_os("KHAOS_AUDIT").is_some_and(|v| v == "1") {
            VerifyPolicy::AuditAfterEach
        } else {
            VerifyPolicy::Never
        };
        let mut ctx = PassCtx::new(0).with_verify(verify);
        self.pipeline()
            .run(m, &mut ctx)
            .unwrap_or_else(|e| panic!("tuner pipeline failed: {e}"));
    }

    fn mutate(&self, rng: &mut StdRng) -> Self {
        let mut c = *self;
        match rng.gen_range(0..8u8) {
            0 => c.mem2reg = !c.mem2reg,
            1 => c.constprop = !c.constprop,
            2 => c.cse = !c.cse,
            3 => c.dce = !c.dce,
            4 => c.simplifycfg = !c.simplifycfg,
            5 => c.inline_threshold = [0usize, 16, 48, 96, 160][rng.gen_range(0..5)],
            6 => c.lto = !c.lto,
            _ => {
                c.rounds = Rounds::new(rng.gen_range(Rounds::MIN.get()..=Rounds::MAX.get()))
                    .expect("sampled within the valid range")
            }
        }
        c
    }

    fn random(rng: &mut StdRng) -> Self {
        TunerConfig {
            mem2reg: rng.gen_bool(0.5),
            constprop: rng.gen_bool(0.5),
            cse: rng.gen_bool(0.5),
            dce: rng.gen_bool(0.5),
            simplifycfg: rng.gen_bool(0.5),
            inline_threshold: [0usize, 16, 48, 96, 160][rng.gen_range(0..5)],
            lto: rng.gen_bool(0.5),
            rounds: Rounds::new(rng.gen_range(Rounds::MIN.get()..=Rounds::MAX.get()))
                .expect("sampled within the valid range"),
        }
    }
}

/// Search output.
#[derive(Clone, Debug)]
pub struct TunedResult {
    /// The best configuration found.
    pub config: TunerConfig,
    /// The best configuration's pipeline spec (round-trippable through
    /// `khaos_pass::Pipeline::parse`).
    pub spec: String,
    /// Its BinDiff similarity against the `-O0` reference (lower = more
    /// different = better for BinTuner).
    pub similarity_vs_o0: f64,
    /// The tuned module.
    pub module: Module,
    /// The tuned binary, stamped with the winning pipeline's
    /// fingerprint as build provenance.
    pub binary: Binary,
    /// Candidate evaluations spent.
    pub evaluations: usize,
}

/// The iterative search driver.
#[derive(Clone, Debug)]
pub struct BinTuner {
    /// Candidate evaluation budget.
    pub budget: usize,
    /// Search seed.
    pub seed: u64,
}

impl Default for BinTuner {
    fn default() -> Self {
        BinTuner {
            budget: 24,
            seed: 0xB17,
        }
    }
}

impl BinTuner {
    /// Runs the search on `source` (an unoptimized module), maximising
    /// difference against its `-O0` build. Candidates are pipeline
    /// mutations ([`TunerConfig::mutate`] flips one pipeline knob);
    /// each candidate builds through its generated pipeline.
    pub fn tune(&self, source: &Module) -> TunedResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let differ = BinDiff::default();
        let baseline = lower_module(source); // -O0 reference

        let evaluate = |cfg: &TunerConfig| -> (f64, Module, Binary) {
            let mut m = source.clone();
            cfg.apply(&mut m);
            let bin = lower_module(&m).with_build_provenance(cfg.fingerprint());
            let sim = binary_similarity(&differ, &baseline, &bin);
            (sim, m, bin)
        };

        let mut best_cfg = TunerConfig::random(&mut rng);
        let (mut best_sim, mut best_mod, mut best_bin) = evaluate(&best_cfg);
        let mut evaluations = 1;
        while evaluations < self.budget {
            // Mostly hill-climb, occasionally restart (genetic flavour).
            let cand = if evaluations % 7 == 6 {
                TunerConfig::random(&mut rng)
            } else {
                best_cfg.mutate(&mut rng)
            };
            let (sim, m, bin) = evaluate(&cand);
            evaluations += 1;
            if sim < best_sim {
                best_sim = sim;
                best_cfg = cand;
                best_mod = m;
                best_bin = bin;
            }
        }
        // With a persistent store configured (KHAOS_STORE), record the
        // winning configuration as an experiment artifact keyed by its
        // pipeline fingerprint — a later sweep can read which spec won
        // for this program without re-running the search.
        if let Some(store) = khaos_diff::EmbeddingCache::global().store() {
            let _ = store.put_report(&khaos_store::StoredReport {
                spec: best_cfg.pipeline().to_string(),
                pipeline: best_cfg.fingerprint(),
                seed: self.seed,
                subject: format!("bintuner/{}", source.name),
                total_micros: 0,
                passes: Vec::new(),
                metrics: vec![
                    ("similarity_vs_o0".into(), best_sim),
                    ("evaluations".into(), evaluations as f64),
                ],
            });
        }
        TunedResult {
            config: best_cfg,
            spec: best_cfg.pipeline().to_string(),
            similarity_vs_o0: best_sim,
            module: best_mod,
            binary: best_bin,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_workloads::coreutils_program;

    #[test]
    fn search_reduces_similarity_vs_o0() {
        let src = coreutils_program("cat", 3);
        let tuner = BinTuner {
            budget: 12,
            seed: 1,
        };
        let result = tuner.tune(&src);
        // Identity config would give 1.0; the search must find something
        // meaningfully different.
        assert!(
            result.similarity_vs_o0 < 0.999,
            "got {}",
            result.similarity_vs_o0
        );
        assert_eq!(result.evaluations, 12);
        khaos_ir::verify::assert_valid(&result.module);
    }

    #[test]
    fn tuned_module_preserves_behaviour() {
        let src = coreutils_program("wc", 7);
        let want = khaos_vm::run_to_completion(&src, &[5]).unwrap();
        let result = BinTuner {
            budget: 10,
            seed: 2,
        }
        .tune(&src);
        let got = khaos_vm::run_to_completion(&result.module, &[5]).unwrap();
        assert_eq!(
            want.output, got.output,
            "optimization must preserve behaviour"
        );
        assert_eq!(want.exit_code, got.exit_code);
    }

    #[test]
    fn search_is_deterministic() {
        let src = coreutils_program("ls", 1);
        let a = BinTuner { budget: 8, seed: 9 }.tune(&src);
        let b = BinTuner { budget: 8, seed: 9 }.tune(&src);
        assert_eq!(a.config, b.config);
        assert_eq!(a.similarity_vs_o0, b.similarity_vs_o0);
    }

    #[test]
    fn o0_config_is_identity() {
        let src = coreutils_program("rm", 4);
        let mut m = src.clone();
        TunerConfig::o0().apply(&mut m);
        assert_eq!(m, src);
        assert!(TunerConfig::o0().pipeline().is_empty());
    }

    #[test]
    fn rounds_validate_instead_of_clamping() {
        assert_eq!(Rounds::new(0), Err(TunerError::RoundsOutOfRange(0)));
        assert_eq!(Rounds::new(4), Err(TunerError::RoundsOutOfRange(4)));
        assert_eq!(Rounds::new(2).unwrap().get(), 2);
        assert_eq!(Rounds::MIN.get(), 1);
        assert_eq!(Rounds::MAX.get(), 3);
    }

    #[test]
    fn config_denotes_a_roundtrippable_pipeline() {
        let cfg = TunerConfig {
            mem2reg: true,
            constprop: true,
            cse: false,
            dce: true,
            simplifycfg: true,
            inline_threshold: 96,
            lto: true,
            rounds: Rounds::new(2).unwrap(),
        };
        let p = cfg.pipeline();
        assert_eq!(
            p.to_string(),
            "mem2reg | constprop | dce | simplifycfg | \
             inline(threshold=96,exported=true) | mem2reg | constprop | dce | simplifycfg | \
             inline(threshold=96,exported=true) | dfe"
        );
        let reparsed = Pipeline::parse(&p.to_string()).unwrap();
        assert_eq!(reparsed, p);
        assert_eq!(reparsed.fingerprint(), cfg.fingerprint());
        // Distinct configs, distinct provenance.
        let mut other = cfg;
        other.rounds = Rounds::MIN;
        assert_ne!(other.fingerprint(), cfg.fingerprint());
    }

    #[test]
    fn apply_matches_pipeline_run() {
        let src = coreutils_program("sort", 12);
        let cfg = TunerConfig {
            mem2reg: true,
            constprop: true,
            cse: true,
            dce: true,
            simplifycfg: true,
            inline_threshold: 48,
            lto: true,
            rounds: Rounds::new(3).unwrap(),
        };
        let mut a = src.clone();
        cfg.apply(&mut a);
        let mut b = src.clone();
        let mut ctx = PassCtx::new(0).with_verify(VerifyPolicy::Never);
        cfg.pipeline().run(&mut b, &mut ctx).unwrap();
        assert_eq!(a, b);
    }
}
