//! # khaos-bintuner — the BinTuner comparison baseline
//!
//! BinTuner (Ren et al., PLDI 2021) searches *compiler option sequences*
//! that maximise the binary difference from a reference build, showing how
//! much "hidden power" plain optimization flags have against diffing.
//! The paper compares Khaos against it in Figure 9.
//!
//! This reproduction searches the same kind of space — toggles over the
//! scalar pass pipeline, the inliner threshold and LTO — with a seeded
//! hill-climbing loop (BinTuner's genetic search collapses to this at our
//! scale), scoring candidates by BinDiff similarity against the `-O0`
//! build, exactly as the original tool does.

use khaos_binary::{lower_module, Binary};
use khaos_diff::{binary_similarity, BinDiff};
use khaos_ir::Module;
use khaos_opt::{constprop, cse, dce, dfe, inline, mem2reg, simplifycfg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One point in the option space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunerConfig {
    /// mem2reg on/off.
    pub mem2reg: bool,
    /// Constant propagation / folding on/off.
    pub constprop: bool,
    /// Local CSE on/off.
    pub cse: bool,
    /// Dead-code elimination on/off.
    pub dce: bool,
    /// CFG simplification on/off.
    pub simplifycfg: bool,
    /// Inliner threshold; 0 disables inlining.
    pub inline_threshold: usize,
    /// Dead-function elimination (the LTO effect).
    pub lto: bool,
    /// Number of pipeline repetitions (1–3).
    pub rounds: u8,
}

impl TunerConfig {
    /// The `-O0` reference configuration.
    pub fn o0() -> Self {
        TunerConfig {
            mem2reg: false,
            constprop: false,
            cse: false,
            dce: false,
            simplifycfg: false,
            inline_threshold: 0,
            lto: false,
            rounds: 1,
        }
    }

    /// Applies this configuration's pipeline to a module.
    pub fn apply(&self, m: &mut Module) {
        for _ in 0..self.rounds.clamp(1, 3) {
            for f in &mut m.functions {
                if self.mem2reg {
                    mem2reg::run_function(f);
                }
                if self.constprop {
                    constprop::run_function(f);
                }
                if self.cse {
                    cse::run_function(f);
                }
                if self.dce {
                    dce::run_function(f);
                }
                if self.simplifycfg {
                    simplifycfg::run_function(f);
                }
            }
            if self.inline_threshold > 0 {
                inline::run_module(
                    m,
                    &inline::InlineOptions {
                        threshold: self.inline_threshold,
                        allow_exported: self.lto,
                    },
                );
            }
        }
        if self.lto {
            dfe::run_module(m);
        }
    }

    fn mutate(&self, rng: &mut StdRng) -> Self {
        let mut c = *self;
        match rng.gen_range(0..8u8) {
            0 => c.mem2reg = !c.mem2reg,
            1 => c.constprop = !c.constprop,
            2 => c.cse = !c.cse,
            3 => c.dce = !c.dce,
            4 => c.simplifycfg = !c.simplifycfg,
            5 => c.inline_threshold = [0usize, 16, 48, 96, 160][rng.gen_range(0..5)],
            6 => c.lto = !c.lto,
            _ => c.rounds = rng.gen_range(1..=3),
        }
        c
    }

    fn random(rng: &mut StdRng) -> Self {
        TunerConfig {
            mem2reg: rng.gen_bool(0.5),
            constprop: rng.gen_bool(0.5),
            cse: rng.gen_bool(0.5),
            dce: rng.gen_bool(0.5),
            simplifycfg: rng.gen_bool(0.5),
            inline_threshold: [0usize, 16, 48, 96, 160][rng.gen_range(0..5)],
            lto: rng.gen_bool(0.5),
            rounds: rng.gen_range(1..=3),
        }
    }
}

/// Search output.
#[derive(Clone, Debug)]
pub struct TunedResult {
    /// The best configuration found.
    pub config: TunerConfig,
    /// Its BinDiff similarity against the `-O0` reference (lower = more
    /// different = better for BinTuner).
    pub similarity_vs_o0: f64,
    /// The tuned module.
    pub module: Module,
    /// The tuned binary.
    pub binary: Binary,
    /// Candidate evaluations spent.
    pub evaluations: usize,
}

/// The iterative search driver.
#[derive(Clone, Debug)]
pub struct BinTuner {
    /// Candidate evaluation budget.
    pub budget: usize,
    /// Search seed.
    pub seed: u64,
}

impl Default for BinTuner {
    fn default() -> Self {
        BinTuner { budget: 24, seed: 0xB17 }
    }
}

impl BinTuner {
    /// Runs the search on `source` (an unoptimized module), maximising
    /// difference against its `-O0` build.
    pub fn tune(&self, source: &Module) -> TunedResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let differ = BinDiff::default();
        let baseline = lower_module(source); // -O0 reference

        let evaluate = |cfg: &TunerConfig| -> (f64, Module, Binary) {
            let mut m = source.clone();
            cfg.apply(&mut m);
            let bin = lower_module(&m);
            let sim = binary_similarity(&differ, &baseline, &bin);
            (sim, m, bin)
        };

        let mut best_cfg = TunerConfig::random(&mut rng);
        let (mut best_sim, mut best_mod, mut best_bin) = evaluate(&best_cfg);
        let mut evaluations = 1;
        while evaluations < self.budget {
            // Mostly hill-climb, occasionally restart (genetic flavour).
            let cand = if evaluations % 7 == 6 {
                TunerConfig::random(&mut rng)
            } else {
                best_cfg.mutate(&mut rng)
            };
            let (sim, m, bin) = evaluate(&cand);
            evaluations += 1;
            if sim < best_sim {
                best_sim = sim;
                best_cfg = cand;
                best_mod = m;
                best_bin = bin;
            }
        }
        TunedResult {
            config: best_cfg,
            similarity_vs_o0: best_sim,
            module: best_mod,
            binary: best_bin,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_workloads::coreutils_program;

    #[test]
    fn search_reduces_similarity_vs_o0() {
        let src = coreutils_program("cat", 3);
        let tuner = BinTuner { budget: 12, seed: 1 };
        let result = tuner.tune(&src);
        // Identity config would give 1.0; the search must find something
        // meaningfully different.
        assert!(result.similarity_vs_o0 < 0.999, "got {}", result.similarity_vs_o0);
        assert_eq!(result.evaluations, 12);
        khaos_ir::verify::assert_valid(&result.module);
    }

    #[test]
    fn tuned_module_preserves_behaviour() {
        let src = coreutils_program("wc", 7);
        let want = khaos_vm::run_to_completion(&src, &[5]).unwrap();
        let result = BinTuner { budget: 10, seed: 2 }.tune(&src);
        let got = khaos_vm::run_to_completion(&result.module, &[5]).unwrap();
        assert_eq!(want.output, got.output, "optimization must preserve behaviour");
        assert_eq!(want.exit_code, got.exit_code);
    }

    #[test]
    fn search_is_deterministic() {
        let src = coreutils_program("ls", 1);
        let a = BinTuner { budget: 8, seed: 9 }.tune(&src);
        let b = BinTuner { budget: 8, seed: 9 }.tune(&src);
        assert_eq!(a.config, b.config);
        assert_eq!(a.similarity_vs_o0, b.similarity_vs_o0);
    }

    #[test]
    fn o0_config_is_identity() {
        let src = coreutils_program("rm", 4);
        let mut m = src.clone();
        TunerConfig::o0().apply(&mut m);
        assert_eq!(m, src);
    }
}
