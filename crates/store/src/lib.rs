//! # khaos-store — persistent content-addressed artifact store
//!
//! The evaluation protocol (§4.2 of the paper) re-runs the same differs
//! over the same obfuscated binaries across many configurations; the
//! per-binary analysis artifacts — embedding tables, similarity
//! matrices, pipeline reports — are deterministic functions of content
//! fingerprints the rest of the workspace already computes
//! (`Binary::fingerprint`, per-tool `config_fingerprint`,
//! `Pipeline::fingerprint`). This crate makes those artifacts durable:
//! an on-disk store that outlives the process, so sweeps and CI bench
//! runs warm-start instead of re-embedding everything from scratch.
//!
//! The store is the **disk tier** under `khaos_diff::EmbeddingCache`
//! (memory → disk → compute); set the `KHAOS_STORE` environment
//! variable to a directory to enable it process-wide. Artifacts served
//! from disk are **bit-identical** to freshly computed ones — payloads
//! round-trip raw IEEE-754 bits, never a decimal rendering.
//!
//! ## Directory layout
//!
//! ```text
//! <root>/FORMAT        "khaos-store 2\n" — refuse directories of any other version
//! <root>/tmp/          staging area for atomic renames
//! <root>/emb/<addr>.khs   per-binary embedding tables
//! <root>/mat/<addr>.khs   query×target similarity matrices
//! <root>/rep/<addr>.khs   pipeline / experiment reports
//! <root>/rep/<addr>.lease cell claim files (work-queue leases, see below)
//! <root>/qnt/<addr>.khs   per-binary int8 quantized embedding tables
//! <root>/idx/<addr>.khs   IVF index segments over embedding corpora
//! ```
//!
//! `<addr>` is the content address: 16 hex digits of FNV-1a over the
//! record's kind tag + encoded key block. Keys are built from content
//! fingerprints, so the addressing is content addressing one hash
//! removed.
//!
//! ## Record format (version 2, all integers little-endian)
//!
//! ```text
//! magic            4 bytes   "KHST"
//! format version   u32       2
//! kind             u8        1 = embeddings, 2 = matrix, 3 = report,
//!                            4 = quantized embeddings, 5 = IVF index
//!                            segment
//! key block        kind-specific, see below
//! payload length   u64       bytes of payload that follow
//! payload          kind-specific, see below
//! checksum         u64       FNV-1a over every preceding byte
//! ```
//!
//! Key blocks (strings are u32 length + UTF-8 bytes):
//!
//! * embeddings: `tool: str`, `config: u64`, `binary: u64`
//! * matrix:     `tool: str`, `config: u64`, `query: u64`, `target: u64`
//! * report:     `pipeline: u64`, `seed: u64`, `subject: str`
//! * quantized:  `tool: str`, `config: u64`, `binary: u64` (the
//!   embedding key; the kind tag keeps the addresses disjoint)
//! * index:      `tool: str`, `config: u64`, `corpus: u64` (FNV-1a
//!   fingerprint over the indexed rows' provenance)
//!
//! Payloads:
//!
//! * embeddings / matrix: `rows: u64`, `dim: u64`, then `rows × dim`
//!   f64 values stored as raw bit patterns (`f64::to_bits`, LE) — the
//!   byte-exact round trip the store's tests pin;
//! * report: `spec: str`, `total_micros: u64`, pass count (u32) and
//!   per-pass `{atom: str, micros: u64, before/after shape: 3×u64}`,
//!   then metric count (u32) and per-metric `{name: str, value: f64
//!   bits}`;
//! * quantized: `rows: u64`, `dim: u64`, `rows` per-row scales then
//!   `rows` per-row offsets (f64 bits), then `rows × dim` i8 codes as
//!   raw bytes — i8 payload and scales round-trip bit-exactly;
//! * index: `rows: u64`, `dim: u64`, `nlist: u64`, `nprobe: u32`,
//!   `seed: u64`, `nlist × dim` centroid f64 bits, `rows` u32 cell
//!   assignments, then `rows` per-row provenance records
//!   `{binary: u64, function: u32, name: str}`. The corpus' f64 and
//!   int8 tables are separate `emb`/`qnt` records keyed by the corpus
//!   fingerprint — one index segment is those three records together.
//!
//! **A format-version bump is a cache-invalidating event**: readers
//! refuse both records and whole store directories of any other
//! version, exactly like a `Binary::fingerprint` digest change
//! invalidates the in-memory cache keys. Version 2 (the quantized
//! record kind) was such a bump: v1 directories are refused and
//! recompute from scratch under a fresh stamp. The index kind was
//! added to version 2 **without** a bump — purely additive, and
//! readers that predate it diagnose the unknown kind by name instead
//! of refusing the store.
//!
//! ## Concurrency
//!
//! Writers serialize the full record in memory, write it to
//! `tmp/<pid>-<counter>.part`, and `rename(2)` it into place — readers
//! only ever observe complete records, so any number of `par_fan_out`
//! workers (or separate processes) can share one store without
//! coordination. Mutating maintenance ([`Store::gc`]) takes an
//! exclusive lock file (`gc.lock`, created with `O_EXCL`; stale locks
//! older than ten minutes are stolen) so two collectors never race.
//!
//! Stale locks are stolen with a rename-verify-delete dance, never a
//! bare `remove_file`: the stealer renames the suspect lock to a
//! process-unique grave name (the rename is the atomic arbiter — only
//! one stealer gets the inode), re-checks the *renamed* file's mtime,
//! and only then deletes it. A fresh lock that slipped into the window
//! between the staleness check and the rename is put back via
//! `hard_link` (which, unlike rename, refuses to clobber). The old
//! check-then-delete had a TOCTOU hole: another process could steal
//! and recreate the lock inside the window, and the late deleter would
//! remove the *fresh* holder's lock, letting two collectors run
//! concurrently.
//!
//! ## Cell leases (elastic work queues)
//!
//! The same stolen-stale-lock pattern, generalized per record, turns
//! the report keyspace into a persistent work queue: a worker claims a
//! grid cell by creating `rep/<addr>.lease` with `O_EXCL` next to
//! where the cell's report record will land ([`Store::try_lease_report`]),
//! computes, persists the record, and releases the claim. A worker
//! that dies mid-cell leaves the claim file behind; once it is older
//! than the lease horizon any other worker steals it (same
//! rename-verify-delete primitive) and recomputes the cell — cells are
//! deterministic functions of their key, so a re-steal is always safe.
//! Claim files use the `.lease` extension precisely so every record
//! scan (`stats`, `ls`, `verify`, `gc`, `merge`) ignores them: they
//! are coordination state, not artifacts, and are **excluded from gc
//! accounting** — a dangling claim never counts against `max_bytes`
//! and is never "collected" into a half-claimed queue.

mod format;

pub use format::{
    fnv1a, OwnedKey, FORMAT_VERSION, KIND_EMBEDDINGS, KIND_INDEX, KIND_MATRIX, KIND_QUANT,
    KIND_REPORT, KNOWN_KINDS, MAGIC,
};

/// The little-endian encoder/decoder pair behind the record format,
/// exported for protocols that reuse the `KHST` grammar on the wire
/// (`khaos-serve` frames are records with an empty key block).
pub mod codec {
    pub use crate::format::{Dec, Enc};
}

use format::{Payload, Record};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, SystemTime};

/// Global-registry handles for the disk tier's telemetry, resolved
/// once per process so the per-event cost is one relaxed atomic add.
/// Counters aggregate across every `Store` instance in the process;
/// `khaos-store stats` stays the per-directory view.
struct StoreObs {
    writes: Arc<khaos_obs::Counter>,
    write_bytes: Arc<khaos_obs::Counter>,
    reads: Arc<khaos_obs::Counter>,
    read_bytes: Arc<khaos_obs::Counter>,
    read_misses: Arc<khaos_obs::Counter>,
    gc_deleted: Arc<khaos_obs::Counter>,
    gc_freed_bytes: Arc<khaos_obs::Counter>,
    lease_acquired: Arc<khaos_obs::Counter>,
    lease_stolen: Arc<khaos_obs::Counter>,
    lease_contended: Arc<khaos_obs::Counter>,
    merge_copied: Arc<khaos_obs::Counter>,
    merge_skipped: Arc<khaos_obs::Counter>,
}

fn store_obs() -> &'static StoreObs {
    static OBS: OnceLock<StoreObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = khaos_obs::Registry::global();
        StoreObs {
            writes: r.counter("store.disk.writes"),
            write_bytes: r.counter("store.disk.write_bytes"),
            reads: r.counter("store.disk.reads"),
            read_bytes: r.counter("store.disk.read_bytes"),
            read_misses: r.counter("store.disk.read_misses"),
            gc_deleted: r.counter("store.gc.deleted"),
            gc_freed_bytes: r.counter("store.gc.freed_bytes"),
            lease_acquired: r.counter("store.lease.acquired"),
            lease_stolen: r.counter("store.lease.stolen"),
            lease_contended: r.counter("store.lease.contended"),
            merge_copied: r.counter("store.merge.copied"),
            merge_skipped: r.counter("store.merge.skipped"),
        }
    })
}

/// A flat row-major f64 table — the wire form of both embedding tables
/// (`rows` functions × `dim` features) and similarity matrices (`rows`
/// queries × `dim` targets). `data` round-trips bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatTable {
    /// Row count.
    pub rows: u64,
    /// Row width.
    pub dim: u64,
    /// `rows * dim` values, row-major.
    pub data: Vec<f64>,
}

impl FlatTable {
    /// Wraps a flat buffer; panics when the shape disagrees with the
    /// data length (a caller bug, surfaced loudly before it hits disk).
    pub fn new(rows: usize, dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(rows * dim, data.len(), "flat table shape mismatch");
        FlatTable {
            rows: rows as u64,
            dim: dim as u64,
            data,
        }
    }

    /// Borrowed view of this table (the write-side form).
    pub fn view(&self) -> TableView<'_> {
        TableView {
            rows: self.rows,
            dim: self.dim,
            data: &self.data,
        }
    }
}

/// Borrowed view of a flat row-major f64 table — what the write paths
/// take, so persisting an embedding table or matrix never clones its
/// buffer (the encoder serializes straight from the slice).
#[derive(Clone, Copy, Debug)]
pub struct TableView<'a> {
    /// Row count.
    pub rows: u64,
    /// Row width.
    pub dim: u64,
    /// `rows * dim` values, row-major.
    pub data: &'a [f64],
}

impl<'a> TableView<'a> {
    /// Wraps a flat buffer; panics when the shape disagrees with the
    /// data length (a caller bug, surfaced loudly before it hits disk).
    pub fn new(rows: usize, dim: usize, data: &'a [f64]) -> Self {
        assert_eq!(rows * dim, data.len(), "flat table shape mismatch");
        TableView {
            rows: rows as u64,
            dim: dim as u64,
            data,
        }
    }
}

/// An owned int8 quantized embedding table — the wire form of
/// `khaos_diff::quant::QuantizedEmbeddings` (`rows` functions × `dim`
/// i8 codes, one `(scale, offset)` f64 pair per row). Codes and the
/// f64 fields round-trip bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantTable {
    /// Row count.
    pub rows: u64,
    /// Row width (codes per function).
    pub dim: u64,
    /// Per-row quantization scales (`rows` values).
    pub scales: Vec<f64>,
    /// Per-row affine offsets (`rows` values).
    pub offsets: Vec<f64>,
    /// `rows * dim` i8 codes, row-major.
    pub data: Vec<i8>,
}

impl QuantTable {
    /// Borrowed view of this table (the write-side form).
    pub fn view(&self) -> QuantView<'_> {
        QuantView {
            rows: self.rows,
            dim: self.dim,
            scales: &self.scales,
            offsets: &self.offsets,
            data: &self.data,
        }
    }
}

/// Borrowed view of a quantized embedding table — what
/// [`Store::put_quantized`] takes, serialized straight from the
/// slices.
#[derive(Clone, Copy, Debug)]
pub struct QuantView<'a> {
    /// Row count.
    pub rows: u64,
    /// Row width (codes per function).
    pub dim: u64,
    /// Per-row quantization scales (`rows` values).
    pub scales: &'a [f64],
    /// Per-row affine offsets (`rows` values).
    pub offsets: &'a [f64],
    /// `rows * dim` i8 codes, row-major.
    pub data: &'a [i8],
}

impl<'a> QuantView<'a> {
    /// Wraps borrowed quantized parts; panics on shape mismatches (a
    /// caller bug, surfaced loudly before it hits disk).
    pub fn new(
        rows: usize,
        dim: usize,
        scales: &'a [f64],
        offsets: &'a [f64],
        data: &'a [i8],
    ) -> Self {
        assert_eq!(rows * dim, data.len(), "quantized table shape mismatch");
        assert_eq!(scales.len(), rows, "one scale per row");
        assert_eq!(offsets.len(), rows, "one offset per row");
        QuantView {
            rows: rows as u64,
            dim: dim as u64,
            scales,
            offsets,
            data,
        }
    }
}

/// Per-row provenance inside a stored index segment: where the corpus
/// row came from, so a daemon can answer "which function matched"
/// without reloading any binary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoredRowMeta {
    /// `Binary::fingerprint` of the source binary.
    pub binary: u64,
    /// Function index inside that binary.
    pub function: u32,
    /// Function symbol name (empty when anonymous).
    pub name: String,
}

/// An owned IVF index segment — the wire form of
/// `khaos_index::IvfIndex` minus the corpus tables (which persist as
/// their own `emb`/`qnt` records under the corpus fingerprint).
#[derive(Clone, Debug, PartialEq)]
pub struct IndexTable {
    /// Corpus row count.
    pub rows: u64,
    /// Embedding dimension.
    pub dim: u64,
    /// Number of coarse cells (k-means centroids).
    pub nlist: u64,
    /// Default number of cells probed per query.
    pub nprobe: u32,
    /// Seed the k-means build ran under.
    pub seed: u64,
    /// `nlist * dim` centroid values, row-major, L2-normalized.
    pub centroids: Vec<f64>,
    /// Per-corpus-row cell assignment (`rows` values, each `< nlist`).
    pub assignments: Vec<u32>,
    /// Per-corpus-row provenance (`rows` entries).
    pub meta: Vec<StoredRowMeta>,
}

/// IR shape snapshot inside a stored report (functions/blocks/insts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoredShape {
    /// Function count.
    pub functions: u64,
    /// Basic-block count.
    pub blocks: u64,
    /// Instruction count.
    pub insts: u64,
}

/// One pass of a stored pipeline report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredPass {
    /// Canonical spec atom of the pass.
    pub pass: String,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
    /// Module shape before the pass.
    pub before: StoredShape,
    /// Module shape after the pass.
    pub after: StoredShape,
}

/// A persisted experiment artifact: what one pipeline run did to one
/// subject, plus any metric results measured on the outcome. Keyed by
/// `(pipeline fingerprint, seed, subject)`.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredReport {
    /// Canonical pipeline spec.
    pub spec: String,
    /// `Pipeline::fingerprint()` of the spec.
    pub pipeline: u64,
    /// Obfuscation seed of the run.
    pub seed: u64,
    /// What was built/measured (program name, experiment cell, …).
    pub subject: String,
    /// Total pipeline wall-clock in microseconds.
    pub total_micros: u64,
    /// Per-pass timing and IR deltas, in execution order.
    pub passes: Vec<StoredPass>,
    /// Named metric results (escape@k, similarity, overhead, …).
    pub metrics: Vec<(String, f64)>,
}

impl StoredReport {
    /// Converts a [`khaos_pass::PipelineReport`] into its persistent
    /// form, stamped with the subject (program name, experiment cell,
    /// …) it was measured on — the one conversion every driver
    /// (`khaos-bench`, `khaos-obf`, BinTuner) shares. Metrics start
    /// empty; push onto [`StoredReport::metrics`] before
    /// [`Store::put_report`] to attach results.
    pub fn from_pipeline(subject: &str, report: &khaos_pass::PipelineReport) -> StoredReport {
        let shape = |s: &khaos_pass::IrShape| StoredShape {
            functions: s.functions as u64,
            blocks: s.blocks as u64,
            insts: s.insts as u64,
        };
        StoredReport {
            spec: report.spec.clone(),
            pipeline: report.fingerprint,
            seed: report.seed,
            subject: subject.to_string(),
            total_micros: report.total.as_micros() as u64,
            passes: report
                .passes
                .iter()
                .map(|p| StoredPass {
                    pass: p.pass.clone(),
                    micros: p.duration.as_micros() as u64,
                    before: shape(&p.before),
                    after: shape(&p.after),
                })
                .collect(),
            metrics: Vec::new(),
        }
    }
}

/// Lookup key of an embedding-table record — the same
/// `(tool name, config fingerprint, binary fingerprint)` tuple the
/// in-memory embedding cache keys on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EmbKey<'a> {
    /// Differ name.
    pub tool: &'a str,
    /// Differ configuration fingerprint.
    pub config: u64,
    /// `Binary::fingerprint` of the embedded binary.
    pub binary: u64,
}

/// Lookup key of a similarity-matrix record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatKey<'a> {
    /// Differ name.
    pub tool: &'a str,
    /// Differ configuration fingerprint.
    pub config: u64,
    /// Query-side binary fingerprint.
    pub query: u64,
    /// Target-side binary fingerprint.
    pub target: u64,
}

/// Lookup key of an index-segment record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IndexKey<'a> {
    /// Differ name.
    pub tool: &'a str,
    /// Differ configuration fingerprint.
    pub config: u64,
    /// Corpus fingerprint (FNV over the indexed rows' provenance).
    pub corpus: u64,
}

/// Lookup key of a report record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReportKey<'a> {
    /// `Pipeline::fingerprint()` of the build.
    pub pipeline: u64,
    /// Obfuscation seed of the run.
    pub seed: u64,
    /// Free-form subject string.
    pub subject: &'a str,
}

/// Record counts and byte totals of one store section.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SectionStats {
    /// Number of record files.
    pub records: u64,
    /// Their total size in bytes.
    pub bytes: u64,
}

/// Aggregate [`Store::stats`] over the five sections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// The `emb/` section.
    pub embeddings: SectionStats,
    /// The `mat/` section.
    pub matrices: SectionStats,
    /// The `rep/` section.
    pub reports: SectionStats,
    /// The `qnt/` section (int8 quantized embedding tables).
    pub quantized: SectionStats,
    /// The `idx/` section (IVF index segments).
    pub indexes: SectionStats,
}

impl StoreStats {
    /// Total record count across sections.
    pub fn total_records(&self) -> u64 {
        self.embeddings.records
            + self.matrices.records
            + self.reports.records
            + self.quantized.records
            + self.indexes.records
    }

    /// Total bytes across sections.
    pub fn total_bytes(&self) -> u64 {
        self.embeddings.bytes
            + self.matrices.bytes
            + self.reports.bytes
            + self.quantized.bytes
            + self.indexes.bytes
    }
}

/// One record as listed by [`Store::ls`].
#[derive(Clone, Debug)]
pub struct RecordInfo {
    /// Section directory name (`emb`/`mat`/`rep`).
    pub section: &'static str,
    /// File name inside the section.
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-modified time, when the filesystem reports one.
    pub modified: Option<SystemTime>,
    /// Human-readable key, or `None` when the record does not decode.
    pub key: Option<String>,
}

/// One fully decoded record, as returned by [`Store::cat`] — the
/// single-record inspection the `khaos-store cat` subcommand prints.
#[derive(Clone, Debug)]
pub struct RecordDump {
    /// Section directory name (`emb`/`mat`/`rep`).
    pub section: &'static str,
    /// File name inside the section.
    pub file: String,
    /// The decoded key.
    pub key: OwnedKey,
    /// The decoded payload.
    pub payload: PayloadDump,
}

/// Decoded payload of a [`RecordDump`].
#[derive(Clone, Debug)]
pub enum PayloadDump {
    /// An embedding table or similarity matrix.
    Table(FlatTable),
    /// A pipeline/experiment report.
    Report(StoredReport),
    /// An int8 quantized embedding table.
    Quant(QuantTable),
    /// An IVF index segment.
    Index(IndexTable),
}

impl std::fmt::Display for RecordDump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}/{}", self.section, self.file)?;
        writeln!(f, "key: {}", self.key)?;
        match &self.payload {
            PayloadDump::Table(t) => {
                writeln!(f, "payload: {}x{} f64 table", t.rows, t.dim)?;
                for (i, row) in t.data.chunks(t.dim.max(1) as usize).take(4).enumerate() {
                    write!(f, "  row {i}:")?;
                    for v in row.iter().take(8) {
                        write!(f, " {v:.6}")?;
                    }
                    if row.len() > 8 {
                        write!(f, " … ({} more)", row.len() - 8)?;
                    }
                    writeln!(f)?;
                }
                if t.rows > 4 {
                    writeln!(f, "  … ({} more rows)", t.rows - 4)?;
                }
            }
            PayloadDump::Report(r) => {
                writeln!(
                    f,
                    "payload: report `{}` spec=`{}` total={}us",
                    r.subject, r.spec, r.total_micros
                )?;
                for p in &r.passes {
                    writeln!(
                        f,
                        "  pass {:<14} {:>8}us  {}f/{}b/{}i -> {}f/{}b/{}i",
                        p.pass,
                        p.micros,
                        p.before.functions,
                        p.before.blocks,
                        p.before.insts,
                        p.after.functions,
                        p.after.blocks,
                        p.after.insts
                    )?;
                }
                for (name, value) in &r.metrics {
                    writeln!(f, "  metric {name} = {value}")?;
                }
            }
            PayloadDump::Quant(q) => {
                writeln!(f, "payload: {}x{} i8 quantized table", q.rows, q.dim)?;
                for (i, row) in q.data.chunks(q.dim.max(1) as usize).take(4).enumerate() {
                    write!(
                        f,
                        "  row {i}: scale={:.6e} offset={:.6e} codes:",
                        q.scales.get(i).copied().unwrap_or(0.0),
                        q.offsets.get(i).copied().unwrap_or(0.0)
                    )?;
                    for v in row.iter().take(8) {
                        write!(f, " {v}")?;
                    }
                    if row.len() > 8 {
                        write!(f, " … ({} more)", row.len() - 8)?;
                    }
                    writeln!(f)?;
                }
                if q.rows > 4 {
                    writeln!(f, "  … ({} more rows)", q.rows - 4)?;
                }
            }
            PayloadDump::Index(t) => {
                writeln!(
                    f,
                    "payload: IVF index segment, {} rows x {} dim, nlist={} nprobe={} seed={:#x}",
                    t.rows, t.dim, t.nlist, t.nprobe, t.seed
                )?;
                let mut sizes = vec![0u64; t.nlist as usize];
                for &a in &t.assignments {
                    if let Some(s) = sizes.get_mut(a as usize) {
                        *s += 1;
                    }
                }
                let occupied = sizes.iter().filter(|&&s| s > 0).count();
                writeln!(
                    f,
                    "  cells: {occupied}/{} occupied, largest {}",
                    t.nlist,
                    sizes.iter().max().copied().unwrap_or(0)
                )?;
                for (i, m) in t.meta.iter().take(4).enumerate() {
                    writeln!(
                        f,
                        "  row {i}: bin={:016x} fn#{} `{}` -> cell {}",
                        m.binary,
                        m.function,
                        m.name,
                        t.assignments.get(i).copied().unwrap_or(0)
                    )?;
                }
                if t.rows > 4 {
                    writeln!(f, "  … ({} more rows)", t.rows - 4)?;
                }
            }
        }
        Ok(())
    }
}

/// One problem found by [`Store::verify`].
#[derive(Clone, Debug)]
pub struct VerifyIssue {
    /// `section/file` of the offending record.
    pub file: String,
    /// What is wrong with it.
    pub reason: String,
}

/// What one [`Store::gc`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcSummary {
    /// Records examined.
    pub scanned: u64,
    /// Records deleted (oldest-first).
    pub deleted: u64,
    /// Store size before collection.
    pub bytes_before: u64,
    /// Store size after collection.
    pub bytes_after: u64,
}

const FORMAT_FILE: &str = "FORMAT";
const TMP_DIR: &str = "tmp";
const GC_LOCK: &str = "gc.lock";
/// Lock files older than this are assumed to be left over from a
/// crashed collector and are stolen.
const STALE_LOCK: Duration = Duration::from_secs(600);
/// Extension of cell claim files (`rep/<addr>.lease`). Deliberately
/// not `.khs`: every record scan filters on the record extension, so
/// claim files are invisible to `stats`/`ls`/`verify`/`gc`/`merge`.
const LEASE_EXT: &str = "lease";
/// Default lease horizon when `KHAOS_LEASE_MS` is unset: a claim file
/// older than this marks a dead worker and is stolen. Must exceed the
/// slowest single cell build; well under the gc `STALE_LOCK` horizon
/// because cells are small units of work, not whole collections.
const DEFAULT_LEASE: Duration = Duration::from_secs(120);

/// The five record sections, in `(name, kind)` order.
const SECTIONS: [(&str, u8); 5] = [
    ("emb", KIND_EMBEDDINGS),
    ("mat", KIND_MATRIX),
    ("rep", KIND_REPORT),
    ("qnt", KIND_QUANT),
    ("idx", KIND_INDEX),
];

/// A content-addressed artifact store rooted at one directory. Cheap to
/// clone behind an `Arc`; all operations take `&self`.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

/// Exclusive store-maintenance lock; the lock file is removed on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A held claim on one report cell (see the crate docs' *Cell leases*
/// section). The claim file is removed on drop; a worker that dies
/// without dropping leaves it behind for another worker to steal after
/// the lease horizon.
#[derive(Debug)]
pub struct Lease {
    path: PathBuf,
    stolen: bool,
}

impl Lease {
    /// Whether this claim was stolen from a dead worker's stale claim
    /// file (as opposed to created on free ground).
    pub fn was_stolen(&self) -> bool {
        self.stolen
    }

    /// The claim file backing this lease.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-stamps the claim file's mtime (by rewriting the owner pid) so
    /// a long-running cell is not stolen mid-compute. Call at least
    /// once per lease horizon while still working.
    pub fn refresh(&self) -> io::Result<()> {
        fs::write(&self.path, format!("{}\n", std::process::id()))
    }

    /// Releases the claim (same as dropping, spelled for call sites
    /// where the release is the point).
    pub fn release(self) {}
}

impl Drop for Lease {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// What one [`Store::merge_from`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeSummary {
    /// Records copied into the destination.
    pub copied: u64,
    /// Records skipped because the destination already holds the
    /// byte-identical record.
    pub skipped: u64,
}

impl Store {
    /// Opens (creating if necessary) a store directory. Fails with
    /// `InvalidData` when the directory was written by a different
    /// format version — a version bump invalidates the whole store by
    /// design; delete the directory to rebuild it.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Store> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join(TMP_DIR))?;
        for (section, _) in SECTIONS {
            fs::create_dir_all(root.join(section))?;
        }
        let store = Store { root };
        let stamp = store.root.join(FORMAT_FILE);
        let want = format!("khaos-store {FORMAT_VERSION}\n");
        match fs::read_to_string(&stamp) {
            Ok(have) if have == want => {}
            Ok(have) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: store format `{}` but this build writes `{}`; a format-version \
                         bump invalidates every record — delete the directory to rebuild it",
                        store.root.display(),
                        have.trim(),
                        want.trim()
                    ),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                store.write_atomic(&stamp, want.as_bytes())?;
            }
            Err(e) => return Err(e),
        }
        Ok(store)
    }

    /// Opens a directory that must already be a store — the
    /// inspection/merge-side entry point ([`Store::open`] is for
    /// writers: it creates the tree, which would turn a typo'd path in
    /// `khaos-store report` or a shard merge into a freshly created
    /// empty store that misreads as "every cell missing"). The `FORMAT`
    /// stamp is the store marker: requiring it keeps read-only commands
    /// from silently converting some other existing directory into a
    /// store by planting section dirs and a stamp inside it.
    pub fn open_existing(root: impl AsRef<Path>) -> io::Result<Store> {
        let root = root.as_ref();
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}: no such store directory", root.display()),
            ));
        }
        if !root.join(FORMAT_FILE).is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "{}: not a khaos-store directory (no {FORMAT_FILE} stamp)",
                    root.display()
                ),
            ));
        }
        Store::open(root)
    }

    /// The store configured by the `KHAOS_STORE` environment variable,
    /// opened once per process. `None` when the variable is unset,
    /// empty, or the directory cannot be opened (a warning is printed
    /// once — a broken disk cache must never fail the workload).
    pub fn from_env() -> Option<Arc<Store>> {
        static ENV_STORE: OnceLock<Option<Arc<Store>>> = OnceLock::new();
        ENV_STORE
            .get_or_init(|| {
                let dir = std::env::var("KHAOS_STORE")
                    .ok()
                    .filter(|s| !s.trim().is_empty())?;
                match Store::open(&dir) {
                    Ok(s) => Some(Arc::new(s)),
                    Err(e) => {
                        eprintln!(
                            "khaos-store: cannot open `{dir}`: {e}; continuing without a disk cache"
                        );
                        None
                    }
                }
            })
            .clone()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Serializes to a staging file, then atomically renames into
    /// place. Readers never observe a partial record.
    fn write_atomic(&self, dest: &Path, bytes: &[u8]) -> io::Result<()> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "{}-{}.part",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let tmp = self.root.join(TMP_DIR).join(unique);
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, dest)
            .inspect(|()| {
                let obs = store_obs();
                obs.writes.inc();
                obs.write_bytes.add(bytes.len() as u64);
            })
            .inspect_err(|_| {
                let _ = fs::remove_file(&tmp);
            })
    }

    /// Reads one record file, counting the disk-tier hit/miss in the
    /// metrics registry. `Ok(None)` on a missing file; other I/O errors
    /// surface.
    fn read_record_bytes(path: &Path) -> io::Result<Option<Vec<u8>>> {
        match fs::read(path) {
            Ok(b) => {
                let obs = store_obs();
                obs.reads.inc();
                obs.read_bytes.add(b.len() as u64);
                Ok(Some(b))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                store_obs().read_misses.inc();
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn record_path(&self, section: &str, kind: u8, key_bytes: &[u8]) -> PathBuf {
        self.root
            .join(section)
            .join(format!("{}.khs", format::address(kind, key_bytes)))
    }

    /// Persists an embedding table (zero-copy from the borrowed view).
    pub fn put_embeddings(&self, key: &EmbKey, table: TableView<'_>) -> io::Result<()> {
        assert_eq!(
            table.rows * table.dim,
            table.data.len() as u64,
            "flat table shape mismatch"
        );
        let kb = format::key_bytes_emb(key.tool, key.config, key.binary);
        let bytes = format::encode_embeddings(key.tool, key.config, key.binary, table);
        self.write_atomic(&self.record_path("emb", KIND_EMBEDDINGS, &kb), &bytes)
    }

    /// Loads an embedding table; `Ok(None)` on a miss **or** on a
    /// corrupt/foreign record (a damaged disk cache degrades to a cache
    /// miss, never to an error — `khaos-store verify` reports the
    /// damage explicitly).
    pub fn get_embeddings(&self, key: &EmbKey) -> io::Result<Option<FlatTable>> {
        let kb = format::key_bytes_emb(key.tool, key.config, key.binary);
        let want = OwnedKey::Emb {
            tool: key.tool.to_string(),
            config: key.config,
            binary: key.binary,
        };
        self.get_table(self.record_path("emb", KIND_EMBEDDINGS, &kb), &want)
    }

    /// Persists a similarity matrix (zero-copy from the borrowed view).
    pub fn put_matrix(&self, key: &MatKey, table: TableView<'_>) -> io::Result<()> {
        assert_eq!(
            table.rows * table.dim,
            table.data.len() as u64,
            "flat table shape mismatch"
        );
        let kb = format::key_bytes_mat(key.tool, key.config, key.query, key.target);
        let bytes = format::encode_matrix(key.tool, key.config, key.query, key.target, table);
        self.write_atomic(&self.record_path("mat", KIND_MATRIX, &kb), &bytes)
    }

    /// Loads a similarity matrix (same miss semantics as
    /// [`Store::get_embeddings`]).
    pub fn get_matrix(&self, key: &MatKey) -> io::Result<Option<FlatTable>> {
        let kb = format::key_bytes_mat(key.tool, key.config, key.query, key.target);
        let want = OwnedKey::Mat {
            tool: key.tool.to_string(),
            config: key.config,
            query: key.query,
            target: key.target,
        };
        self.get_table(self.record_path("mat", KIND_MATRIX, &kb), &want)
    }

    fn get_table(&self, path: PathBuf, want: &OwnedKey) -> io::Result<Option<FlatTable>> {
        let Some(bytes) = Self::read_record_bytes(&path)? else {
            return Ok(None);
        };
        match format::decode_record(&bytes) {
            Ok(Record {
                key,
                payload: Payload::Table(t),
                ..
            }) if key == *want => Ok(Some(t)),
            // Corrupt record or a 64-bit address collision with a
            // different key: both degrade to a miss.
            _ => Ok(None),
        }
    }

    /// Persists an int8 quantized embedding table under the embedding
    /// key (kind 4, the `qnt/` section — the content addresses stay
    /// disjoint from the f64 table's).
    pub fn put_quantized(&self, key: &EmbKey, table: QuantView<'_>) -> io::Result<()> {
        let kb = format::key_bytes_emb(key.tool, key.config, key.binary);
        let bytes = format::encode_quantized(key.tool, key.config, key.binary, table);
        self.write_atomic(&self.record_path("qnt", KIND_QUANT, &kb), &bytes)
    }

    /// Loads a quantized embedding table (same miss semantics as
    /// [`Store::get_embeddings`]: damage degrades to a miss; the i8
    /// codes and per-row scales round-trip bit-exactly on a hit).
    pub fn get_quantized(&self, key: &EmbKey) -> io::Result<Option<QuantTable>> {
        let kb = format::key_bytes_emb(key.tool, key.config, key.binary);
        let want = OwnedKey::Quant {
            tool: key.tool.to_string(),
            config: key.config,
            binary: key.binary,
        };
        let path = self.record_path("qnt", KIND_QUANT, &kb);
        let Some(bytes) = Self::read_record_bytes(&path)? else {
            return Ok(None);
        };
        match format::decode_record(&bytes) {
            Ok(Record {
                key,
                payload: Payload::Quant(q),
                ..
            }) if key == want => Ok(Some(q)),
            _ => Ok(None),
        }
    }

    /// Persists a report, keyed by its
    /// `(pipeline fingerprint, seed, subject)`.
    pub fn put_report(&self, report: &StoredReport) -> io::Result<()> {
        let kb = format::key_bytes_rep(report.pipeline, report.seed, &report.subject);
        let bytes = format::encode_report(report);
        self.write_atomic(&self.record_path("rep", KIND_REPORT, &kb), &bytes)
    }

    /// Loads a report (same miss semantics as [`Store::get_embeddings`]).
    pub fn get_report(&self, key: &ReportKey) -> io::Result<Option<StoredReport>> {
        let kb = format::key_bytes_rep(key.pipeline, key.seed, key.subject);
        let path = self.record_path("rep", KIND_REPORT, &kb);
        let Some(bytes) = Self::read_record_bytes(&path)? else {
            return Ok(None);
        };
        match format::decode_record(&bytes) {
            Ok(Record {
                payload: Payload::Report(r),
                ..
            }) if r.pipeline == key.pipeline && r.seed == key.seed && r.subject == key.subject => {
                Ok(Some(r))
            }
            _ => Ok(None),
        }
    }

    /// Persists an IVF index segment, keyed by
    /// `(tool, config, corpus fingerprint)`.
    pub fn put_index(&self, key: &IndexKey, table: &IndexTable) -> io::Result<()> {
        assert_eq!(
            table.rows as usize,
            table.assignments.len(),
            "one cell assignment per corpus row"
        );
        assert_eq!(
            table.rows as usize,
            table.meta.len(),
            "one provenance entry per corpus row"
        );
        assert_eq!(
            (table.nlist * table.dim) as usize,
            table.centroids.len(),
            "index centroid shape mismatch"
        );
        let kb = format::key_bytes_idx(key.tool, key.config, key.corpus);
        let bytes = format::encode_index(key.tool, key.config, key.corpus, table);
        self.write_atomic(&self.record_path("idx", KIND_INDEX, &kb), &bytes)
    }

    /// Loads an index segment (same miss semantics as
    /// [`Store::get_embeddings`]: damage degrades to a miss; `verify`
    /// names it).
    pub fn get_index(&self, key: &IndexKey) -> io::Result<Option<IndexTable>> {
        let kb = format::key_bytes_idx(key.tool, key.config, key.corpus);
        let want = OwnedKey::Index {
            tool: key.tool.to_string(),
            config: key.config,
            corpus: key.corpus,
        };
        let path = self.record_path("idx", KIND_INDEX, &kb);
        let Some(bytes) = Self::read_record_bytes(&path)? else {
            return Ok(None);
        };
        match format::decode_record(&bytes) {
            Ok(Record {
                key,
                payload: Payload::Index(t),
                ..
            }) if key == want => Ok(Some(t)),
            _ => Ok(None),
        }
    }

    /// Decodes every index segment in the store, sorted by
    /// `(tool, config, corpus)` for deterministic output — what a
    /// daemon enumerates at startup. Records that fail to decode are
    /// skipped here; [`Store::verify`] is the tool that names them.
    pub fn index_records(&self) -> io::Result<Vec<(String, u64, u64, IndexTable)>> {
        let mut out = Vec::new();
        for (path, _) in self.section_files("idx")? {
            if let Ok(bytes) = fs::read(&path) {
                if let Ok(Record {
                    key:
                        OwnedKey::Index {
                            tool,
                            config,
                            corpus,
                        },
                    payload: Payload::Index(t),
                    ..
                }) = format::decode_record(&bytes)
                {
                    out.push((tool, config, corpus, t));
                }
            }
        }
        out.sort_by(|a, b| (&a.0, a.1, a.2).cmp(&(&b.0, b.1, b.2)));
        Ok(out)
    }

    /// Decodes every report record in the store, sorted by
    /// `(subject, pipeline, seed)` for deterministic output — the query
    /// side of the report keyspace (shard merge tooling and
    /// `khaos-store report` run on this). Records that fail to decode
    /// are skipped here; [`Store::verify`] is the tool that names them.
    pub fn reports(&self) -> io::Result<Vec<StoredReport>> {
        let mut out = Vec::new();
        for (path, _) in self.section_files("rep")? {
            if let Ok(bytes) = fs::read(&path) {
                if let Ok(Record {
                    payload: Payload::Report(r),
                    ..
                }) = format::decode_record(&bytes)
                {
                    out.push(r);
                }
            }
        }
        out.sort_by(|a, b| (&a.subject, a.pipeline, a.seed).cmp(&(&b.subject, b.pipeline, b.seed)));
        Ok(out)
    }

    /// Decodes one record named by `needle` — a bare 16-hex-digit
    /// content address, an address with the `.khs` extension, or a
    /// `section/file` path — searching all three sections. `Ok(None)`
    /// when no such file exists; a file that exists but does not decode
    /// is an `InvalidData` error carrying the decoder's reason (unlike
    /// the `get_*` lookups, inspection must name damage, not mask it).
    pub fn cat(&self, needle: &str) -> io::Result<Option<RecordDump>> {
        let (sections, stem): (Vec<&'static str>, &str) = match needle.split_once('/') {
            Some((section, file)) => {
                let section = SECTIONS
                    .iter()
                    .map(|(s, _)| *s)
                    .find(|s| *s == section)
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("unknown section `{section}` (want emb, mat, rep, qnt or idx)"),
                        )
                    })?;
                (vec![section], file)
            }
            None => (SECTIONS.iter().map(|(s, _)| *s).collect(), needle),
        };
        // The store only ever writes flat `<hex>.khs` names; a needle
        // smuggling path separators or `..` would otherwise read files
        // outside the store root.
        if stem.contains(['/', '\\']) || stem.contains("..") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("`{needle}` is not a record name (want a content address or section/file)"),
            ));
        }
        let file = format!("{}.khs", stem.trim_end_matches(".khs"));
        for section in sections {
            let path = self.root.join(section).join(&file);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let record = format::decode_record(&bytes).map_err(|reason| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{section}/{file}: {reason}"),
                )
            })?;
            return Ok(Some(RecordDump {
                section,
                file,
                key: record.key,
                payload: match record.payload {
                    Payload::Table(t) => PayloadDump::Table(t),
                    Payload::Report(r) => PayloadDump::Report(r),
                    Payload::Quant(q) => PayloadDump::Quant(q),
                    Payload::Index(t) => PayloadDump::Index(t),
                },
            }));
        }
        Ok(None)
    }

    fn section_files(&self, section: &str) -> io::Result<Vec<(PathBuf, fs::Metadata)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join(section))? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("khs") {
                out.push((path, entry.metadata()?));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Record counts and byte totals per section.
    pub fn stats(&self) -> io::Result<StoreStats> {
        let mut stats = StoreStats::default();
        for (section, _) in SECTIONS {
            let mut s = SectionStats::default();
            for (_, meta) in self.section_files(section)? {
                s.records += 1;
                s.bytes += meta.len();
            }
            match section {
                "emb" => stats.embeddings = s,
                "mat" => stats.matrices = s,
                "qnt" => stats.quantized = s,
                "idx" => stats.indexes = s,
                _ => stats.reports = s,
            }
        }
        Ok(stats)
    }

    /// Lists every record with its decoded key (or `None` when the file
    /// does not decode).
    pub fn ls(&self) -> io::Result<Vec<RecordInfo>> {
        let mut out = Vec::new();
        for (section, _) in SECTIONS {
            for (path, meta) in self.section_files(section)? {
                let key = fs::read(&path)
                    .ok()
                    .and_then(|b| format::decode_record(&b).ok())
                    .map(|r| r.key.to_string());
                out.push(RecordInfo {
                    section,
                    file: path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                    bytes: meta.len(),
                    modified: meta.modified().ok(),
                    key,
                });
            }
        }
        Ok(out)
    }

    /// Integrity-checks every record: magic, format version, checksum,
    /// payload shape, and that the file name matches the content
    /// address of the key stored inside. Returns the issues found
    /// (empty = clean).
    pub fn verify(&self) -> io::Result<Vec<VerifyIssue>> {
        let mut issues = Vec::new();
        for (section, kind) in SECTIONS {
            for (path, _) in self.section_files(section)? {
                let name = format!(
                    "{section}/{}",
                    path.file_name()
                        .map(|n| n.to_string_lossy())
                        .unwrap_or_default()
                );
                let bytes = match fs::read(&path) {
                    Ok(b) => b,
                    Err(e) => {
                        issues.push(VerifyIssue {
                            file: name,
                            reason: format!("unreadable: {e}"),
                        });
                        continue;
                    }
                };
                let record = match format::decode_record(&bytes) {
                    Ok(r) => r,
                    Err(reason) => {
                        issues.push(VerifyIssue { file: name, reason });
                        continue;
                    }
                };
                if record.kind != kind {
                    issues.push(VerifyIssue {
                        file: name,
                        reason: format!("kind {} record filed under `{section}/`", record.kind),
                    });
                    continue;
                }
                let want_stem = match &record.key {
                    OwnedKey::Emb {
                        tool,
                        config,
                        binary,
                    } => format::address(kind, &format::key_bytes_emb(tool, *config, *binary)),
                    OwnedKey::Mat {
                        tool,
                        config,
                        query,
                        target,
                    } => format::address(
                        kind,
                        &format::key_bytes_mat(tool, *config, *query, *target),
                    ),
                    OwnedKey::Rep {
                        pipeline,
                        seed,
                        subject,
                    } => format::address(kind, &format::key_bytes_rep(*pipeline, *seed, subject)),
                    OwnedKey::Quant {
                        tool,
                        config,
                        binary,
                    } => format::address(kind, &format::key_bytes_emb(tool, *config, *binary)),
                    OwnedKey::Index {
                        tool,
                        config,
                        corpus,
                    } => format::address(kind, &format::key_bytes_idx(tool, *config, *corpus)),
                };
                let stem = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                if stem != want_stem {
                    issues.push(VerifyIssue {
                        file: name,
                        reason: format!(
                            "file name does not match content address {want_stem} of key `{}`",
                            record.key
                        ),
                    });
                }
            }
        }
        Ok(issues)
    }

    /// Steals a stale lock/claim file, TOCTOU-free: rename it to a
    /// process-unique grave name (the rename is the atomic arbiter —
    /// exactly one stealer gets the inode), verify the *renamed*
    /// file's age, and only then delete it. Returns `true` when the
    /// caller may retry creating the file (the suspect was stale and
    /// is gone, or its holder released it meanwhile).
    ///
    /// A bare check-then-`remove_file` has a hole this closes: between
    /// the staleness check and the delete, another process can steal
    /// the stale file and recreate it fresh, and the late deleter then
    /// removes the *fresh* holder's file — two holders run
    /// concurrently. Rename preserves mtime, so a grave that measures
    /// fresh can only be such a slipped-in fresh file; it is restored
    /// via `hard_link`, which (unlike a rename back) refuses to
    /// clobber a lock created in the meantime.
    fn steal_stale(&self, path: &Path, horizon: Duration) -> bool {
        let age_of = |p: &Path| {
            fs::metadata(p)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|m| m.elapsed().ok())
        };
        match age_of(path) {
            Some(age) if age > horizon => {}
            Some(_) => return false,
            // Gone already: the holder released (or another stealer
            // won); the ground is free, retry the create.
            None => return true,
        }
        static GRAVE: AtomicU64 = AtomicU64::new(0);
        let grave = self.root.join(TMP_DIR).join(format!(
            "{}.steal-{}-{}",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            std::process::id(),
            GRAVE.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::rename(path, &grave).is_err() {
            // Lost the steal race (or the holder released): either way
            // the path's state changed under us — let the caller's
            // retry observe the new state.
            return true;
        }
        match age_of(&grave) {
            Some(age) if age > horizon => {
                let _ = fs::remove_file(&grave);
                true
            }
            _ => {
                // We moved a fresh holder's file. Put it back without
                // clobbering anything created since.
                let _ = fs::hard_link(&grave, path);
                let _ = fs::remove_file(&grave);
                false
            }
        }
    }

    /// Takes the exclusive maintenance lock (used by [`Store::gc`]).
    /// Lock files older than ten minutes are assumed stale (a crashed
    /// collector) and stolen via [`Store::steal_stale`].
    pub fn lock_exclusive(&self) -> io::Result<StoreLock> {
        let path = self.root.join(GC_LOCK);
        for attempt in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists && attempt == 0 => {
                    if !self.steal_stale(&path, STALE_LOCK) {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            format!("{} is held by another maintainer", path.display()),
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "could not acquire the store lock",
        ))
    }

    /// The cell-lease horizon: claim files older than this mark a dead
    /// worker and are stolen. `KHAOS_LEASE_MS` overrides the
    /// two-minute default (tests and CI smokes use sub-second
    /// horizons); read per call, so one process can host workers with
    /// different horizons.
    pub fn lease_horizon() -> Duration {
        std::env::var("KHAOS_LEASE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_LEASE)
    }

    /// Tries to claim the report cell `key` by creating its
    /// `rep/<addr>.lease` claim file with `O_EXCL`. `Ok(None)` when
    /// another live worker holds the claim; a claim older than
    /// `horizon` is stolen ([`Store::steal_stale`]) and re-acquired.
    /// The returned [`Lease`] releases on drop; a worker that dies
    /// holding it leaves the claim file for the next stealer.
    pub fn try_lease_report(
        &self,
        key: &ReportKey,
        horizon: Duration,
    ) -> io::Result<Option<Lease>> {
        let kb = format::key_bytes_rep(key.pipeline, key.seed, key.subject);
        let path = self
            .root
            .join("rep")
            .join(format!("{}.{LEASE_EXT}", format::address(KIND_REPORT, &kb)));
        let obs = store_obs();
        for attempt in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    obs.lease_acquired.inc();
                    if attempt > 0 {
                        obs.lease_stolen.inc();
                    }
                    return Ok(Some(Lease {
                        path,
                        stolen: attempt > 0,
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if attempt == 0 && self.steal_stale(&path, horizon) {
                        continue;
                    }
                    obs.lease_contended.inc();
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
        obs.lease_contended.inc();
        Ok(None)
    }

    /// Physically copies every record of `src` into this store —
    /// verify-then-copy. The whole source is integrity-checked first
    /// ([`Store::verify`]) and the merge **refuses checksum damage**,
    /// naming the first damaged file; it likewise refuses a record
    /// whose destination already exists with *different* bytes (grid
    /// cells are deterministic, so a same-address content conflict
    /// means damage or a foreign record, never legitimate divergence).
    /// Byte-identical records already present are skipped. Claim files
    /// (`.lease`) are coordination state and are never copied.
    pub fn merge_from(&self, src: &Store) -> io::Result<MergeSummary> {
        let _span = khaos_obs::span("store:merge");
        let issues = src.verify()?;
        if let Some(first) = issues.first() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "refusing to merge {}: {}: {} ({} issue(s) in total — repair or delete \
                     the damaged records and re-run)",
                    src.root.display(),
                    first.file,
                    first.reason,
                    issues.len()
                ),
            ));
        }
        let mut summary = MergeSummary::default();
        let obs = store_obs();
        for (section, _) in SECTIONS {
            for (path, _) in src.section_files(section)? {
                let bytes = fs::read(&path)?;
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let dest = self.root.join(section).join(&name);
                match fs::read(&dest) {
                    Ok(have) if have == bytes => {
                        summary.skipped += 1;
                        obs.merge_skipped.inc();
                    }
                    Ok(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "refusing to merge {}: {section}/{name} already exists in {} \
                                 with different content — same content address, different \
                                 bytes indicates damage or a foreign record",
                                src.root.display(),
                                self.root.display()
                            ),
                        ));
                    }
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {
                        self.write_atomic(&dest, &bytes)?;
                        summary.copied += 1;
                        obs.merge_copied.inc();
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(summary)
    }

    /// Shrinks the store to at most `max_bytes` of records by deleting
    /// the **oldest** records first (modification time, ties broken by
    /// file name for determinism). Also sweeps staging files older than
    /// the stale-lock horizon. Holds the exclusive lock for the whole
    /// collection. Claim files (`.lease`) are excluded from the
    /// accounting entirely: they neither count against `max_bytes` nor
    /// get collected — stealing a dead worker's claim is the lease
    /// horizon's job, not the collector's.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcSummary> {
        let _span = khaos_obs::span("store:gc");
        let _lock = self.lock_exclusive()?;
        // Leftover staging files from crashed writers.
        for entry in fs::read_dir(self.root.join(TMP_DIR))? {
            let entry = entry?;
            let old = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|m| m.elapsed().ok())
                .is_some_and(|age| age > STALE_LOCK);
            if old {
                let _ = fs::remove_file(entry.path());
            }
        }
        let mut files: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        for (section, _) in SECTIONS {
            for (path, meta) in self.section_files(section)? {
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                files.push((path, meta.len(), mtime));
            }
        }
        let bytes_before: u64 = files.iter().map(|(_, len, _)| len).sum();
        let mut summary = GcSummary {
            scanned: files.len() as u64,
            deleted: 0,
            bytes_before,
            bytes_after: bytes_before,
        };
        files.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        for (path, len, _) in files {
            if summary.bytes_after <= max_bytes {
                break;
            }
            fs::remove_file(&path)?;
            summary.deleted += 1;
            summary.bytes_after -= len;
        }
        let obs = store_obs();
        obs.gc_deleted.add(summary.deleted);
        obs.gc_freed_bytes
            .add(summary.bytes_before - summary.bytes_after);
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "khaos-store-unit-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn table(rows: usize, dim: usize, salt: u64) -> FlatTable {
        let data: Vec<f64> = (0..rows * dim)
            .map(|i| ((i as u64 ^ salt) as f64).sin())
            .collect();
        FlatTable::new(rows, dim, data)
    }

    #[test]
    fn embeddings_round_trip_bit_exact() {
        let dir = scratch("emb");
        let store = Store::open(&dir).unwrap();
        // Values chosen to exercise non-trivial bit patterns, including
        // a negative zero and a subnormal.
        let mut t = table(5, 7, 0x5eed);
        t.data[0] = -0.0;
        t.data[1] = f64::MIN_POSITIVE / 2.0;
        let key = EmbKey {
            tool: "Asm2Vec",
            config: 0xA5A5,
            binary: 0xB00B5,
        };
        assert_eq!(store.get_embeddings(&key).unwrap(), None);
        store.put_embeddings(&key, t.view()).unwrap();
        let back = store.get_embeddings(&key).unwrap().expect("hit");
        assert_eq!((back.rows, back.dim), (t.rows, t.dim));
        for (a, b) in back.data.iter().zip(&t.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round trip");
        }
        // A different key is a miss, not the same record.
        let other = EmbKey {
            binary: 0xB00B6,
            ..key
        };
        assert_eq!(store.get_embeddings(&other).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn matrix_and_report_round_trip() {
        let dir = scratch("matrep");
        let store = Store::open(&dir).unwrap();
        let m = table(3, 4, 0xC0FFEE);
        let mkey = MatKey {
            tool: "SAFE",
            config: 1,
            query: 2,
            target: 3,
        };
        store.put_matrix(&mkey, m.view()).unwrap();
        assert_eq!(store.get_matrix(&mkey).unwrap().as_ref(), Some(&m));

        let report = StoredReport {
            spec: "fission | O2+lto".into(),
            pipeline: 0xF1,
            seed: 0xC60,
            subject: "400.perlbench".into(),
            total_micros: 1234,
            passes: vec![StoredPass {
                pass: "fission".into(),
                micros: 900,
                before: StoredShape {
                    functions: 10,
                    blocks: 40,
                    insts: 400,
                },
                after: StoredShape {
                    functions: 23,
                    blocks: 61,
                    insts: 470,
                },
            }],
            metrics: vec![("escape@1".into(), 0.75), ("overhead%".into(), -2.5)],
        };
        store.put_report(&report).unwrap();
        let back = store
            .get_report(&ReportKey {
                pipeline: 0xF1,
                seed: 0xC60,
                subject: "400.perlbench",
            })
            .unwrap()
            .expect("hit");
        assert_eq!(back, report);
        // Same pipeline, different subject: distinct record.
        assert_eq!(
            store
                .get_report(&ReportKey {
                    pipeline: 0xF1,
                    seed: 0xC60,
                    subject: "401.bzip2",
                })
                .unwrap(),
            None
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_in_place() {
        let dir = scratch("rewrite");
        let store = Store::open(&dir).unwrap();
        let key = EmbKey {
            tool: "t",
            config: 0,
            binary: 0,
        };
        store.put_embeddings(&key, table(2, 2, 1).view()).unwrap();
        store.put_embeddings(&key, table(2, 2, 2).view()).unwrap();
        assert_eq!(store.stats().unwrap().embeddings.records, 1);
        assert_eq!(store.get_embeddings(&key).unwrap().unwrap(), table(2, 2, 2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_records_degrade_to_misses_and_verify_reports_them() {
        let dir = scratch("corrupt");
        let store = Store::open(&dir).unwrap();
        let key = EmbKey {
            tool: "t",
            config: 7,
            binary: 9,
        };
        store.put_embeddings(&key, table(2, 3, 3).view()).unwrap();
        assert!(store.verify().unwrap().is_empty(), "clean store verifies");
        // Flip one payload byte: checksum breaks.
        let (path, _) = store.section_files("emb").unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            store.get_embeddings(&key).unwrap(),
            None,
            "corruption is a miss, not an error"
        );
        let issues = store.verify().unwrap();
        assert_eq!(issues.len(), 1);
        assert!(
            issues[0].reason.contains("checksum"),
            "{}",
            issues[0].reason
        );
        // A renamed (mis-addressed) record is caught too.
        store.put_embeddings(&key, table(2, 3, 3).view()).unwrap();
        let (path, _) = store.section_files("emb").unwrap().pop().unwrap();
        let moved = path.with_file_name("0000000000000000.khs");
        fs::rename(&path, &moved).unwrap();
        let issues = store.verify().unwrap();
        assert_eq!(issues.len(), 1);
        assert!(
            issues[0].reason.contains("content address"),
            "{}",
            issues[0].reason
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_index(rows: usize, dim: usize, nlist: usize) -> IndexTable {
        IndexTable {
            rows: rows as u64,
            dim: dim as u64,
            nlist: nlist as u64,
            nprobe: 2,
            seed: 0xC60_2023,
            centroids: (0..nlist * dim).map(|i| (i as f64).cos()).collect(),
            assignments: (0..rows).map(|i| (i % nlist) as u32).collect(),
            meta: (0..rows)
                .map(|i| StoredRowMeta {
                    binary: 0xB00 + (i / 3) as u64,
                    function: (i % 3) as u32,
                    name: format!("fn_{i}"),
                })
                .collect(),
        }
    }

    #[test]
    fn index_round_trip_and_listing() {
        let dir = scratch("idx");
        let store = Store::open(&dir).unwrap();
        let t = sample_index(9, 4, 3);
        let key = IndexKey {
            tool: "VulSeeker",
            config: 0xCF6,
            corpus: 0xC0DE,
        };
        assert_eq!(store.get_index(&key).unwrap(), None);
        store.put_index(&key, &t).unwrap();
        assert_eq!(store.get_index(&key).unwrap().as_ref(), Some(&t));
        assert!(store.verify().unwrap().is_empty(), "index records verify");
        assert_eq!(store.stats().unwrap().indexes.records, 1);
        // Listing decodes the same segment with its key triple.
        let listed = store.index_records().unwrap();
        assert_eq!(listed.len(), 1);
        let (tool, config, corpus, back) = &listed[0];
        assert_eq!(
            (tool.as_str(), *config, *corpus),
            ("VulSeeker", 0xCF6, 0xC0DE)
        );
        assert_eq!(back, &t);
        // A different corpus fingerprint is a miss.
        let other = IndexKey {
            corpus: 0xC0DF,
            ..key
        };
        assert_eq!(store.get_index(&other).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_names_unknown_record_kinds() {
        // Regression: a record whose kind tag this build does not know
        // — a newer writer's kind, or a damaged kind byte — must be
        // reported as "unknown record kind N", never as a generic
        // checksum error that points at nothing. The kind byte sits
        // right after the 4-byte magic and the u32 version.
        let dir = scratch("unkind");
        let store = Store::open(&dir).unwrap();
        let key = EmbKey {
            tool: "t",
            config: 1,
            binary: 2,
        };
        store.put_embeddings(&key, table(2, 2, 9).view()).unwrap();
        let (path, _) = store.section_files("emb").unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        assert_eq!(bytes[8], KIND_EMBEDDINGS);

        // Case 1: kind byte damaged in place (checksum now also stale).
        bytes[8] = 42;
        fs::write(&path, &bytes).unwrap();
        let issues = store.verify().unwrap();
        assert_eq!(issues.len(), 1);
        assert!(
            issues[0].reason.contains("unknown record kind 42"),
            "want the kind named, got: {}",
            issues[0].reason
        );
        assert!(
            !issues[0].reason.contains("checksum"),
            "must not degrade to a checksum error: {}",
            issues[0].reason
        );

        // Case 2: a well-formed record of a future kind (checksum
        // recomputed, as a newer writer would produce): same diagnosis,
        // and the lookup degrades to a miss rather than an error.
        let body_len = bytes.len() - 8;
        bytes[8] = 77;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let issues = store.verify().unwrap();
        assert_eq!(issues.len(), 1);
        assert!(
            issues[0].reason.contains("unknown record kind 77"),
            "{}",
            issues[0].reason
        );
        assert_eq!(store.get_embeddings(&key).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_deletes_oldest_first_under_lock() {
        let dir = scratch("gc");
        let store = Store::open(&dir).unwrap();
        for i in 0..4u64 {
            let key = EmbKey {
                tool: "t",
                config: 0,
                binary: i,
            };
            store.put_embeddings(&key, table(4, 8, i).view()).unwrap();
            // Distinct mtimes so the oldest-first order is deterministic
            // even on coarse-grained filesystems.
            let (path, _) = store
                .section_files("emb")
                .unwrap()
                .into_iter()
                .max_by_key(|(_, m)| m.modified().unwrap())
                .unwrap();
            let t = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000 + i * 100);
            let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_modified(t).unwrap();
        }
        let before = store.stats().unwrap();
        assert_eq!(before.embeddings.records, 4);
        let keep = before.total_bytes() / 2;
        let summary = store.gc(keep).unwrap();
        assert_eq!(summary.scanned, 4);
        assert!(summary.deleted >= 2, "{summary:?}");
        assert!(summary.bytes_after <= keep);
        // The newest records survive.
        assert!(store
            .get_embeddings(&EmbKey {
                tool: "t",
                config: 0,
                binary: 3
            })
            .unwrap()
            .is_some());
        assert!(store
            .get_embeddings(&EmbKey {
                tool: "t",
                config: 0,
                binary: 0
            })
            .unwrap()
            .is_none());
        // The lock is released after gc.
        let lock = store.lock_exclusive().unwrap();
        // And held locks block a second taker.
        assert_eq!(
            store.lock_exclusive().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        drop(lock);
        assert!(store.lock_exclusive().is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A forged record declaring an absurd table shape — with a valid
    /// checksum, which is a plain FNV-1a anyone can recompute — must
    /// decode to an error (lookup: miss; verify/cat: named damage),
    /// never reach `Vec::with_capacity` and panic.
    #[test]
    fn forged_huge_shape_is_a_decode_error_not_a_panic() {
        let dir = scratch("forge");
        let store = Store::open(&dir).unwrap();
        let key = EmbKey {
            tool: "t",
            config: 1,
            binary: 2,
        };
        store.put_embeddings(&key, table(2, 2, 9).view()).unwrap();
        let (path, _) = store.section_files("emb").unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Record layout: 9-byte header, 21-byte emb key block ("t" as
        // 4+1 length-prefixed UTF-8, two u64s), u64 payload length,
        // then the payload's `rows` u64 — patch it to 2^61 and restamp
        // the trailing checksum so only the shape check can object.
        let rows_off = 9 + 21 + 8;
        bytes[rows_off..rows_off + 8].copy_from_slice(&(1u64 << 61).to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        fs::write(&path, &bytes).unwrap();

        assert_eq!(
            store.get_embeddings(&key).unwrap(),
            None,
            "forged shape degrades to a miss"
        );
        let issues = store.verify().unwrap();
        assert_eq!(issues.len(), 1);
        assert!(issues[0].reason.contains("shape"), "{}", issues[0].reason);
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let err = store.cat(&stem).unwrap_err();
        assert!(err.to_string().contains("shape"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Ages a file by rewinding its mtime `secs` into the past.
    fn rewind_mtime(path: &Path, secs: u64) {
        let t = SystemTime::now() - Duration::from_secs(secs);
        let f = fs::OpenOptions::new().write(true).open(path).unwrap();
        f.set_modified(t).unwrap();
    }

    #[test]
    fn stale_lock_is_stolen_fresh_lock_is_not() {
        let dir = scratch("steal");
        let store = Store::open(&dir).unwrap();
        // A fresh foreign lock blocks and survives the attempt intact.
        fs::write(dir.join(GC_LOCK), "99999\n").unwrap();
        assert_eq!(
            store.lock_exclusive().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(fs::read_to_string(dir.join(GC_LOCK)).unwrap(), "99999\n");
        // Aged past the horizon it is stolen.
        rewind_mtime(&dir.join(GC_LOCK), 601);
        let lock = store.lock_exclusive().expect("stale lock stolen");
        // The steal leaves no grave files behind.
        assert_eq!(fs::read_dir(dir.join(TMP_DIR)).unwrap().count(), 0);
        drop(lock);
        assert!(!dir.join(GC_LOCK).exists(), "released on drop");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression for the stale-steal TOCTOU: with the old
    /// check-then-`remove_file` steal, two thieves could both measure
    /// the same stale lock, the slow one then deleting the fast one's
    /// *fresh* replacement — two holders at once. The rename-based
    /// steal makes the rename the arbiter: across many racing rounds,
    /// at most one thread may ever hold the lock at a time.
    #[test]
    fn concurrent_stale_steal_never_yields_two_holders() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Barrier;
        let dir = scratch("steal-race");
        let store = Arc::new(Store::open(&dir).unwrap());
        let holders = Arc::new(AtomicU32::new(0));
        for _round in 0..50 {
            fs::write(dir.join(GC_LOCK), "dead\n").unwrap();
            rewind_mtime(&dir.join(GC_LOCK), 601);
            let barrier = Arc::new(Barrier::new(2));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let (store, barrier, holders) =
                        (store.clone(), barrier.clone(), holders.clone());
                    std::thread::spawn(move || {
                        barrier.wait();
                        if let Ok(lock) = store.lock_exclusive() {
                            let live = holders.fetch_add(1, Ordering::SeqCst) + 1;
                            assert_eq!(live, 1, "two concurrent lock holders");
                            // Hold long enough for the loser's steal
                            // attempt to observe the fresh lock.
                            std::thread::sleep(Duration::from_millis(2));
                            holders.fetch_sub(1, Ordering::SeqCst);
                            drop(lock);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let _ = fs::remove_file(dir.join(GC_LOCK));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lease_claim_release_steal_cycle() {
        let dir = scratch("lease");
        let store = Store::open(&dir).unwrap();
        let key = ReportKey {
            pipeline: 0xF1,
            seed: 0xC60,
            subject: "fig10/demo/FuFiAll/SAFE",
        };
        let horizon = Duration::from_secs(60);
        let lease = store
            .try_lease_report(&key, horizon)
            .unwrap()
            .expect("free cell claims");
        assert!(!lease.was_stolen());
        // A second worker is refused while the claim is live.
        assert!(store.try_lease_report(&key, horizon).unwrap().is_none());
        // A different cell is independent.
        let other = ReportKey {
            subject: "fig10/demo/FuFiAll/Asm2Vec",
            ..key
        };
        assert!(store.try_lease_report(&other, horizon).unwrap().is_some());
        // Release → claimable again.
        let path = lease.path().to_path_buf();
        lease.release();
        assert!(!path.exists(), "claim file removed on release");
        let lease = store.try_lease_report(&key, horizon).unwrap().unwrap();
        // A dead worker's claim (stale mtime) is stolen; a live one's
        // is not.
        assert!(store.try_lease_report(&key, horizon).unwrap().is_none());
        rewind_mtime(lease.path(), 61);
        std::mem::forget(lease); // simulate the worker dying mid-cell
        let stolen = store
            .try_lease_report(&key, horizon)
            .unwrap()
            .expect("stale claim stolen");
        assert!(stolen.was_stolen());
        // refresh() re-stamps the mtime so long cells are not stolen.
        rewind_mtime(stolen.path(), 61);
        stolen.refresh().unwrap();
        assert!(store.try_lease_report(&key, horizon).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn claim_files_are_invisible_to_stats_verify_and_gc() {
        let dir = scratch("lease-gc");
        let store = Store::open(&dir).unwrap();
        let report = StoredReport {
            spec: "fission".into(),
            pipeline: 1,
            seed: 2,
            subject: "cell".into(),
            total_micros: 1,
            passes: vec![],
            metrics: vec![("m".into(), 1.0)],
        };
        store.put_report(&report).unwrap();
        let lease = store
            .try_lease_report(
                &ReportKey {
                    pipeline: 9,
                    seed: 9,
                    subject: "other-cell",
                },
                Duration::from_secs(60),
            )
            .unwrap()
            .unwrap();
        std::mem::forget(lease); // dangling claim from a "dead" worker
        let stats = store.stats().unwrap();
        assert_eq!(stats.reports.records, 1, "claim files are not records");
        assert!(store.verify().unwrap().is_empty(), "verify ignores claims");
        // gc to zero deletes every record but never touches the claim.
        let summary = store.gc(0).unwrap();
        assert_eq!(summary.scanned, 1);
        assert_eq!(summary.deleted, 1);
        let leases: Vec<_> = fs::read_dir(dir.join("rep"))
            .unwrap()
            .filter_map(|e| e.unwrap().path().extension().map(|x| x.to_os_string()))
            .collect();
        assert_eq!(leases, vec![std::ffi::OsString::from(LEASE_EXT)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_copies_skips_and_refuses() {
        let (a, b, dst) = (scratch("mrg-a"), scratch("mrg-b"), scratch("mrg-d"));
        let src_a = Store::open(&a).unwrap();
        let src_b = Store::open(&b).unwrap();
        let dest = Store::open(&dst).unwrap();
        let cell = |subject: &str, value: f64| StoredReport {
            spec: "fission".into(),
            pipeline: 0xF1,
            seed: 0xC60,
            subject: subject.into(),
            total_micros: 7,
            passes: vec![],
            metrics: vec![("escape@1".into(), value)],
        };
        src_a.put_report(&cell("cell/0", 0.25)).unwrap();
        src_a.put_report(&cell("cell/1", 0.5)).unwrap();
        src_b.put_report(&cell("cell/1", 0.5)).unwrap(); // overlap, same bytes
        src_b.put_report(&cell("cell/2", 0.75)).unwrap();
        src_b
            .put_embeddings(
                &EmbKey {
                    tool: "t",
                    config: 1,
                    binary: 2,
                },
                table(2, 2, 1).view(),
            )
            .unwrap();
        // A dangling claim in a source must not travel.
        let lease = src_a
            .try_lease_report(
                &ReportKey {
                    pipeline: 0xF1,
                    seed: 0xC60,
                    subject: "cell/9",
                },
                Duration::from_secs(60),
            )
            .unwrap()
            .unwrap();
        std::mem::forget(lease);

        assert_eq!(
            dest.merge_from(&src_a).unwrap(),
            MergeSummary {
                copied: 2,
                skipped: 0
            }
        );
        assert_eq!(
            dest.merge_from(&src_b).unwrap(),
            MergeSummary {
                copied: 2,
                skipped: 1
            }
        );
        // The union arrived bit-identically and no claim travelled.
        assert_eq!(dest.reports().unwrap().len(), 3);
        for (path, _) in src_a.section_files("rep").unwrap() {
            let dst_path = dst.join("rep").join(path.file_name().unwrap());
            assert_eq!(fs::read(&path).unwrap(), fs::read(&dst_path).unwrap());
        }
        assert!(fs::read_dir(dst.join("rep")).unwrap().all(|e| e
            .unwrap()
            .path()
            .extension()
            .unwrap()
            == "khs"));
        // Idempotent: a re-merge copies nothing.
        assert_eq!(
            dest.merge_from(&src_b).unwrap(),
            MergeSummary {
                copied: 0,
                skipped: 3
            }
        );

        // Refusal 1: checksum damage in the source, named precisely.
        let (victim, _) = src_b.section_files("emb").unwrap().pop().unwrap();
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();
        let err = dest.merge_from(&src_b).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(err.to_string().contains("emb/"), "{err}");

        // Refusal 2: same address, different content.
        src_a.put_report(&cell("cell/0", 0.125)).unwrap(); // diverged
        let err = dest.merge_from(&src_a).unwrap_err();
        assert!(err.to_string().contains("different content"), "{err}");

        for d in [a, b, dst] {
            fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn foreign_format_version_is_refused() {
        let dir = scratch("version");
        {
            let _ = Store::open(&dir).unwrap();
        }
        fs::write(dir.join("FORMAT"), "khaos-store 999\n").unwrap();
        let err = Store::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("format-version"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
