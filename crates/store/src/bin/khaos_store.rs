//! `khaos-store` — inspect and maintain an artifact store directory.
//!
//! ```text
//! khaos-store <stats|ls|verify|gc|cat|report|merge> [--max-bytes N] [ARGS] [DIR...]
//!
//!   stats          record counts and byte totals per section
//!   ls             every record with its decoded key
//!   verify         integrity-check every record (exit 1 on damage)
//!   gc             shrink to --max-bytes, deleting oldest records first
//!   cat ADDR       decode one record (content address or section/file)
//!   report         every report record with its metrics, across one or
//!                  more store directories (the shard-merge query view)
//!   merge SRC.. DST  physically consolidate shard stores into DST
//!                  (created if absent): each SRC is integrity-checked
//!                  first and the merge refuses checksum damage and
//!                  same-address content conflicts; records already in
//!                  DST byte-identically are skipped, claim files never
//!                  travel. Grid *completeness* is the experiment
//!                  layer's concern — `experiments figN-merge DST` is
//!                  the command that refuses an incomplete grid with
//!                  the missing-cell listing.
//!   DIR            store directory; defaults to $KHAOS_STORE.
//!                  `report` accepts several DIRs and reads their union
//!                  (first store wins on duplicate keys).
//! ```

use khaos_store::Store;
use std::process::ExitCode;

struct Args {
    command: String,
    max_bytes: Option<u64>,
    /// Positional arguments after the command (needle and/or DIRs).
    positional: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        max_bytes: None,
        positional: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-bytes" => {
                let v = it.next().ok_or("--max-bytes needs a byte count")?;
                args.max_bytes = Some(parse_bytes(&v)?);
            }
            _ if args.command.is_empty() => args.command = a,
            _ => args.positional.push(a),
        }
    }
    if args.command.is_empty() {
        return Err("missing command".into());
    }
    Ok(args)
}

/// Parses `N`, `Nk`, `Nm`, `Ng` (binary multiples).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'm') | Some(b'M') => (&s[..s.len() - 1], 1 << 20),
        Some(b'g') | Some(b'G') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("`{s}` is not a byte count (try 500m, 2g, 1048576)"))
}

fn human(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 30 => format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64),
        b => format!("{b} B"),
    }
}

const USAGE: &str =
    "usage: khaos-store <stats|ls|verify|gc|cat|report|merge> [--max-bytes N] [ADDR] [DIR...]";

/// Resolves the store directories of a command: the given positionals,
/// or `$KHAOS_STORE` when none were passed.
fn resolve_dirs(positional: &[String]) -> Result<Vec<String>, String> {
    if !positional.is_empty() {
        return Ok(positional.to_vec());
    }
    match std::env::var("KHAOS_STORE") {
        Ok(d) if !d.trim().is_empty() => Ok(vec![d]),
        _ => Err("no store directory (pass DIR or set KHAOS_STORE)".into()),
    }
}

fn open_all(dirs: &[String]) -> std::io::Result<Vec<Store>> {
    // Inspection/maintenance never creates a store: a typo'd DIR must
    // be an error, not a fresh empty store that "verifies clean" or
    // reports every record missing.
    dirs.iter().map(Store::open_existing).collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("khaos-store: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    // `cat` consumes its first positional as the record needle; every
    // other positional (all commands) is a store directory.
    let mut positional = args.positional;
    let needle = if args.command == "cat" {
        if positional.is_empty() {
            eprintln!("khaos-store: cat needs a record address (16 hex digits or section/file)");
            return ExitCode::from(2);
        }
        Some(positional.remove(0))
    } else {
        None
    };
    // `merge SRC... DST` has its own positional grammar (and a
    // write-side destination), handled before the read-side open path.
    if args.command == "merge" {
        return cmd_merge(&positional);
    }
    if args.command != "report" && positional.len() > 1 {
        eprintln!("khaos-store: {} takes at most one DIR", args.command);
        return ExitCode::from(2);
    }
    let dirs = match resolve_dirs(&positional) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("khaos-store: {e}");
            return ExitCode::from(2);
        }
    };
    let stores = match open_all(&dirs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("khaos-store: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match args.command.as_str() {
        "stats" => cmd_stats(&stores[0]),
        "ls" => cmd_ls(&stores[0]),
        "verify" => cmd_verify(&stores[0]),
        "cat" => cmd_cat(&stores[0], needle.as_deref().expect("checked above")),
        "report" => cmd_report(&stores),
        "gc" => match args.max_bytes {
            Some(max) => cmd_gc(&stores[0], max),
            None => {
                eprintln!("khaos-store: gc needs --max-bytes");
                return ExitCode::from(2);
            }
        },
        other => {
            eprintln!("khaos-store: unknown command `{other}`");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("khaos-store: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_merge(positional: &[String]) -> ExitCode {
    if positional.len() < 2 {
        eprintln!("khaos-store: merge needs at least one SRC and exactly one DST directory");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let (srcs, dst) = positional.split_at(positional.len() - 1);
    // Sources must already be stores (a typo'd SRC is an error, not an
    // empty merge); the destination is the one directory `merge` may
    // create.
    let dest = match Store::open(&dst[0]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("khaos-store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut copied = 0u64;
    let mut skipped = 0u64;
    for dir in srcs {
        let src = match Store::open_existing(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("khaos-store: {e}");
                return ExitCode::FAILURE;
            }
        };
        match dest.merge_from(&src) {
            Ok(s) => {
                println!(
                    "merged {dir}: {} record(s) copied, {} already present",
                    s.copied, s.skipped
                );
                copied += s.copied;
                skipped += s.skipped;
            }
            Err(e) => {
                eprintln!("khaos-store: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "merge: {copied} record(s) copied, {skipped} skipped into {}",
        dest.root().display()
    );
    ExitCode::SUCCESS
}

fn cmd_cat(store: &Store, needle: &str) -> std::io::Result<ExitCode> {
    match store.cat(needle)? {
        Some(dump) => {
            print!("{dump}");
            Ok(ExitCode::SUCCESS)
        }
        None => {
            eprintln!(
                "khaos-store: no record `{needle}` in {}",
                store.root().display()
            );
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_report(stores: &[Store]) -> std::io::Result<ExitCode> {
    // Union across stores, first store wins on duplicate keys —
    // exactly the precedence the shard-merge layer uses.
    let mut seen = std::collections::HashSet::new();
    let mut all = Vec::new();
    for store in stores {
        for r in store.reports()? {
            if seen.insert((r.subject.clone(), r.pipeline, r.seed)) {
                all.push(r);
            }
        }
    }
    all.sort_by(|a, b| (&a.subject, a.pipeline, a.seed).cmp(&(&b.subject, b.pipeline, b.seed)));
    for r in &all {
        let metrics: Vec<String> = r.metrics.iter().map(|(n, v)| format!("{n}={v}")).collect();
        println!(
            "{:<44} pipeline={:016x} seed={:#x} {}",
            r.subject,
            r.pipeline,
            r.seed,
            if metrics.is_empty() {
                format!("spec=`{}` total={}us", r.spec, r.total_micros)
            } else {
                metrics.join(" ")
            }
        );
    }
    println!(
        "{} report record(s) across {} store(s)",
        all.len(),
        stores.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(store: &Store) -> std::io::Result<ExitCode> {
    let s = store.stats()?;
    println!("store: {}", store.root().display());
    println!("{:<12} {:>8} {:>12}", "section", "records", "bytes");
    for (name, sec) in [
        ("embeddings", s.embeddings),
        ("matrices", s.matrices),
        ("reports", s.reports),
        ("quantized", s.quantized),
        ("indexes", s.indexes),
    ] {
        println!("{:<12} {:>8} {:>12}", name, sec.records, human(sec.bytes));
    }
    println!(
        "{:<12} {:>8} {:>12}",
        "total",
        s.total_records(),
        human(s.total_bytes())
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_ls(store: &Store) -> std::io::Result<ExitCode> {
    for r in store.ls()? {
        println!(
            "{:<4} {:<22} {:>12}  {}",
            r.section,
            r.file,
            human(r.bytes),
            r.key.as_deref().unwrap_or("<undecodable>")
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(store: &Store) -> std::io::Result<ExitCode> {
    let issues = store.verify()?;
    let stats = store.stats()?;
    if issues.is_empty() {
        println!(
            "ok: {} records, {} — all checksums, addresses and shapes verify",
            stats.total_records(),
            human(stats.total_bytes())
        );
        return Ok(ExitCode::SUCCESS);
    }
    for i in &issues {
        println!("BAD {:<28} {}", i.file, i.reason);
    }
    println!(
        "{} of {} records damaged",
        issues.len(),
        stats.total_records()
    );
    Ok(ExitCode::FAILURE)
}

fn cmd_gc(store: &Store, max_bytes: u64) -> std::io::Result<ExitCode> {
    let g = store.gc(max_bytes)?;
    println!(
        "gc: scanned {} records, deleted {} (oldest first): {} -> {} (target {})",
        g.scanned,
        g.deleted,
        human(g.bytes_before),
        human(g.bytes_after),
        human(max_bytes)
    );
    Ok(ExitCode::SUCCESS)
}
