//! `khaos-store` — inspect and maintain an artifact store directory.
//!
//! ```text
//! khaos-store <stats|ls|verify|gc> [--max-bytes N] [DIR]
//!
//!   stats          record counts and byte totals per section
//!   ls             every record with its decoded key
//!   verify         integrity-check every record (exit 1 on damage)
//!   gc             shrink to --max-bytes, deleting oldest records first
//!   DIR            store directory; defaults to $KHAOS_STORE
//! ```

use khaos_store::Store;
use std::process::ExitCode;

struct Args {
    command: String,
    max_bytes: Option<u64>,
    dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        max_bytes: None,
        dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-bytes" => {
                let v = it.next().ok_or("--max-bytes needs a byte count")?;
                args.max_bytes = Some(parse_bytes(&v)?);
            }
            _ if args.command.is_empty() => args.command = a,
            _ if args.dir.is_none() => args.dir = Some(a),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if args.command.is_empty() {
        return Err("missing command".into());
    }
    Ok(args)
}

/// Parses `N`, `Nk`, `Nm`, `Ng` (binary multiples).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'm') | Some(b'M') => (&s[..s.len() - 1], 1 << 20),
        Some(b'g') | Some(b'G') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("`{s}` is not a byte count (try 500m, 2g, 1048576)"))
}

fn human(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 30 => format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64),
        b => format!("{b} B"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("khaos-store: {e}");
            eprintln!("usage: khaos-store <stats|ls|verify|gc> [--max-bytes N] [DIR]");
            return ExitCode::from(2);
        }
    };
    let dir = match args.dir.or_else(|| std::env::var("KHAOS_STORE").ok()) {
        Some(d) if !d.trim().is_empty() => d,
        _ => {
            eprintln!("khaos-store: no store directory (pass DIR or set KHAOS_STORE)");
            return ExitCode::from(2);
        }
    };
    let store = match Store::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("khaos-store: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match args.command.as_str() {
        "stats" => cmd_stats(&store),
        "ls" => cmd_ls(&store),
        "verify" => cmd_verify(&store),
        "gc" => match args.max_bytes {
            Some(max) => cmd_gc(&store, max),
            None => {
                eprintln!("khaos-store: gc needs --max-bytes");
                return ExitCode::from(2);
            }
        },
        other => {
            eprintln!("khaos-store: unknown command `{other}`");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("khaos-store: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_stats(store: &Store) -> std::io::Result<ExitCode> {
    let s = store.stats()?;
    println!("store: {}", store.root().display());
    println!("{:<12} {:>8} {:>12}", "section", "records", "bytes");
    for (name, sec) in [
        ("embeddings", s.embeddings),
        ("matrices", s.matrices),
        ("reports", s.reports),
    ] {
        println!("{:<12} {:>8} {:>12}", name, sec.records, human(sec.bytes));
    }
    println!(
        "{:<12} {:>8} {:>12}",
        "total",
        s.total_records(),
        human(s.total_bytes())
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_ls(store: &Store) -> std::io::Result<ExitCode> {
    for r in store.ls()? {
        println!(
            "{:<4} {:<22} {:>12}  {}",
            r.section,
            r.file,
            human(r.bytes),
            r.key.as_deref().unwrap_or("<undecodable>")
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(store: &Store) -> std::io::Result<ExitCode> {
    let issues = store.verify()?;
    let stats = store.stats()?;
    if issues.is_empty() {
        println!(
            "ok: {} records, {} — all checksums, addresses and shapes verify",
            stats.total_records(),
            human(stats.total_bytes())
        );
        return Ok(ExitCode::SUCCESS);
    }
    for i in &issues {
        println!("BAD {:<28} {}", i.file, i.reason);
    }
    println!(
        "{} of {} records damaged",
        issues.len(),
        stats.total_records()
    );
    Ok(ExitCode::FAILURE)
}

fn cmd_gc(store: &Store, max_bytes: u64) -> std::io::Result<ExitCode> {
    let g = store.gc(max_bytes)?;
    println!(
        "gc: scanned {} records, deleted {} (oldest first): {} -> {} (target {})",
        g.scanned,
        g.deleted,
        human(g.bytes_before),
        human(g.bytes_after),
        human(max_bytes)
    );
    Ok(ExitCode::SUCCESS)
}
