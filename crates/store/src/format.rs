//! The on-disk record format: encoding, decoding, checksumming.
//!
//! Every record is one self-describing file (see the crate-level docs
//! for the byte-exact layout). This module owns the little-endian
//! encoder/decoder pair and the FNV-1a checksum both sides share; the
//! [`crate::Store`] layer never touches raw bytes directly.

use crate::{
    FlatTable, IndexTable, QuantTable, QuantView, StoredPass, StoredReport, StoredRowMeta,
    StoredShape, TableView,
};

/// First four bytes of every record file.
pub const MAGIC: [u8; 4] = *b"KHST";

/// Format version written into (and required of) every record and the
/// store's `FORMAT` stamp. **Bumping this is a cache-invalidating
/// event**: readers refuse records of any other version, so every
/// artifact is recomputed and rewritten.
///
/// History: v1 — embeddings/matrices/reports; v2 — adds quantized
/// embedding records (kind 4, the `qnt/` section). The bump to 2 was
/// deliberate: v1 stores predate the quantized tier and are fully
/// recomputable, and stamping the version forward keeps the "one
/// store, one format" invariant simple (no per-record version skew).
///
/// IVF index segments (kind 5, the `idx/` section) were added
/// **without** a bump: the addition is purely additive — no existing
/// record changes shape, and older readers degrade diagnosably on the
/// new kind (`verify`/`cat` name the unknown kind; lookups miss). The
/// ROADMAP records this as the deliberate format decision of the index
/// tier.
pub const FORMAT_VERSION: u32 = 2;

/// Record kind tag: a per-binary embedding table.
pub const KIND_EMBEDDINGS: u8 = 1;
/// Record kind tag: a query×target similarity matrix.
pub const KIND_MATRIX: u8 = 2;
/// Record kind tag: a pipeline/experiment report.
pub const KIND_REPORT: u8 = 3;
/// Record kind tag: a per-binary int8 quantized embedding table
/// (format v2).
pub const KIND_QUANT: u8 = 4;
/// Record kind tag: an IVF index segment over a corpus of embedding
/// rows (format v2, additive).
pub const KIND_INDEX: u8 = 5;

/// Every kind tag this build reads, in tag order (the diagnosable
/// range named by unknown-kind decode errors).
pub const KNOWN_KINDS: std::ops::RangeInclusive<u8> = KIND_EMBEDDINGS..=KIND_INDEX;

/// FNV-1a over a byte slice — the record checksum (and the hash behind
/// content-addressed file names).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Little-endian record encoder. Public because the `khaos-serve`
/// wire protocol reuses the record grammar (same primitives, same
/// checksum) for its frames; re-exported as `khaos_store::codec`.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Raw IEEE-754 bits: the byte-exact round trip the store pins.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed UTF-8 (u32 length + bytes).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends the FNV-1a checksum of everything written so far and
    /// returns the finished record bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian record decoder; every accessor fails loudly (with a
/// reason string the `verify` path surfaces) instead of reading out of
/// bounds. Public for the same reason as [`Enc`] (the wire codec).
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated record: wanted {n} bytes at offset {}", self.pos))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string field".to_string())
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn offset(&self) -> usize {
        self.pos
    }
}

/// A decoded record key, owned (as read back from disk).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OwnedKey {
    /// Embedding-table key.
    Emb {
        /// Differ name.
        tool: String,
        /// Differ configuration fingerprint.
        config: u64,
        /// `Binary::fingerprint` of the embedded binary.
        binary: u64,
    },
    /// Similarity-matrix key.
    Mat {
        /// Differ name.
        tool: String,
        /// Differ configuration fingerprint.
        config: u64,
        /// Query-side binary fingerprint.
        query: u64,
        /// Target-side binary fingerprint.
        target: u64,
    },
    /// Report key.
    Rep {
        /// `Pipeline::fingerprint` of the build that was measured.
        pipeline: u64,
        /// Obfuscation seed of the run.
        seed: u64,
        /// Free-form subject (program name, experiment cell, …).
        subject: String,
    },
    /// Quantized-embedding key — the same `(tool, config, binary)`
    /// triple as [`OwnedKey::Emb`]; the kind tag keeps the content
    /// addresses disjoint.
    Quant {
        /// Differ name.
        tool: String,
        /// Differ configuration fingerprint.
        config: u64,
        /// `Binary::fingerprint` of the embedded binary.
        binary: u64,
    },
    /// IVF index-segment key.
    Index {
        /// Differ name.
        tool: String,
        /// Differ configuration fingerprint.
        config: u64,
        /// Corpus fingerprint (FNV over the indexed rows' provenance).
        corpus: u64,
    },
}

impl std::fmt::Display for OwnedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OwnedKey::Emb {
                tool,
                config,
                binary,
            } => write!(f, "emb {tool} cfg={config:016x} bin={binary:016x}"),
            OwnedKey::Mat {
                tool,
                config,
                query,
                target,
            } => write!(
                f,
                "mat {tool} cfg={config:016x} q={query:016x} t={target:016x}"
            ),
            OwnedKey::Rep {
                pipeline,
                seed,
                subject,
            } => write!(f, "rep pipeline={pipeline:016x} seed={seed:#x} `{subject}`"),
            OwnedKey::Quant {
                tool,
                config,
                binary,
            } => write!(f, "qnt {tool} cfg={config:016x} bin={binary:016x}"),
            OwnedKey::Index {
                tool,
                config,
                corpus,
            } => write!(f, "idx {tool} cfg={config:016x} corpus={corpus:016x}"),
        }
    }
}

/// A decoded record payload.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Payload {
    Table(FlatTable),
    Report(StoredReport),
    Quant(QuantTable),
    Index(IndexTable),
}

/// A fully decoded, checksum-verified record.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Record {
    pub kind: u8,
    pub key: OwnedKey,
    pub payload: Payload,
}

/// Encodes the key block of an embedding record (also the bytes the
/// content address is derived from, prefixed with the kind tag).
pub(crate) fn key_bytes_emb(tool: &str, config: u64, binary: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.str(tool);
    e.u64(config);
    e.u64(binary);
    e.into_bytes()
}

/// Encodes the key block of a matrix record.
pub(crate) fn key_bytes_mat(tool: &str, config: u64, query: u64, target: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.str(tool);
    e.u64(config);
    e.u64(query);
    e.u64(target);
    e.into_bytes()
}

/// Encodes the key block of a report record.
pub(crate) fn key_bytes_rep(pipeline: u64, seed: u64, subject: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(pipeline);
    e.u64(seed);
    e.str(subject);
    e.into_bytes()
}

/// Encodes the key block of an index-segment record.
pub(crate) fn key_bytes_idx(tool: &str, config: u64, corpus: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.str(tool);
    e.u64(config);
    e.u64(corpus);
    e.into_bytes()
}

fn payload_bytes_table(table: TableView<'_>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(table.rows);
    e.u64(table.dim);
    for &v in table.data {
        e.f64(v);
    }
    e.into_bytes()
}

/// Quantized-table payload: shape, per-row f64 scales and offsets
/// (raw bits, byte-exact), then the i8 codes as one raw byte run.
fn payload_bytes_quant(q: QuantView<'_>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(q.rows);
    e.u64(q.dim);
    for &s in q.scales {
        e.f64(s);
    }
    for &o in q.offsets {
        e.f64(o);
    }
    // i8 → u8 is a bijection on bytes; decode casts back losslessly.
    e.bytes(unsafe { std::slice::from_raw_parts(q.data.as_ptr() as *const u8, q.data.len()) });
    e.into_bytes()
}

fn payload_bytes_report(r: &StoredReport) -> Vec<u8> {
    let mut e = Enc::new();
    e.str(&r.spec);
    e.u64(r.total_micros);
    e.u32(r.passes.len() as u32);
    for p in &r.passes {
        e.str(&p.pass);
        e.u64(p.micros);
        for s in [&p.before, &p.after] {
            e.u64(s.functions);
            e.u64(s.blocks);
            e.u64(s.insts);
        }
    }
    e.u32(r.metrics.len() as u32);
    for (name, value) in &r.metrics {
        e.str(name);
        e.f64(*value);
    }
    e.into_bytes()
}

/// Assembles one complete record: header, key block, length-prefixed
/// payload, trailing checksum.
pub(crate) fn encode_record(kind: u8, key_bytes: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.bytes(&MAGIC);
    e.u32(FORMAT_VERSION);
    e.u8(kind);
    e.bytes(key_bytes);
    e.u64(payload.len() as u64);
    e.bytes(payload);
    e.finish()
}

/// Encodes an embedding-table record.
pub(crate) fn encode_embeddings(tool: &str, config: u64, binary: u64, t: TableView<'_>) -> Vec<u8> {
    encode_record(
        KIND_EMBEDDINGS,
        &key_bytes_emb(tool, config, binary),
        &payload_bytes_table(t),
    )
}

/// Encodes a similarity-matrix record.
pub(crate) fn encode_matrix(
    tool: &str,
    config: u64,
    query: u64,
    target: u64,
    t: TableView<'_>,
) -> Vec<u8> {
    encode_record(
        KIND_MATRIX,
        &key_bytes_mat(tool, config, query, target),
        &payload_bytes_table(t),
    )
}

/// Encodes a quantized-embedding record.
pub(crate) fn encode_quantized(tool: &str, config: u64, binary: u64, q: QuantView<'_>) -> Vec<u8> {
    encode_record(
        KIND_QUANT,
        &key_bytes_emb(tool, config, binary),
        &payload_bytes_quant(q),
    )
}

/// Index-segment payload: IVF parameters and shape, the (normalized)
/// centroid rows as raw f64 bits, the per-row cell assignments, then
/// per-row provenance (source binary fingerprint, function index,
/// symbol name). The corpus' f64 and int8 tables are *not* inlined —
/// they live in their own `emb`/`qnt` records keyed by the corpus
/// fingerprint, so the three records form one index segment.
fn payload_bytes_index(t: &IndexTable) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(t.rows);
    e.u64(t.dim);
    e.u64(t.nlist);
    e.u32(t.nprobe);
    e.u64(t.seed);
    for &c in &t.centroids {
        e.f64(c);
    }
    for &a in &t.assignments {
        e.u32(a);
    }
    for m in &t.meta {
        e.u64(m.binary);
        e.u32(m.function);
        e.str(&m.name);
    }
    e.into_bytes()
}

/// Encodes an index-segment record.
pub(crate) fn encode_index(tool: &str, config: u64, corpus: u64, t: &IndexTable) -> Vec<u8> {
    encode_record(
        KIND_INDEX,
        &key_bytes_idx(tool, config, corpus),
        &payload_bytes_index(t),
    )
}

/// Encodes a report record.
pub(crate) fn encode_report(r: &StoredReport) -> Vec<u8> {
    encode_record(
        KIND_REPORT,
        &key_bytes_rep(r.pipeline, r.seed, &r.subject),
        &payload_bytes_report(r),
    )
}

fn decode_table(payload: &[u8]) -> Result<FlatTable, String> {
    let mut d = Dec::new(payload);
    let rows = d.u64()?;
    let dim = d.u64()?;
    // Checked all the way through: a forged shape like rows=2^61 must
    // come back as a decode error (verify/cat name damage, lookups
    // degrade to misses), never wrap into a passing comparison and
    // panic in `with_capacity`.
    let cells = rows
        .checked_mul(dim)
        .filter(|&c| {
            c.checked_mul(8)
                .is_some_and(|bytes| bytes == d.remaining() as u64)
        })
        .ok_or_else(|| {
            format!(
                "table shape {rows}x{dim} disagrees with payload ({} bytes left)",
                d.remaining()
            )
        })?;
    let mut data = Vec::with_capacity(cells as usize);
    for _ in 0..cells {
        data.push(d.f64()?);
    }
    Ok(FlatTable { rows, dim, data })
}

fn decode_quant(payload: &[u8]) -> Result<QuantTable, String> {
    let mut d = Dec::new(payload);
    let rows = d.u64()?;
    let dim = d.u64()?;
    // Same checked-shape discipline as `decode_table`: per-row scale +
    // offset (8 bytes each) plus rows·dim code bytes must equal the
    // remaining payload exactly, with no overflow en route.
    let codes = rows
        .checked_mul(dim)
        .filter(|&c| {
            rows.checked_mul(16)
                .and_then(|meta| meta.checked_add(c))
                .is_some_and(|bytes| bytes == d.remaining() as u64)
        })
        .ok_or_else(|| {
            format!(
                "quantized shape {rows}x{dim} disagrees with payload ({} bytes left)",
                d.remaining()
            )
        })?;
    let mut scales = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        scales.push(d.f64()?);
    }
    let mut offsets = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        offsets.push(d.f64()?);
    }
    let mut data = Vec::with_capacity(codes as usize);
    for _ in 0..codes {
        data.push(d.u8()? as i8);
    }
    Ok(QuantTable {
        rows,
        dim,
        scales,
        offsets,
        data,
    })
}

fn decode_index(payload: &[u8]) -> Result<IndexTable, String> {
    let mut d = Dec::new(payload);
    let rows = d.u64()?;
    let dim = d.u64()?;
    let nlist = d.u64()?;
    let nprobe = d.u32()?;
    let seed = d.u64()?;
    // Checked-shape discipline (see `decode_table`): the fixed-width
    // runs (centroids, assignments) must fit the remaining payload
    // before anything is allocated, so a forged nlist=2^61 is a decode
    // error, never a `with_capacity` abort.
    let centroid_vals = nlist
        .checked_mul(dim)
        .filter(|&c| {
            c.checked_mul(8)
                .and_then(|cb| rows.checked_mul(4).map(|ab| (cb, ab)))
                .and_then(|(cb, ab)| cb.checked_add(ab))
                .is_some_and(|bytes| bytes <= d.remaining() as u64)
        })
        .ok_or_else(|| {
            format!(
                "index shape rows={rows} dim={dim} nlist={nlist} disagrees with payload \
                 ({} bytes left)",
                d.remaining()
            )
        })?;
    let mut centroids = Vec::with_capacity(centroid_vals as usize);
    for _ in 0..centroid_vals {
        centroids.push(d.f64()?);
    }
    let mut assignments = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        let a = d.u32()?;
        if u64::from(a) >= nlist {
            return Err(format!("row assigned to cell {a}, but nlist is {nlist}"));
        }
        assignments.push(a);
    }
    let mut meta = Vec::with_capacity((rows as usize).min(1 << 20));
    for _ in 0..rows {
        meta.push(StoredRowMeta {
            binary: d.u64()?,
            function: d.u32()?,
            name: d.str()?,
        });
    }
    if d.remaining() != 0 {
        return Err(format!("{} trailing payload bytes", d.remaining()));
    }
    Ok(IndexTable {
        rows,
        dim,
        nlist,
        nprobe,
        seed,
        centroids,
        assignments,
        meta,
    })
}

fn decode_report(
    payload: &[u8],
    pipeline: u64,
    seed: u64,
    subject: String,
) -> Result<StoredReport, String> {
    let mut d = Dec::new(payload);
    let spec = d.str()?;
    let total_micros = d.u64()?;
    let n_passes = d.u32()?;
    let mut passes = Vec::with_capacity(n_passes.min(1 << 16) as usize);
    for _ in 0..n_passes {
        let pass = d.str()?;
        let micros = d.u64()?;
        let mut shapes = [StoredShape::default(), StoredShape::default()];
        for s in &mut shapes {
            s.functions = d.u64()?;
            s.blocks = d.u64()?;
            s.insts = d.u64()?;
        }
        let [before, after] = shapes;
        passes.push(StoredPass {
            pass,
            micros,
            before,
            after,
        });
    }
    let n_metrics = d.u32()?;
    let mut metrics = Vec::with_capacity(n_metrics.min(1 << 16) as usize);
    for _ in 0..n_metrics {
        let name = d.str()?;
        let value = d.f64()?;
        metrics.push((name, value));
    }
    if d.remaining() != 0 {
        return Err(format!("{} trailing payload bytes", d.remaining()));
    }
    Ok(StoredReport {
        spec,
        pipeline,
        seed,
        subject,
        total_micros,
        passes,
        metrics,
    })
}

/// Decodes and fully validates one record file: magic, format version,
/// checksum, key block, payload shape. Errors carry a human-readable
/// reason (surfaced by `khaos-store verify`).
pub(crate) fn decode_record(bytes: &[u8]) -> Result<Record, String> {
    if bytes.len() < MAGIC.len() + 4 + 1 + 8 + 8 {
        return Err(format!("file too short ({} bytes)", bytes.len()));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    // The self-describing header (magic, version, kind) is validated
    // *before* the checksum: a record of a kind this build does not
    // know — written by a newer format, or with a damaged kind byte —
    // must be reported as exactly that, not as a generic checksum
    // error that points at nothing.
    let mut d = Dec::new(body);
    let magic = [d.u8()?, d.u8()?, d.u8()?, d.u8()?];
    if magic != MAGIC {
        return Err(format!("bad magic {magic:02x?}"));
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version}, this build reads {FORMAT_VERSION} \
             (a version bump invalidates the store)"
        ));
    }
    let kind = d.u8()?;
    if !KNOWN_KINDS.contains(&kind) {
        return Err(format!(
            "unknown record kind {kind} (this build reads kinds {}..={}; \
             a newer format may have written it)",
            KNOWN_KINDS.start(),
            KNOWN_KINDS.end()
        ));
    }
    let want = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let have = fnv1a(body);
    if want != have {
        return Err(format!(
            "checksum mismatch: stored {want:016x}, computed {have:016x}"
        ));
    }
    let key = match kind {
        KIND_EMBEDDINGS => OwnedKey::Emb {
            tool: d.str()?,
            config: d.u64()?,
            binary: d.u64()?,
        },
        KIND_MATRIX => OwnedKey::Mat {
            tool: d.str()?,
            config: d.u64()?,
            query: d.u64()?,
            target: d.u64()?,
        },
        KIND_REPORT => OwnedKey::Rep {
            pipeline: d.u64()?,
            seed: d.u64()?,
            subject: d.str()?,
        },
        KIND_QUANT => OwnedKey::Quant {
            tool: d.str()?,
            config: d.u64()?,
            binary: d.u64()?,
        },
        KIND_INDEX => OwnedKey::Index {
            tool: d.str()?,
            config: d.u64()?,
            corpus: d.u64()?,
        },
        _ => unreachable!("kind validated against KNOWN_KINDS above"),
    };
    let payload_len = d.u64()? as usize;
    if payload_len != d.remaining() {
        return Err(format!(
            "payload length {payload_len} disagrees with file ({} bytes after header)",
            d.remaining()
        ));
    }
    let payload_start = d.offset();
    let payload = &body[payload_start..];
    let payload = match &key {
        OwnedKey::Emb { .. } | OwnedKey::Mat { .. } => Payload::Table(decode_table(payload)?),
        OwnedKey::Quant { .. } => Payload::Quant(decode_quant(payload)?),
        OwnedKey::Index { .. } => Payload::Index(decode_index(payload)?),
        OwnedKey::Rep {
            pipeline,
            seed,
            subject,
        } => Payload::Report(decode_report(payload, *pipeline, *seed, subject.clone())?),
    };
    Ok(Record { kind, key, payload })
}

/// The content address (file stem) of a record: FNV-1a over the kind
/// tag plus the encoded key block, rendered as 16 hex digits. The key
/// fields are themselves content fingerprints, so equal addresses mean
/// equal artifacts (up to 64-bit collision odds).
pub(crate) fn address(kind: u8, key_bytes: &[u8]) -> String {
    let mut all = Vec::with_capacity(1 + key_bytes.len());
    all.push(kind);
    all.extend_from_slice(key_bytes);
    format!("{:016x}", fnv1a(&all))
}
