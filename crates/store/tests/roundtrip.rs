//! Round-trip pins for the disk tier: embeddings and similarity
//! matrices served from a `khaos-store` must be **bit-identical** (not
//! just 1e-12-close) to freshly computed ones, for all five differs.

use khaos_binary::lower_module;
use khaos_diff::{extended_differs, EmbeddingCache, FunctionEmbeddings};
use khaos_store::{EmbKey, MatKey, Store, TableView};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "khaos-store-rt-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// All five tools (the paper's four function-granularity tools plus
/// DataFlowDiff) over a pair of distinct workload binaries.
#[test]
fn embeddings_round_trip_bit_identical_for_all_five_differs() {
    let dir = scratch("emb5");
    let store = Store::open(&dir).expect("store opens");
    let a = lower_module(&khaos_workloads::coreutils_program("cat", 6));
    let b = lower_module(&khaos_workloads::coreutils_program("sort", 9));
    let differs = extended_differs();
    assert_eq!(differs.len(), 5);
    for tool in &differs {
        for bin in [&a, &b] {
            let fresh = FunctionEmbeddings::from_rows(tool.embed(bin));
            let key = EmbKey {
                tool: tool.name(),
                config: tool.config_fingerprint(),
                binary: bin.fingerprint(),
            };
            store
                .put_embeddings(
                    &key,
                    TableView::new(fresh.len(), fresh.dim(), fresh.as_flat()),
                )
                .expect("write");
            let back = store.get_embeddings(&key).expect("read").expect("hit");
            assert_eq!(
                (back.rows as usize, back.dim as usize),
                (fresh.len(), fresh.dim()),
                "{}",
                tool.name()
            );
            assert_eq!(
                bits(&back.data),
                bits(fresh.as_flat()),
                "{}: disk round trip must be bit-identical",
                tool.name()
            );
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// The cache-tier view of the same guarantee: a fresh
/// [`EmbeddingCache`] over a warmed store serves embeddings *and*
/// matrices whose every bit equals the cold computation's, for all
/// five differs — whether an artifact came from memory, disk, or was
/// recomputed is unobservable.
#[test]
fn cache_disk_tier_is_bit_identical_for_all_five_differs() {
    let dir = scratch("tier5");
    let store = Arc::new(Store::open(&dir).expect("store opens"));
    let query = lower_module(&khaos_workloads::coreutils_program("ls", 3));
    let target = lower_module(&khaos_workloads::coreutils_program("wc", 5));

    for tool in extended_differs() {
        // Cold: no store — the pure computation.
        let reference = tool.batched_similarity(&query, &target, &EmbeddingCache::new(8));

        // Warm the store from one process-alike...
        let writer = EmbeddingCache::new(8);
        writer.attach_store(Arc::clone(&store));
        let written = writer.matrix_for(tool.as_ref(), &query, &target);
        assert_eq!(
            bits(written.as_flat()),
            bits(reference.as_flat()),
            "{}: write-through path must not perturb the matrix",
            tool.name()
        );

        // ...and serve from another with zero recomputation.
        let reader = EmbeddingCache::new(8);
        reader.attach_store(Arc::clone(&store));
        let served = reader.matrix_for(tool.as_ref(), &query, &target);
        let stats = reader.stats();
        assert_eq!(
            stats.embeds_computed,
            0,
            "{}: nothing may be re-embedded on a warm store",
            tool.name()
        );
        assert!(stats.disk_hits >= 1, "{}: {stats:?}", tool.name());
        assert_eq!(
            bits(served.as_flat()),
            bits(reference.as_flat()),
            "{}: disk-served matrix must be bit-identical to computed",
            tool.name()
        );

        // Embeddings reload bit-identically too (matrix hits can skip
        // them entirely, so probe them directly).
        let kq = EmbKey {
            tool: tool.name(),
            config: tool.config_fingerprint(),
            binary: query.fingerprint(),
        };
        let cold = FunctionEmbeddings::from_rows(tool.embed(&query));
        if let Some(back) = store.get_embeddings(&kq).expect("read") {
            assert_eq!(bits(&back.data), bits(cold.as_flat()), "{}", tool.name());
        }
    }

    // Sanity: the matrix records are addressable by their keys.
    for tool in extended_differs() {
        let key = MatKey {
            tool: tool.name(),
            config: tool.config_fingerprint(),
            query: query.fingerprint(),
            target: target.fingerprint(),
        };
        assert!(
            store.get_matrix(&key).expect("read").is_some(),
            "{}: matrix record exists",
            tool.name()
        );
    }
    assert!(store.verify().expect("verify").is_empty());
    fs::remove_dir_all(&dir).unwrap();
}
