//! Round-trip pins for the disk tier: embeddings and similarity
//! matrices served from a `khaos-store` must be **bit-identical** (not
//! just 1e-12-close) to freshly computed ones, for all five differs —
//! and report records (the shard-merge keyspace) must round-trip their
//! metric payloads with the same bit-exactness.

use khaos_binary::lower_module;
use khaos_diff::{extended_differs, EmbeddingCache, FunctionEmbeddings, QuantizedEmbeddings};
use khaos_store::{
    EmbKey, MatKey, PayloadDump, QuantView, ReportKey, Store, StoredPass, StoredReport,
    StoredShape, TableView,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "khaos-store-rt-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// All five tools (the paper's four function-granularity tools plus
/// DataFlowDiff) over a pair of distinct workload binaries.
#[test]
fn embeddings_round_trip_bit_identical_for_all_five_differs() {
    let dir = scratch("emb5");
    let store = Store::open(&dir).expect("store opens");
    let a = lower_module(&khaos_workloads::coreutils_program("cat", 6));
    let b = lower_module(&khaos_workloads::coreutils_program("sort", 9));
    let differs = extended_differs();
    assert_eq!(differs.len(), 5);
    for tool in &differs {
        for bin in [&a, &b] {
            let fresh = FunctionEmbeddings::from_rows(tool.embed(bin));
            let key = EmbKey {
                tool: tool.name(),
                config: tool.config_fingerprint(),
                binary: bin.fingerprint(),
            };
            store
                .put_embeddings(
                    &key,
                    TableView::new(fresh.len(), fresh.dim(), fresh.as_flat()),
                )
                .expect("write");
            let back = store.get_embeddings(&key).expect("read").expect("hit");
            assert_eq!(
                (back.rows as usize, back.dim as usize),
                (fresh.len(), fresh.dim()),
                "{}",
                tool.name()
            );
            assert_eq!(
                bits(&back.data),
                bits(fresh.as_flat()),
                "{}: disk round trip must be bit-identical",
                tool.name()
            );
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// The cache-tier view of the same guarantee: a fresh
/// [`EmbeddingCache`] over a warmed store serves embeddings *and*
/// matrices whose every bit equals the cold computation's, for all
/// five differs — whether an artifact came from memory, disk, or was
/// recomputed is unobservable.
#[test]
fn cache_disk_tier_is_bit_identical_for_all_five_differs() {
    let dir = scratch("tier5");
    let store = Arc::new(Store::open(&dir).expect("store opens"));
    let query = lower_module(&khaos_workloads::coreutils_program("ls", 3));
    let target = lower_module(&khaos_workloads::coreutils_program("wc", 5));

    for tool in extended_differs() {
        // Cold: no store — the pure computation.
        let reference = tool.batched_similarity(&query, &target, &EmbeddingCache::new(8));

        // Warm the store from one process-alike...
        let writer = EmbeddingCache::new(8);
        writer.attach_store(Arc::clone(&store));
        let written = writer.matrix_for(tool.as_ref(), &query, &target);
        assert_eq!(
            bits(written.as_flat()),
            bits(reference.as_flat()),
            "{}: write-through path must not perturb the matrix",
            tool.name()
        );

        // ...and serve from another with zero recomputation.
        let reader = EmbeddingCache::new(8);
        reader.attach_store(Arc::clone(&store));
        let served = reader.matrix_for(tool.as_ref(), &query, &target);
        let stats = reader.stats();
        assert_eq!(
            stats.embeds_computed,
            0,
            "{}: nothing may be re-embedded on a warm store",
            tool.name()
        );
        assert!(stats.disk_hits >= 1, "{}: {stats:?}", tool.name());
        assert_eq!(
            bits(served.as_flat()),
            bits(reference.as_flat()),
            "{}: disk-served matrix must be bit-identical to computed",
            tool.name()
        );

        // Embeddings reload bit-identically too (matrix hits can skip
        // them entirely, so probe them directly).
        let kq = EmbKey {
            tool: tool.name(),
            config: tool.config_fingerprint(),
            binary: query.fingerprint(),
        };
        let cold = FunctionEmbeddings::from_rows(tool.embed(&query));
        if let Some(back) = store.get_embeddings(&kq).expect("read") {
            assert_eq!(bits(&back.data), bits(cold.as_flat()), "{}", tool.name());
        }
    }

    // Sanity: the matrix records are addressable by their keys.
    for tool in extended_differs() {
        let key = MatKey {
            tool: tool.name(),
            config: tool.config_fingerprint(),
            query: query.fingerprint(),
            target: target.fingerprint(),
        };
        assert!(
            store.get_matrix(&key).expect("read").is_some(),
            "{}: matrix record exists",
            tool.name()
        );
    }
    assert!(store.verify().expect("verify").is_empty());
    fs::remove_dir_all(&dir).unwrap();
}

/// Quantized tables (store format v2's `qnt` section) round-trip
/// bit-exactly for all five differs: every i8 code, and the per-row
/// scale/offset f64s compared by bits.
#[test]
fn quantized_records_round_trip_bit_identical_for_all_five_differs() {
    let dir = scratch("qnt5");
    let store = Store::open(&dir).expect("store opens");
    let a = lower_module(&khaos_workloads::coreutils_program("cat", 6));
    let b = lower_module(&khaos_workloads::coreutils_program("sort", 9));
    for tool in &extended_differs() {
        for bin in [&a, &b] {
            let emb = FunctionEmbeddings::from_rows(tool.embed(bin));
            let q = QuantizedEmbeddings::from_embeddings(&emb);
            let key = EmbKey {
                tool: tool.name(),
                config: tool.config_fingerprint(),
                binary: bin.fingerprint(),
            };
            store
                .put_quantized(
                    &key,
                    QuantView::new(q.len(), q.dim(), q.scales(), q.offsets(), q.codes()),
                )
                .expect("write");
            let back = store.get_quantized(&key).expect("read").expect("hit");
            assert_eq!(
                (back.rows as usize, back.dim as usize),
                (q.len(), q.dim()),
                "{}",
                tool.name()
            );
            assert_eq!(back.data, q.codes(), "{}: i8 codes", tool.name());
            assert_eq!(bits(&back.scales), bits(q.scales()), "{}", tool.name());
            assert_eq!(bits(&back.offsets), bits(q.offsets()), "{}", tool.name());
            // Reconstructing from the wire parts reproduces the table
            // exactly — derived row sums included.
            let rebuilt = QuantizedEmbeddings::from_parts(
                back.rows as usize,
                back.dim as usize,
                back.data.clone(),
                back.scales.clone(),
                back.offsets.clone(),
            );
            assert_eq!(rebuilt, q, "{}", tool.name());
        }
    }
    // A quantized record shares its EmbKey with the f64 record but not
    // its address: writing the f64 table must not collide.
    let tool = &extended_differs()[0];
    let emb = FunctionEmbeddings::from_rows(tool.embed(&a));
    let key = EmbKey {
        tool: tool.name(),
        config: tool.config_fingerprint(),
        binary: a.fingerprint(),
    };
    store
        .put_embeddings(&key, TableView::new(emb.len(), emb.dim(), emb.as_flat()))
        .expect("write emb alongside qnt");
    assert!(store.get_embeddings(&key).expect("read").is_some());
    assert!(store.get_quantized(&key).expect("read").is_some());
    assert!(store.verify().expect("verify").is_empty());
    fs::remove_dir_all(&dir).unwrap();
}

/// `verify` catches a corrupted quantized record, the lookup path
/// degrades it to a miss, and `cat` names the damage.
#[test]
fn verify_catches_a_corrupted_quantized_record() {
    let dir = scratch("qnt-corrupt");
    let store = Store::open(&dir).expect("store opens");
    let module = lower_module(&khaos_workloads::coreutils_program("wc", 5));
    let tool = &extended_differs()[2];
    let emb = FunctionEmbeddings::from_rows(tool.embed(&module));
    let q = QuantizedEmbeddings::from_embeddings(&emb);
    let key = EmbKey {
        tool: tool.name(),
        config: tool.config_fingerprint(),
        binary: module.fingerprint(),
    };
    store
        .put_quantized(
            &key,
            QuantView::new(q.len(), q.dim(), q.scales(), q.offsets(), q.codes()),
        )
        .expect("write");
    assert!(store.verify().expect("verify").is_empty(), "clean at first");

    let mut files: Vec<PathBuf> = fs::read_dir(store.root().join("qnt"))
        .expect("qnt dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "khs").unwrap_or(false))
        .collect();
    assert_eq!(files.len(), 1, "exactly one quantized record expected");
    let path = files.pop().unwrap();
    let mut bytes = fs::read(&path).expect("read record");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).expect("corrupt record");

    let issues = store.verify().expect("verify runs");
    assert_eq!(issues.len(), 1, "damage must be reported");
    assert!(
        issues[0].reason.contains("checksum"),
        "reason names the checksum: {}",
        issues[0].reason
    );
    assert!(issues[0].file.starts_with("qnt/"), "{}", issues[0].file);
    assert_eq!(
        store.get_quantized(&key).expect("read"),
        None,
        "damaged quantized records degrade to a miss"
    );
    let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
    let err = store.cat(&stem).expect_err("cat must surface damage");
    assert!(err.to_string().contains("checksum"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

/// `cat` decodes a quantized record into its dump form.
#[test]
fn cat_decodes_a_quantized_record() {
    let dir = scratch("qnt-cat");
    let store = Store::open(&dir).expect("store opens");
    let module = lower_module(&khaos_workloads::coreutils_program("ls", 3));
    let tool = &extended_differs()[4];
    let emb = FunctionEmbeddings::from_rows(tool.embed(&module));
    let q = QuantizedEmbeddings::from_embeddings(&emb);
    let key = EmbKey {
        tool: tool.name(),
        config: tool.config_fingerprint(),
        binary: module.fingerprint(),
    };
    store
        .put_quantized(
            &key,
            QuantView::new(q.len(), q.dim(), q.scales(), q.offsets(), q.codes()),
        )
        .expect("write");
    let file = fs::read_dir(store.root().join("qnt"))
        .expect("qnt dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().map(|x| x == "khs").unwrap_or(false))
        .expect("one quantized record");
    let stem = file.file_stem().unwrap().to_string_lossy().into_owned();
    match store
        .cat(&stem)
        .expect("cat reads")
        .expect("cat hits")
        .payload
    {
        PayloadDump::Quant(t) => {
            assert_eq!((t.rows as usize, t.dim as usize), (q.len(), q.dim()));
            assert_eq!(t.data, q.codes());
        }
        other => panic!("quantized record decoded as {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// A report whose metric payload exercises hostile f64 bit patterns:
/// signed zeros, a subnormal, infinities and both NaN signs.
fn hostile_report(subject: &str) -> StoredReport {
    StoredReport {
        spec: "fufi_all | O2+lto".into(),
        pipeline: 0xDEAD_BEEF_0123,
        seed: 0xC60_2023,
        subject: subject.into(),
        total_micros: 31_337,
        passes: vec![StoredPass {
            pass: "fufi_all".into(),
            micros: 29_000,
            before: StoredShape {
                functions: 210,
                blocks: 800,
                insts: 9001,
            },
            after: StoredShape {
                functions: 390,
                blocks: 1210,
                insts: 11_854,
            },
        }],
        metrics: vec![
            ("escape@1".into(), 0.75),
            ("zero".into(), 0.0),
            ("neg_zero".into(), -0.0),
            ("subnormal".into(), f64::MIN_POSITIVE / 8.0),
            ("inf".into(), f64::INFINITY),
            ("neg_inf".into(), f64::NEG_INFINITY),
            ("nan".into(), f64::NAN),
            ("neg_nan".into(), -f64::NAN),
        ],
    }
}

/// Report metric payloads survive put/get **bit-exactly** — the
/// guarantee the shard-merge layer leans on when it reassembles a
/// fig10 grid from records other processes wrote.
#[test]
fn report_metric_payloads_round_trip_bit_exactly() {
    let dir = scratch("rep-bits");
    let store = Store::open(&dir).expect("store opens");
    let report = hostile_report("fig10/jerryscript/FuFi.all/SAFE");
    store.put_report(&report).expect("write");
    let back = store
        .get_report(&ReportKey {
            pipeline: report.pipeline,
            seed: report.seed,
            subject: &report.subject,
        })
        .expect("read")
        .expect("hit");
    // Everything except the metric values compares structurally…
    assert_eq!(back.spec, report.spec);
    assert_eq!(back.subject, report.subject);
    assert_eq!(back.total_micros, report.total_micros);
    assert_eq!(back.passes, report.passes);
    assert_eq!(back.metrics.len(), report.metrics.len());
    // …and the metric values compare by bits (`==` would wave through a
    // 0.0/-0.0 swap and reject identical NaNs).
    for ((na, va), (nb, vb)) in back.metrics.iter().zip(&report.metrics) {
        assert_eq!(na, nb);
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{na}: report metric must round-trip bit-exactly"
        );
    }
    // The decoded `reports()` view and `cat` agree with `get_report`.
    let all = store.reports().expect("reports decode");
    assert_eq!(all.len(), 1);
    assert_eq!(
        all[0]
            .metrics
            .iter()
            .map(|(_, v)| v.to_bits())
            .collect::<Vec<_>>(),
        report
            .metrics
            .iter()
            .map(|(_, v)| v.to_bits())
            .collect::<Vec<_>>()
    );
    let (path, _) = store_rep_file(&store);
    let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
    match store
        .cat(&stem)
        .expect("cat reads")
        .expect("cat hits")
        .payload
    {
        PayloadDump::Report(r) => assert_eq!(r.subject, report.subject),
        other => panic!("report record decoded as {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// The single report file of a one-record store.
fn store_rep_file(store: &Store) -> (PathBuf, u64) {
    let mut files: Vec<_> = fs::read_dir(store.root().join("rep"))
        .expect("rep dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().map(|x| x == "khs").unwrap_or(false))
        .map(|e| (e.path(), e.metadata().map(|m| m.len()).unwrap_or(0)))
        .collect();
    assert_eq!(files.len(), 1, "exactly one report record expected");
    files.pop().unwrap()
}

/// `verify` catches a corrupted report record — and the lookup path
/// degrades it to a miss rather than serving damaged metrics.
#[test]
fn verify_catches_a_corrupted_report_record() {
    let dir = scratch("rep-corrupt");
    let store = Store::open(&dir).expect("store opens");
    let report = hostile_report("fig10/quickjs/Sub/Asm2Vec");
    store.put_report(&report).expect("write");
    assert!(store.verify().expect("verify").is_empty(), "clean at first");

    // Flip one byte in the middle of the metric payload.
    let (path, len) = store_rep_file(&store);
    let mut bytes = fs::read(&path).expect("read record");
    assert_eq!(bytes.len() as u64, len);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).expect("corrupt record");

    let issues = store.verify().expect("verify runs");
    assert_eq!(issues.len(), 1, "damage must be reported");
    assert!(
        issues[0].reason.contains("checksum"),
        "reason names the checksum: {}",
        issues[0].reason
    );
    assert!(issues[0].file.starts_with("rep/"), "{}", issues[0].file);
    // Damaged records are invisible to the query layer (a miss, not a
    // wrong answer), and `cat` — the inspection tool — names the damage
    // instead of masking it.
    assert_eq!(
        store
            .get_report(&ReportKey {
                pipeline: report.pipeline,
                seed: report.seed,
                subject: &report.subject,
            })
            .expect("read"),
        None
    );
    assert!(store.reports().expect("reports").is_empty());
    let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
    let err = store.cat(&stem).expect_err("cat must surface damage");
    assert!(err.to_string().contains("checksum"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}
