//! Integration tests for `khaos-store merge SRC... DST` — the
//! write-side merge a multi-machine sweep runs to pool shard stores
//! before `experiments figN-merge` reads the union.
//!
//! Pinned here: a real merge copies records and is idempotent; a
//! damaged source is refused wholesale (verify-then-copy — no partial
//! merge leaves the destination half-poisoned); a typo'd source path
//! is an error, not an empty merge.

use khaos_store::{ReportKey, Store, StoredReport};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "khaos-merge-cli-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cli(args: &[&PathBuf]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_khaos-store"));
    cmd.arg("merge");
    for a in args {
        cmd.arg(a);
    }
    cmd.output().expect("khaos-store runs")
}

fn put(store: &Store, subject: &str, metric: f64) {
    store
        .put_report(&StoredReport {
            spec: "o2;lto".into(),
            pipeline: 0xABCD,
            seed: 7,
            subject: subject.into(),
            total_micros: 42,
            passes: Vec::new(),
            metrics: vec![("overhead%".into(), metric)],
        })
        .expect("put_report");
}

fn get(store: &Store, subject: &str) -> Option<StoredReport> {
    store
        .get_report(&ReportKey {
            pipeline: 0xABCD,
            seed: 7,
            subject,
        })
        .expect("get_report")
}

/// Two shard stores pool into a destination; re-merging skips every
/// already-present record instead of rewriting it.
#[test]
fn merge_pools_shards_and_is_idempotent() {
    let (da, db, dd) = (scratch("a"), scratch("b"), scratch("dst"));
    let a = Store::open(&da).unwrap();
    let b = Store::open(&db).unwrap();
    put(&a, "fig7/x", 1.5);
    put(&a, "fig7/y", 2.5);
    put(&b, "fig7/z", 3.5);

    let out = cli(&[&da, &db, &dd]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("merge: 3 record(s) copied, 0 skipped"),
        "{stdout}"
    );

    let dst = Store::open_existing(&dd).expect("merge created a real store");
    for (subject, want) in [("fig7/x", 1.5), ("fig7/y", 2.5), ("fig7/z", 3.5)] {
        let rep = get(&dst, subject).expect("record arrived");
        assert_eq!(rep.metrics, vec![("overhead%".to_string(), want)]);
    }

    // Idempotence: everything is already present, nothing is copied.
    let again = cli(&[&da, &db, &dd]);
    assert!(again.status.success(), "{again:?}");
    let stdout = String::from_utf8(again.stdout).unwrap();
    assert!(
        stdout.contains("merge: 0 record(s) copied, 3 skipped"),
        "{stdout}"
    );

    for d in [&da, &db, &dd] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

/// A source with a damaged record is refused before anything is
/// copied: verify-then-copy means the destination stays exactly as it
/// was, even for the source's undamaged records.
#[test]
fn merge_refuses_a_damaged_source_wholesale() {
    let (ds, dd) = (scratch("bad"), scratch("bad-dst"));
    let src = Store::open(&ds).unwrap();
    put(&src, "fig7/good", 1.0);
    put(&src, "fig7/bad", 2.0);

    // Corrupt one record body on disk (checksum damage).
    let victim = find_record(&ds, 2).expect("two records on disk");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&victim, bytes).unwrap();

    let out = cli(&[&ds, &dd]);
    assert!(!out.status.success(), "a damaged source must be refused");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("refusing to merge"), "{stderr}");

    // Nothing — not even the undamaged record — reached the
    // destination.
    let dst = Store::open_existing(&dd).expect("dst was still created");
    assert!(get(&dst, "fig7/good").is_none());
    assert!(get(&dst, "fig7/bad").is_none());

    for d in [&ds, &dd] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

/// A typo'd SRC is an error, not an empty merge (only the destination
/// may be created by `merge`).
#[test]
fn merge_refuses_a_nonexistent_source() {
    let dd = scratch("typo-dst");
    let ghost = scratch("typo-src"); // never created
    let out = cli(&[&ghost, &dd]);
    assert!(!out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no such store directory"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dd);
}

/// Returns the path of the `n`-th (1-based) report record file found
/// under the store's `rep/` section, in directory order.
fn find_record(store_dir: &Path, n: usize) -> Option<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![store_dir.join("rep")];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_none_or(|e| e != "lease") {
                found.push(path);
            }
        }
    }
    found.sort();
    found.into_iter().nth(n - 1)
}
