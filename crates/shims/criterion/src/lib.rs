//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the workspace's benches compiling and *measuring*: `b.iter(..)` runs
//! a warm-up, then times `sample_size` samples and reports the mean,
//! min and max wall-clock time per iteration in a criterion-flavoured
//! line. Statistical analysis, plotting and history comparison are out
//! of scope.
//!
//! Set `KHAOS_BENCH_JSON=<path>` to additionally write every recorded
//! measurement as a JSON array (used by the repo's perf-trajectory
//! artifacts, e.g. `BENCH_similarity.json`).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

/// Identifies a parameterized benchmark (subset of
/// `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times a single benchmark body (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Runs `f` through warm-up plus timed samples, recording
    /// per-iteration wall-clock statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed run (and a cheap calibration probe).
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed();
        // Batch very fast bodies so timer resolution does not dominate.
        let batch = if probe < Duration::from_micros(5) {
            64
        } else {
            1
        };
        let mut mean_acc = 0.0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            mean_acc += ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        self.result = Some(Measurement {
            id: String::new(),
            mean_ns: mean_acc / self.samples as f64,
            min_ns,
            max_ns,
            samples: self.samples,
        });
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(
    measurements: &mut Vec<Measurement>,
    samples: usize,
    id: String,
    run: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    run(&mut b);
    if let Some(mut m) = b.result {
        m.id = id;
        println!(
            "{:<50} time: [{} {} {}]",
            m.id,
            human(m.min_ns),
            human(m.mean_ns),
            human(m.max_ns)
        );
        measurements.push(m);
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: 10,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&mut self.measurements, 10, id.to_string(), |b| f(b));
        self
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Writes the recorded measurements as a JSON array.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
                m.id.replace('"', "'"),
                m.mean_ns,
                m.min_ns,
                m.max_ns,
                m.samples,
                if i + 1 < self.measurements.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }

    /// Honours `KHAOS_BENCH_JSON` when set (called by `criterion_main!`).
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("KHAOS_BENCH_JSON") {
            if let Err(e) = self.write_json(&path) {
                eprintln!("failed to write {path}: {e}");
            }
        }
    }
}

/// A group of related benchmarks (subset of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(&mut self.parent.measurements, self.samples, id, |b| f(b));
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.0);
        run_one(&mut self.parent.measurements, self.samples, id, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (statistics flushing is a no-op in the shim).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declares a group of benchmark functions (subset of the real macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` (subset of the real macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("busy", |b| b.iter(|| (0..1000u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| 1 + 1));
        let ms = c.measurements();
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[0].id, "g/busy");
        assert_eq!(ms[1].id, "g/param/7");
        assert!(ms.iter().all(|m| m.mean_ns > 0.0 && m.min_ns <= m.mean_ns));
    }

    #[test]
    fn json_is_written() {
        let mut c = Criterion::default();
        c.bench_function("j", |b| b.iter(|| 2 * 2));
        let path = std::env::temp_dir().join("criterion_shim_test.json");
        c.write_json(path.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"id\": \"j\""));
        let _ = std::fs::remove_file(path);
    }
}
