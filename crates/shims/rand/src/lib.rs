//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides exactly the API subset the workspace consumes: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`, `gen_range`, `gen_bool`, and `SliceRandom::shuffle`.
//! The generator is xoshiro256** seeded through SplitMix64 — high
//! quality, deterministic across platforms, and *not* expected to match
//! the upstream `rand` stream bit-for-bit (nothing in this workspace
//! depends on the exact stream, only on determinism per seed).

/// Raw 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard PRNG: xoshiro256** with SplitMix64 seed expansion.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Sampling a value of `Self` from raw bits (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A type that can be uniformly sampled between two bounds (stand-in
/// for `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// A range a value can be uniformly sampled from (stand-in for
/// `rand::distributions::uniform::SampleRange`). Implemented
/// generically over [`SampleUniform`] so integer-literal inference
/// flows from the usage site, exactly as with the real crate.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Convenience extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespaced re-exports matching `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..5);
            assert!(x < 5);
            let y = r.gen_range(1..=3usize);
            assert!((1..=3).contains(&y));
            let z = r.gen_range(-8.0..8.0);
            assert!((-8.0..8.0).contains(&z));
            let w: i64 = r.gen_range(1..1000);
            assert!((1..1000).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
