//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro over `arg in strategy` bindings, range and
//! [`any`] strategies, `prop_assert!`/`prop_assert_eq!`, and a
//! [`ProptestConfig`] with a `cases` knob. Sampling is deterministic:
//! the RNG is seeded from the test's name, so failures reproduce
//! without a persistence file. Shrinking is not implemented — a failing
//! case panics with its case index instead.

use rand::{Rng, RngCore, SeedableRng, StdRng};

/// Configuration for a `proptest!` block (subset of the real struct).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented, so
    /// this knob has no effect.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic test RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the RNG from a test name (FNV-1a), so each test gets a
    /// stable, independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of values for one `arg in strategy` binding.
pub trait Strategy {
    /// The sampled value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The `any::<T>()` strategy: any value of `T`.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Skips the current case when `cond` does not hold (the real crate
/// rejects and resamples; this shim simply moves to the next case —
/// with deterministic per-test streams that is the same set of
/// surviving cases on every run). Must be used inside a [`proptest!`]
/// body, where the case loop is in scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares deterministic property tests over `arg in strategy`
/// bindings (subset of the real macro's grammar).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Prelude matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Bindings sample within their strategies.
        #[test]
        fn ranges_bind(a in 0u64..10, b in 2usize..=4, c in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((2..=4).contains(&b));
            prop_assert_eq!(c as u8 <= 1, true);
        }
    }

    proptest! {
        /// Default config runs too.
        #[test]
        fn default_config(x in 1i64..100) {
            prop_assert!((1..100).contains(&x));
        }

        /// `prop_assume!` filters cases instead of failing them.
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = super::TestRng::for_test("t");
        let mut b = super::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
