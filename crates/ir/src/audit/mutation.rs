//! Seeded-miscompile generators for auditing the auditor.
//!
//! Each generator injects one class of semantic miscompile into a clone of
//! a module — a bug [`verify_module`](crate::verify::verify_module) cannot see,
//! because the mutant stays structurally well-formed. Candidate filtering
//! is *syntactic* (uniqueness and reachability conditions established
//! directly on the IR, not by asking the diff under test), so a caught
//! mutant genuinely exercises the audit machinery:
//!
//! - [`MutationClass::DroppedStore`]: every store that may write a chosen
//!   root-reachable global is removed, so the global leaves the write set.
//! - [`MutationClass::RetargetedCall`]: the unique direct call to a
//!   function is rewired to a signature-compatible sibling whose body
//!   lacks one of the original callee's effects, so that effect leaves
//!   the closure.
//! - [`MutationClass::OrphanedBlock`]: a branch arm to a single-predecessor
//!   block carrying a module-unique effect is folded to the other arm,
//!   orphaning the block and its effect.

use super::ModuleFacts;
use crate::analysis::cfg::Cfg;
use crate::inst::{Callee, Inst, Term};
use crate::module::Module;
use std::collections::BTreeSet;

/// The class of semantic miscompile to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationClass {
    /// Remove all stores to one global.
    DroppedStore,
    /// Rewire a direct call to a different, signature-compatible callee.
    RetargetedCall,
    /// Fold a branch so an effectful block becomes unreachable.
    OrphanedBlock,
}

/// One injected miscompile.
pub struct Mutant {
    /// The mutated module (still passes `verify_module`).
    pub module: Module,
    /// The class injected.
    pub class: MutationClass,
    /// What was broken, for test diagnostics.
    pub description: String,
}

/// Generates up to `limit` mutants of `class` from `m`. Returns fewer (or
/// none) when the module offers no candidate meeting the class's
/// guaranteed-observable conditions.
pub fn generate(m: &Module, class: MutationClass, limit: usize) -> Vec<Mutant> {
    match class {
        MutationClass::DroppedStore => dropped_stores(m, limit),
        MutationClass::RetargetedCall => retargeted_calls(m, limit),
        MutationClass::OrphanedBlock => orphaned_blocks(m, limit),
    }
}

/// For each root-reachable global with at least one executable store,
/// produce a mutant with every store that may target it removed. The
/// pointer analysis converges identically on the mutant (stores define no
/// locals), so the global is guaranteed to leave the after write set.
fn dropped_stores(m: &Module, limit: usize) -> Vec<Mutant> {
    let facts = ModuleFacts::compute(m);
    let reachable = facts.reachable_from_roots();
    let mut out = Vec::new();
    for (gi, g) in m.globals.iter().enumerate() {
        if out.len() >= limit {
            break;
        }
        // (function, block, inst) sites whose address set may contain gi.
        let mut sites: Vec<(usize, usize, usize)> = Vec::new();
        let mut reachable_site = false;
        for (fi, f) in m.functions.iter().enumerate() {
            let fx = &facts.fns[fi];
            for (bi, block) in f.blocks.iter().enumerate() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    if let Inst::Store { addr, .. } = inst {
                        let hits = addr
                            .as_local()
                            .map(|l| fx.ptr[l.index()].contains(&gi))
                            .unwrap_or(false);
                        if hits {
                            sites.push((fi, bi, ii));
                            if reachable.contains(&fi) && fx.exec[bi] {
                                reachable_site = true;
                            }
                        }
                    }
                }
            }
        }
        if !reachable_site {
            continue;
        }
        let mut module = m.clone();
        for &(fi, bi, ii) in sites.iter().rev() {
            module.functions[fi].blocks[bi].insts.remove(ii);
        }
        out.push(Mutant {
            module,
            class: MutationClass::DroppedStore,
            description: format!("dropped all {} store(s) to @{}", sites.len(), g.name),
        });
    }
    out
}

/// Ext-call names and global read/write ids appearing in a function's own
/// executable blocks (no closure) — the syntactic footprint used to prove
/// a retarget observable.
fn body_footprint(facts: &ModuleFacts, fi: usize) -> BTreeSet<String> {
    let fx = &facts.fns[fi];
    let mut fp = BTreeSet::new();
    for e in &fx.effects.ext_calls {
        fp.insert(format!("ext:{e}"));
    }
    for r in &fx.effects.global_reads {
        fp.insert(format!("read:{r}"));
    }
    for w in &fx.effects.global_writes {
        fp.insert(format!("write:{w}"));
    }
    fp
}

/// Rewire the unique direct call to a callee toward a signature-compatible
/// alternative. Conditions making the miscompile observable by closure
/// effects: the original callee is called nowhere else and not
/// address-taken, and its body carries an effect no other function's body
/// carries — after the retarget that effect has left every closure.
fn retargeted_calls(m: &Module, limit: usize) -> Vec<Mutant> {
    let facts = ModuleFacts::compute(m);
    let reachable = facts.reachable_from_roots();
    let n = m.functions.len();

    // Direct-call sites per callee, across all executable blocks.
    let mut call_sites: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
    for (fi, f) in m.functions.iter().enumerate() {
        for (bi, block) in f.blocks.iter().enumerate() {
            if !facts.fns[fi].exec[bi] {
                continue;
            }
            for (ii, inst) in block.insts.iter().enumerate() {
                if let Inst::Call {
                    callee: Callee::Direct(c),
                    ..
                } = inst
                {
                    call_sites[c.index()].push((fi, bi, ii));
                }
            }
            if let Term::Invoke {
                callee: Callee::Direct(c),
                ..
            } = &block.term
            {
                call_sites[c.index()].push((fi, bi, usize::MAX));
            }
        }
    }
    let footprints: Vec<BTreeSet<String>> = (0..n).map(|fi| body_footprint(&facts, fi)).collect();

    let mut out = Vec::new();
    for c1 in 0..n {
        if out.len() >= limit {
            break;
        }
        if call_sites[c1].len() != 1 || facts.address_taken.contains(&c1) {
            continue;
        }
        let (fi, bi, ii) = call_sites[c1][0];
        if !reachable.contains(&fi) {
            continue;
        }
        // An effect unique to c1's body across the whole module.
        let others: BTreeSet<String> = (0..n)
            .filter(|&x| x != c1)
            .flat_map(|x| footprints[x].iter().cloned())
            .collect();
        let Some(unique) = footprints[c1].difference(&others).next().cloned() else {
            continue;
        };
        let f1 = &m.functions[c1];
        let Some(c2) = (0..n).find(|&x| {
            let f2 = &m.functions[x];
            x != c1
                && f2.param_types() == f1.param_types()
                && f2.ret_ty == f1.ret_ty
                && f2.variadic == f1.variadic
        }) else {
            continue;
        };
        let mut module = m.clone();
        let block = &mut module.functions[fi].blocks[bi];
        let target = crate::ids::FuncId::new(c2);
        if ii == usize::MAX {
            if let Term::Invoke { callee, .. } = &mut block.term {
                *callee = Callee::Direct(target);
            }
        } else if let Inst::Call { callee, .. } = &mut block.insts[ii] {
            *callee = Callee::Direct(target);
        }
        out.push(Mutant {
            module,
            class: MutationClass::RetargetedCall,
            description: format!(
                "retargeted the only call to `{}` (unique effect {unique}) to `{}`",
                m.functions[c1].name, m.functions[c2].name
            ),
        });
    }
    out
}

/// Fold a branch arm so a single-predecessor block holding a module-unique
/// effect becomes unreachable. The orphaned effect leaves its function's
/// summary (executable blocks only) and, being unique, every closure.
fn orphaned_blocks(m: &Module, limit: usize) -> Vec<Mutant> {
    let facts = ModuleFacts::compute(m);
    let reachable = facts.reachable_from_roots();

    // Count effect occurrences per executable block module-wide, so
    // uniqueness can be established syntactically.
    let mut occurrences: std::collections::BTreeMap<String, usize> = Default::default();
    let block_effects = |fi: usize, bi: usize| -> BTreeSet<String> {
        let f = &m.functions[fi];
        let fx = &facts.fns[fi];
        let mut fp = BTreeSet::new();
        for inst in &f.blocks[bi].insts {
            match inst {
                Inst::Store { addr, .. } => {
                    if let Some(l) = addr.as_local() {
                        for &g in &fx.ptr[l.index()] {
                            fp.insert(format!("write:{}", m.globals[g].name));
                        }
                    }
                }
                Inst::Call {
                    callee: Callee::Ext(e),
                    ..
                } => {
                    fp.insert(format!("ext:{}", m.externals[e.index()].name));
                }
                _ => {}
            }
        }
        if let Term::Invoke {
            callee: Callee::Ext(e),
            ..
        } = &f.blocks[bi].term
        {
            fp.insert(format!("ext:{}", m.externals[e.index()].name));
        }
        fp
    };
    for (fi, f) in m.functions.iter().enumerate() {
        for bi in 0..f.blocks.len() {
            if !facts.fns[fi].exec[bi] {
                continue;
            }
            for e in block_effects(fi, bi) {
                *occurrences.entry(e).or_insert(0) += 1;
            }
        }
    }

    let mut out = Vec::new();
    for (fi, f) in m.functions.iter().enumerate() {
        if out.len() >= limit {
            break;
        }
        if !reachable.contains(&fi) {
            continue;
        }
        let cfg = Cfg::compute(f);
        for (bi, block) in f.blocks.iter().enumerate() {
            if out.len() >= limit {
                break;
            }
            if !facts.fns[fi].exec[bi] {
                continue;
            }
            let Term::Branch {
                then_bb, else_bb, ..
            } = &block.term
            else {
                continue;
            };
            if then_bb == else_bb {
                continue;
            }
            for (victim, keep) in [(*then_bb, *else_bb), (*else_bb, *then_bb)] {
                if f.block(victim).is_pad() || cfg.preds(victim).len() != 1 {
                    continue;
                }
                let fx = block_effects(fi, victim.index());
                let unique = fx.iter().find(|e| occurrences.get(*e) == Some(&1));
                let Some(unique) = unique else {
                    continue;
                };
                let mut module = m.clone();
                module.functions[fi].blocks[bi].term = Term::Jump(keep);
                out.push(Mutant {
                    module,
                    class: MutationClass::OrphanedBlock,
                    description: format!(
                        "orphaned {victim} of `{}` (unique effect {unique}) by folding the branch in {}",
                        f.name,
                        crate::ids::BlockId::new(bi),
                    ),
                });
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::ModuleSummary;
    use crate::builder::FunctionBuilder;
    use crate::function::Linkage;
    use crate::inst::Operand;
    use crate::module::{ExtFunc, Global};
    use crate::types::Type;
    use crate::verify::verify_module;

    /// A module offering candidates for all three classes: main branches,
    /// one arm calls log_a (unique ext call), both arms join; helper_a
    /// (called once) writes @a; helper_b has the same signature but
    /// writes @b.
    fn rich() -> Module {
        let mut m = Module::new("mutants");
        let ga = m.push_global(Global::zeroed("glob_a", 8));
        let gb = m.push_global(Global::zeroed("glob_b", 8));
        let log_a = m.declare_external(ExtFunc {
            name: "log_a".to_string(),
            params: vec![],
            ret_ty: Type::Void,
            variadic: false,
        });

        let mut a = FunctionBuilder::new("helper_a", Type::Void);
        let pa = a.globaladdr(ga);
        a.store(
            Type::I64,
            Operand::const_int(Type::I64, 1),
            Operand::local(pa),
        );
        a.ret(None);
        let helper_a = m.push_function(a.finish());

        let mut b = FunctionBuilder::new("helper_b", Type::Void);
        let pb = b.globaladdr(gb);
        b.store(
            Type::I64,
            Operand::const_int(Type::I64, 2),
            Operand::local(pb),
        );
        b.ret(None);
        m.push_function(b.finish());

        let mut f = FunctionBuilder::new("main", Type::I64);
        let flag = f.add_param(Type::I1);
        let noisy = f.new_block();
        let joined = f.new_block();
        f.branch(Operand::local(flag), noisy, joined);
        f.switch_to(noisy);
        f.call_ext(log_a, Type::Void, vec![]);
        f.jump(joined);
        f.switch_to(joined);
        f.call(helper_a, Type::Void, vec![]);
        f.ret(Some(Operand::const_int(Type::I64, 0)));
        let mut mainf = f.finish();
        mainf.linkage = Linkage::Exported;
        m.push_function(mainf);
        verify_module(&m).expect("rich module is well-formed");
        m
    }

    fn assert_all_caught(m: &Module, class: MutationClass) -> usize {
        let before = ModuleSummary::compute(m);
        let mutants = generate(m, class, 16);
        for mt in &mutants {
            verify_module(&mt.module).unwrap_or_else(|e| {
                panic!("{}: mutant must stay well-formed: {e:?}", mt.description)
            });
            let after = ModuleSummary::compute(&mt.module);
            let d = ModuleSummary::diff(&before, &after);
            assert!(!d.is_empty(), "audit missed mutant: {}", mt.description);
        }
        mutants.len()
    }

    #[test]
    fn dropped_store_mutants_are_caught() {
        assert!(assert_all_caught(&rich(), MutationClass::DroppedStore) >= 1);
    }

    #[test]
    fn retargeted_call_mutants_are_caught() {
        assert!(assert_all_caught(&rich(), MutationClass::RetargetedCall) >= 1);
    }

    #[test]
    fn orphaned_block_mutants_are_caught() {
        assert!(assert_all_caught(&rich(), MutationClass::OrphanedBlock) >= 1);
    }

    #[test]
    fn clean_module_self_diff_reports_nothing() {
        let m = rich();
        let s = ModuleSummary::compute(&m);
        assert!(ModuleSummary::diff(&s, &s).is_empty());
    }
}
