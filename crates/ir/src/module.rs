//! Modules: functions, globals and external declarations.

use crate::function::Function;
use crate::ids::{ExtId, FuncId, GlobalId};
use crate::types::Type;

/// One element of a global initialiser.
///
/// `FuncPtr` models a pointer-sized relocation against a function symbol
/// with an `addend` — the vehicle the paper uses (§A.1) to attach tag bits
/// to statically-initialised function pointers without load-time fixups.
#[derive(Clone, Debug, PartialEq)]
pub enum GInit {
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// An integer value of the given type, stored little-endian.
    Int { value: i64, ty: Type },
    /// A float value of the given type, stored little-endian.
    Float { value: f64, ty: Type },
    /// `size` zero bytes.
    Zero(u32),
    /// A pointer-sized slot relocated to `func`'s address plus `addend`.
    FuncPtr { func: FuncId, addend: i64 },
}

impl GInit {
    /// The number of bytes this element occupies.
    pub fn size(&self) -> u32 {
        match self {
            GInit::Bytes(b) => b.len() as u32,
            GInit::Int { ty, .. } | GInit::Float { ty, .. } => ty.size(),
            GInit::Zero(n) => *n,
            GInit::FuncPtr { .. } => 8,
        }
    }
}

/// A global variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Symbol name, unique within the module.
    pub name: String,
    /// Initialiser elements, laid out contiguously.
    pub init: Vec<GInit>,
    /// Alignment in bytes.
    pub align: u32,
    /// Whether the global is visible outside the module. Function pointers
    /// stored in exported globals can escape, so fusion must route them
    /// through trampolines rather than tagging them.
    pub exported: bool,
}

impl Global {
    /// A zero-initialised internal global of `size` bytes.
    pub fn zeroed(name: impl Into<String>, size: u32) -> Self {
        Global {
            name: name.into(),
            init: vec![GInit::Zero(size)],
            align: 8,
            exported: false,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.init.iter().map(GInit::size).sum()
    }
}

/// An external function declaration, resolved by name at run time by the
/// VM's synthetic libc.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtFunc {
    /// Name, e.g. `"print_i64"` or `"setjmp"`.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret_ty: Type,
    /// True for variadic declarations (e.g. `printf`-alikes).
    pub variadic: bool,
}

/// A translation unit: the unit the obfuscator transforms and the codegen
/// lowers to a binary.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    /// Module name (used as the binary name).
    pub name: String,
    /// Function definitions.
    pub functions: Vec<Function>,
    /// Global variables.
    pub globals: Vec<Global>,
    /// External declarations.
    pub externals: Vec<ExtFunc>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            externals: Vec::new(),
        }
    }

    /// Appends a function and returns its id.
    pub fn push_function(&mut self, f: Function) -> FuncId {
        let id = FuncId::new(self.functions.len());
        self.functions.push(f);
        id
    }

    /// Appends a global and returns its id.
    pub fn push_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId::new(self.globals.len());
        self.globals.push(g);
        id
    }

    /// Declares an external function (or returns the existing id when an
    /// identical declaration is already present).
    pub fn declare_external(&mut self, ext: ExtFunc) -> ExtId {
        if let Some(i) = self.externals.iter().position(|e| e.name == ext.name) {
            return ExtId::new(i);
        }
        let id = ExtId::new(self.externals.len());
        self.externals.push(ext);
        id
    }

    /// Shared access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// Iterates over `(FuncId, &Function)` pairs.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// Shared access to a global.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Shared access to an external declaration.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn external(&self, id: ExtId) -> &ExtFunc {
        &self.externals[id.index()]
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut m = Module::new("m");
        let f = m.push_function(Function::new("foo", Type::Void));
        assert_eq!(m.function(f).name, "foo");
        let (id, _) = m.function_by_name("foo").unwrap();
        assert_eq!(id, f);
        assert!(m.function_by_name("bar").is_none());
    }

    #[test]
    fn external_dedup() {
        let mut m = Module::new("m");
        let e1 = m.declare_external(ExtFunc {
            name: "print_i64".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
            variadic: false,
        });
        let e2 = m.declare_external(ExtFunc {
            name: "print_i64".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
            variadic: false,
        });
        assert_eq!(e1, e2);
        assert_eq!(m.externals.len(), 1);
    }

    #[test]
    fn global_sizes() {
        let g = Global {
            name: "g".into(),
            init: vec![
                GInit::Int {
                    value: 1,
                    ty: Type::I32,
                },
                GInit::Zero(4),
                GInit::FuncPtr {
                    func: FuncId(0),
                    addend: 12,
                },
            ],
            align: 8,
            exported: false,
        };
        assert_eq!(g.size(), 16);
        assert_eq!(Global::zeroed("z", 64).size(), 64);
    }
}
