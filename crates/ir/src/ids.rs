//! Index newtypes for IR entities.
//!
//! All IR containers are plain `Vec`s indexed by these ids; the newtypes keep
//! the different index spaces from being mixed up ([C-NEWTYPE]).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates the id from a raw `usize` index.
            ///
            /// # Panics
            /// Panics if `index` exceeds `u32::MAX`.
            pub fn new(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id index overflow");
                Self(index as u32)
            }

            /// Returns the raw index for container access.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a function within a [`crate::Module`].
    FuncId,
    "@f"
);
define_id!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
define_id!(
    /// Identifies a local (virtual register) within a [`crate::Function`].
    LocalId,
    "%"
);
define_id!(
    /// Identifies a global variable within a [`crate::Module`].
    GlobalId,
    "@g"
);
define_id!(
    /// Identifies an external function declaration within a [`crate::Module`].
    ExtId,
    "@e"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let b = BlockId::new(42);
        assert_eq!(b.index(), 42);
        assert_eq!(b, BlockId(42));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(format!("{}", LocalId(3)), "%3");
        assert_eq!(format!("{}", FuncId(1)), "@f1");
        assert_eq!(format!("{}", BlockId(0)), "bb0");
        assert_eq!(format!("{:?}", GlobalId(7)), "@g7");
        assert_eq!(format!("{}", ExtId(2)), "@e2");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(BlockId(1) < BlockId(2));
        assert!(LocalId(0) < LocalId(10));
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn new_rejects_overflow() {
        let _ = BlockId::new(u32::MAX as usize + 1);
    }
}
