//! Module and function verification.
//!
//! Every optimization and obfuscation pass must leave the module in a state
//! that passes [`verify_module`]; the test suites assert this after each
//! transformation.

use crate::function::Function;
use crate::ids::{BlockId, FuncId, LocalId};
use crate::inst::{Callee, CastKind, Inst, Operand, Term};
use crate::module::{GInit, Module};
use crate::types::Type;
use std::fmt;

/// A single verification failure.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Function in which the error occurred, if any.
    pub function: Option<String>,
    /// Block in which the error occurred, if any.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.block) {
            (Some(func), Some(b)) => write!(f, "in {func} at {b}: {}", self.message),
            (Some(func), None) => write!(f, "in {func}: {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

struct Checker<'m> {
    m: &'m Module,
    errors: Vec<VerifyError>,
    cur_fn: Option<String>,
    cur_bb: Option<BlockId>,
}

impl<'m> Checker<'m> {
    fn err(&mut self, message: impl Into<String>) {
        self.errors.push(VerifyError {
            function: self.cur_fn.clone(),
            block: self.cur_bb,
            message: message.into(),
        });
    }

    fn check_module(&mut self) {
        let mut names = std::collections::HashSet::new();
        for f in &self.m.functions {
            if !names.insert(f.name.as_str()) {
                self.err(format!("duplicate function name `{}`", f.name));
            }
        }
        for g in &self.m.globals {
            for init in &g.init {
                if let GInit::FuncPtr { func, .. } = init {
                    if func.index() >= self.m.functions.len() {
                        self.err(format!(
                            "global `{}` references out-of-range {func}",
                            g.name
                        ));
                    }
                }
            }
        }
        for (fi, f) in self.m.functions.iter().enumerate() {
            self.cur_fn = Some(f.name.clone());
            self.check_function(FuncId::new(fi), f);
            self.cur_fn = None;
        }
    }

    fn local_ty(&mut self, f: &Function, l: LocalId) -> Option<Type> {
        if l.index() >= f.locals.len() {
            self.err(format!("out-of-range local {l}"));
            None
        } else {
            Some(f.locals[l.index()])
        }
    }

    fn operand_ty(&mut self, f: &Function, o: &Operand) -> Option<Type> {
        match o {
            Operand::Local(l) => self.local_ty(f, *l),
            Operand::Const(c) => Some(c.ty()),
        }
    }

    fn expect_operand(&mut self, f: &Function, o: &Operand, want: Type, what: &str) {
        if let Some(t) = self.operand_ty(f, o) {
            if t != want {
                self.err(format!("{what} has type {t}, expected {want}"));
            }
        }
    }

    fn expect_local(&mut self, f: &Function, l: LocalId, want: Type, what: &str) {
        if let Some(t) = self.local_ty(f, l) {
            if t != want {
                self.err(format!("{what} {l} has type {t}, expected {want}"));
            }
        }
    }

    fn check_block_ref(&mut self, f: &Function, b: BlockId) {
        if b.index() >= f.blocks.len() {
            self.err(format!("out-of-range block target {b}"));
        }
    }

    fn check_callee_sig(
        &mut self,
        f: &Function,
        callee: &Callee,
        args: &[Operand],
        dst: Option<LocalId>,
        via_invoke: bool,
    ) {
        match callee {
            Callee::Direct(t) => {
                if t.index() >= self.m.functions.len() {
                    self.err(format!("call to out-of-range {t}"));
                    return;
                }
                let target = &self.m.functions[t.index()];
                let want = target.param_types().to_vec();
                let (tname, tret, tvariadic) =
                    (target.name.clone(), target.ret_ty, target.variadic);
                if !tvariadic && args.len() != want.len() {
                    self.err(format!(
                        "call to `{tname}` passes {} args, expected {}",
                        args.len(),
                        want.len()
                    ));
                } else if tvariadic && args.len() < want.len() {
                    self.err(format!(
                        "variadic call to `{tname}` passes {} args, needs at least {}",
                        args.len(),
                        want.len()
                    ));
                }
                for (i, (a, w)) in args.iter().zip(want.iter()).enumerate() {
                    if let Some(t) = self.operand_ty(f, a) {
                        if t != *w {
                            self.err(format!(
                                "arg {i} of call to `{tname}` has type {t}, expected {w}"
                            ));
                        }
                    }
                }
                match (dst, tret) {
                    (Some(d), Type::Void) => {
                        self.err(format!("void call to `{tname}` must not define {d}"))
                    }
                    (Some(d), rt) => self.expect_local(f, d, rt, "call result"),
                    (None, _) => {}
                }
            }
            Callee::Ext(e) => {
                if e.index() >= self.m.externals.len() {
                    self.err(format!("call to out-of-range external {e}"));
                    return;
                }
                let ext = &self.m.externals[e.index()];
                let (ename, eret, evariadic) = (ext.name.clone(), ext.ret_ty, ext.variadic);
                let want = ext.params.clone();
                if !evariadic && args.len() != want.len() {
                    self.err(format!(
                        "call to external `{ename}` passes {} args, expected {}",
                        args.len(),
                        want.len()
                    ));
                }
                for (i, (a, w)) in args.iter().zip(want.iter()).enumerate() {
                    if let Some(t) = self.operand_ty(f, a) {
                        if t != *w {
                            self.err(format!(
                                "arg {i} of call to external `{ename}` has type {t}, expected {w}"
                            ));
                        }
                    }
                }
                match (dst, eret) {
                    (Some(d), Type::Void) => {
                        self.err(format!("void external call `{ename}` must not define {d}"))
                    }
                    (Some(d), rt) => self.expect_local(f, d, rt, "external call result"),
                    (None, _) => {}
                }
            }
            Callee::Indirect(p) => {
                self.expect_operand(f, p, Type::Ptr, "indirect call target");
                // Indirect calls are unchecked beyond the pointer type:
                // the VM enforces arity dynamically (K&R-style).
                let _ = via_invoke;
                if let Some(d) = dst {
                    let _ = self.local_ty(f, d);
                }
            }
        }
    }

    fn check_function(&mut self, _id: FuncId, f: &Function) {
        let errs_at_entry = self.errors.len();
        if f.param_count as usize > f.locals.len() {
            self.err("param_count exceeds locals".to_string());
        }
        for (i, t) in f.param_types().iter().enumerate() {
            if *t == Type::Void {
                self.err(format!("param {i} has type void"));
            }
        }
        if f.blocks.is_empty() {
            self.err("function has no blocks".to_string());
            return;
        }
        if f.blocks[0].pad.is_some() {
            self.err("entry block must not be a landing pad".to_string());
        }

        // Landing pads may only be reached via invoke unwind edges.
        let mut pad_ok = vec![true; f.blocks.len()];
        for (_, block) in f.iter_blocks() {
            match &block.term {
                Term::Invoke { normal, unwind, .. } => {
                    self.check_block_ref(f, *normal);
                    self.check_block_ref(f, *unwind);
                    if unwind.index() < f.blocks.len() && !f.block(*unwind).is_pad() {
                        self.err(format!(
                            "invoke unwind target {unwind} is not a landing pad"
                        ));
                    }
                    if normal.index() < f.blocks.len() && f.block(*normal).is_pad() {
                        self.err(format!("invoke normal target {normal} is a landing pad"));
                    }
                }
                t => {
                    t.for_each_successor(|s| {
                        if s.index() < f.blocks.len() && f.block(s).is_pad() {
                            pad_ok[s.index()] = false;
                        }
                    });
                }
            }
        }
        for (b, block) in f.iter_blocks() {
            if block.is_pad() && !pad_ok[b.index()] {
                self.cur_bb = Some(b);
                self.err("landing pad reached through a non-invoke edge".to_string());
                self.cur_bb = None;
            }
        }

        for (b, block) in f.iter_blocks() {
            self.cur_bb = Some(b);
            if let Some(pad) = &block.pad {
                if let Some(d) = pad.dst {
                    self.expect_local(f, d, Type::I64, "landing-pad binding");
                }
            }
            for inst in &block.insts {
                self.check_inst(f, inst);
            }
            self.check_term(f, &block.term);
            self.cur_bb = None;
        }

        // Def-before-use for addresses, dominance-checked with a
        // reaching-defs fallback
        // ([`crate::analysis::dataflow::certainly_uninit_uses`]): a local
        // dereferenced in reachable code (load/store address, indirect
        // callee) must have at least one definition reaching it. Three
        // deliberate limits keep this sound for the IR's real programs:
        // KIR zero-initializes locals, so a maybe-uninit value read is
        // defined behavior (it reads zero) and stays legal; deep fusion's
        // ctrl-correlated block merging makes defs stop *dominating*
        // their uses while every dynamic path still executes them, so
        // only a use no def reaches on ANY path counts; and fission's
        // naive (non-data-flow-reduced) extraction passes never-defined
        // locals as call arguments on purpose (transporting the zero),
        // so only *address* positions — where the zero faults — are
        // errors. Runs only when the structural checks above are clean —
        // the CFG walk indexes successor blocks, which may be out of
        // range otherwise.
        if self.errors.len() == errs_at_entry {
            let cfg = crate::analysis::cfg::Cfg::compute(f);
            for v in crate::analysis::dataflow::certainly_uninit_uses(f, &cfg) {
                if !is_address_use(f, &v) {
                    continue;
                }
                self.cur_bb = Some(v.block);
                let site = match v.inst {
                    Some(i) => format!("inst {i}"),
                    None => "terminator".to_string(),
                };
                self.err(format!(
                    "local {} is dereferenced but no definition reaches the use at {site}",
                    v.local
                ));
                self.cur_bb = None;
            }
        }
    }

    fn check_inst(&mut self, f: &Function, inst: &Inst) {
        match inst {
            Inst::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                if op.is_float_op() != ty.is_float() {
                    self.err(format!("{} on mismatched class {ty}", op.mnemonic()));
                }
                if *ty == Type::Void || *ty == Type::Ptr {
                    self.err(format!("{} on invalid type {ty}", op.mnemonic()));
                }
                self.expect_operand(f, lhs, *ty, "lhs");
                self.expect_operand(f, rhs, *ty, "rhs");
                self.expect_local(f, *dst, *ty, "dst");
            }
            Inst::Un { op, ty, dst, src } => {
                let float = matches!(op, crate::inst::UnOp::FNeg);
                if float != ty.is_float() {
                    self.err(format!("{} on mismatched class {ty}", op.mnemonic()));
                }
                self.expect_operand(f, src, *ty, "src");
                self.expect_local(f, *dst, *ty, "dst");
            }
            Inst::Cmp {
                pred,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                if pred.is_float_pred() != ty.is_float() {
                    self.err(format!("cmp {} on mismatched class {ty}", pred.mnemonic()));
                }
                self.expect_operand(f, lhs, *ty, "lhs");
                self.expect_operand(f, rhs, *ty, "rhs");
                self.expect_local(f, *dst, Type::I1, "cmp dst");
            }
            Inst::Select {
                ty,
                dst,
                cond,
                on_true,
                on_false,
            } => {
                self.expect_operand(f, cond, Type::I1, "select cond");
                self.expect_operand(f, on_true, *ty, "select true arm");
                self.expect_operand(f, on_false, *ty, "select false arm");
                self.expect_local(f, *dst, *ty, "select dst");
            }
            Inst::Copy { ty, dst, src } => {
                self.expect_operand(f, src, *ty, "copy src");
                self.expect_local(f, *dst, *ty, "copy dst");
            }
            Inst::Cast {
                kind,
                dst,
                src,
                from,
                to,
            } => {
                self.expect_operand(f, src, *from, "cast src");
                self.expect_local(f, *dst, *to, "cast dst");
                let ok = match kind {
                    CastKind::Trunc => from.is_int() && to.is_int() && from.size() >= to.size(),
                    CastKind::ZExt | CastKind::SExt => {
                        from.is_int() && to.is_int() && from.size() <= to.size()
                    }
                    CastKind::FpToSi => from.is_float() && to.is_int(),
                    CastKind::SiToFp => from.is_int() && to.is_float(),
                    CastKind::FpTrunc => *from == Type::F64 && *to == Type::F32,
                    CastKind::FpExt => *from == Type::F32 && *to == Type::F64,
                    CastKind::PtrToInt => from.is_ptr() && *to == Type::I64,
                    CastKind::IntToPtr => *from == Type::I64 && to.is_ptr(),
                };
                if !ok {
                    self.err(format!("invalid cast {} : {from} -> {to}", kind.mnemonic()));
                }
            }
            Inst::Load { ty, dst, addr } => {
                if *ty == Type::Void {
                    self.err("load of void".to_string());
                }
                self.expect_operand(f, addr, Type::Ptr, "load addr");
                self.expect_local(f, *dst, *ty, "load dst");
            }
            Inst::Store { ty, addr, value } => {
                if *ty == Type::Void {
                    self.err("store of void".to_string());
                }
                self.expect_operand(f, addr, Type::Ptr, "store addr");
                self.expect_operand(f, value, *ty, "store value");
            }
            Inst::Alloca { dst, size, align } => {
                if *size == 0 {
                    self.err("alloca of zero size".to_string());
                }
                if !align.is_power_of_two() {
                    self.err(format!("alloca alignment {align} not a power of two"));
                }
                self.expect_local(f, *dst, Type::Ptr, "alloca dst");
            }
            Inst::PtrAdd { dst, base, offset } => {
                self.expect_operand(f, base, Type::Ptr, "ptradd base");
                self.expect_operand(f, offset, Type::I64, "ptradd offset");
                self.expect_local(f, *dst, Type::Ptr, "ptradd dst");
            }
            Inst::Call { dst, callee, args } => {
                self.check_callee_sig(f, callee, args, *dst, false);
            }
            Inst::FuncAddr { dst, func } => {
                if func.index() >= self.m.functions.len() {
                    self.err(format!("funcaddr of out-of-range {func}"));
                }
                self.expect_local(f, *dst, Type::Ptr, "funcaddr dst");
            }
            Inst::GlobalAddr { dst, global } => {
                if global.index() >= self.m.globals.len() {
                    self.err(format!("globaladdr of out-of-range {global}"));
                }
                self.expect_local(f, *dst, Type::Ptr, "globaladdr dst");
            }
        }
    }

    fn check_term(&mut self, f: &Function, term: &Term) {
        match term {
            Term::Jump(t) => self.check_block_ref(f, *t),
            Term::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                self.expect_operand(f, cond, Type::I1, "branch cond");
                self.check_block_ref(f, *then_bb);
                self.check_block_ref(f, *else_bb);
            }
            Term::Switch {
                ty,
                value,
                cases,
                default,
            } => {
                if !ty.is_int() {
                    self.err(format!("switch on non-integer type {ty}"));
                }
                self.expect_operand(f, value, *ty, "switch value");
                let mut seen = std::collections::HashSet::new();
                for (v, t) in cases {
                    if !seen.insert(*v) {
                        self.err(format!("duplicate switch case {v}"));
                    }
                    self.check_block_ref(f, *t);
                }
                self.check_block_ref(f, *default);
            }
            Term::Ret(v) => match (v, f.ret_ty) {
                (None, Type::Void) => {}
                (None, t) => self.err(format!("ret void in function returning {t}")),
                (Some(_), Type::Void) => self.err("ret value in void function".to_string()),
                (Some(op), t) => self.expect_operand(f, op, t, "ret value"),
            },
            Term::Invoke {
                dst, callee, args, ..
            } => {
                self.check_callee_sig(f, callee, args, *dst, true);
            }
            Term::Unreachable => {}
        }
    }
}

/// Verifies a whole module.
///
/// # Errors
/// Returns every problem found; an empty `Ok(())` means the module is
/// well-formed for the VM, the optimizer and the code generator.
/// True when the flagged use sits in an address position: a load/store
/// address or an indirect call/invoke target.
fn is_address_use(f: &Function, v: &crate::analysis::dataflow::UseBeforeInit) -> bool {
    let block = f.block(v.block);
    match v.inst {
        Some(i) => match &block.insts[i] {
            Inst::Load { addr, .. } | Inst::Store { addr, .. } => addr.as_local() == Some(v.local),
            Inst::Call {
                callee: Callee::Indirect(p),
                ..
            } => p.as_local() == Some(v.local),
            _ => false,
        },
        None => match &block.term {
            Term::Invoke {
                callee: Callee::Indirect(p),
                ..
            } => p.as_local() == Some(v.local),
            _ => false,
        },
    }
}

pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut c = Checker {
        m,
        errors: Vec::new(),
        cur_fn: None,
        cur_bb: None,
    };
    c.check_module();
    if c.errors.is_empty() {
        Ok(())
    } else {
        Err(c.errors)
    }
}

/// Verifies a single function against its module context.
///
/// # Errors
/// Returns the problems found within `f`.
pub fn verify_function(m: &Module, id: FuncId) -> Result<(), Vec<VerifyError>> {
    let f = m.function(id);
    let mut c = Checker {
        m,
        errors: Vec::new(),
        cur_fn: Some(f.name.clone()),
        cur_bb: None,
    };
    c.check_function(id, f);
    if c.errors.is_empty() {
        Ok(())
    } else {
        Err(c.errors)
    }
}

/// Convenience used by tests: panics with a readable report when invalid.
///
/// # Panics
/// Panics if the module fails verification.
pub fn assert_valid(m: &Module) {
    if let Err(errs) = verify_module(m) {
        let mut s = String::new();
        for e in &errs {
            s.push_str(&format!("  - {e}\n"));
        }
        panic!("module `{}` failed verification:\n{s}", m.name);
    }
}

// Re-exported for pass writers that want linkage checks.
pub use crate::function::Linkage as _Linkage;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    #[test]
    fn valid_module_passes() {
        let mut m = Module::new("ok");
        let mut fb = FunctionBuilder::new("f", Type::I32);
        let p = fb.add_param(Type::I32);
        let r = fb.bin(
            BinOp::Add,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 1),
        );
        fb.ret(Some(Operand::local(r)));
        m.push_function(fb.finish());
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn type_mismatch_caught() {
        let mut m = Module::new("bad");
        let mut fb = FunctionBuilder::new("f", Type::I32);
        let p = fb.add_param(Type::I64); // wrong width used below
        let r = fb.bin(
            BinOp::Add,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 1),
        );
        fb.ret(Some(Operand::local(r)));
        m.push_function(fb.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("expected i32")),
            "{errs:?}"
        );
    }

    #[test]
    fn ret_type_checked() {
        let mut m = Module::new("bad");
        let mut fb = FunctionBuilder::new("f", Type::I32);
        fb.ret(None);
        m.push_function(fb.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("ret void")),
            "{errs:?}"
        );
    }

    #[test]
    fn call_arity_checked() {
        let mut m = Module::new("bad");
        let mut callee = FunctionBuilder::new("callee", Type::Void);
        callee.add_param(Type::I32);
        callee.ret(None);
        let cid = m.push_function(callee.finish());
        let mut caller = FunctionBuilder::new("caller", Type::Void);
        caller.call(cid, Type::Void, vec![]);
        caller.ret(None);
        m.push_function(caller.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("passes 0 args")),
            "{errs:?}"
        );
    }

    #[test]
    fn duplicate_names_caught() {
        let mut m = Module::new("dup");
        let mut f1 = FunctionBuilder::new("same", Type::Void);
        f1.ret(None);
        m.push_function(f1.finish());
        let mut f2 = FunctionBuilder::new("same", Type::Void);
        f2.ret(None);
        m.push_function(f2.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("duplicate")),
            "{errs:?}"
        );
    }

    #[test]
    fn pad_edges_checked() {
        let mut m = Module::new("eh");
        let mut fb = FunctionBuilder::new("f", Type::Void);
        let pad = fb.new_pad_block(None);
        fb.jump(pad); // illegal: jump into a pad
        fb.switch_to(pad);
        fb.ret(None);
        m.push_function(fb.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("non-invoke edge")),
            "{errs:?}"
        );
    }

    #[test]
    fn invalid_cast_caught() {
        let mut m = Module::new("c");
        let mut fb = FunctionBuilder::new("f", Type::Void);
        let p = fb.add_param(Type::I64);
        let _bad = fb.cast(CastKind::Trunc, Operand::local(p), Type::I64, Type::F32);
        fb.ret(None);
        m.push_function(fb.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("invalid cast")),
            "{errs:?}"
        );
    }

    #[test]
    fn duplicate_switch_cases_caught() {
        let mut m = Module::new("s");
        let mut fb = FunctionBuilder::new("f", Type::Void);
        let p = fb.add_param(Type::I32);
        let a = fb.new_block();
        fb.switch(Type::I32, Operand::local(p), vec![(1, a), (1, a)], a);
        fb.switch_to(a);
        fb.ret(None);
        m.push_function(fb.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("duplicate switch case")),
            "{errs:?}"
        );
    }
}
