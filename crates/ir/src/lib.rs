//! # khaos-ir — KIR, the compiler IR substrate
//!
//! KIR is a typed, register-based intermediate representation modelled on the
//! subset of LLVM IR that the Khaos obfuscator (CGO 2023) manipulates:
//!
//! * functions made of basic blocks with explicit terminators,
//! * typed virtual registers ("locals") plus explicit [`Inst::Alloca`] stack
//!   slots for address-taken data,
//! * direct, external and indirect calls, function-address constants and
//!   globals with function-pointer initialisers (relocations with addends),
//! * `invoke`-style exception edges and `setjmp`/`longjmp` intrinsics.
//!
//! Unlike LLVM, KIR is *not* SSA: a local may be assigned multiple times.
//! This mirrors the "demote to memory / registers" representation LLVM's
//! `CodeExtractor` works on and keeps the fission/fusion transformations
//! faithful while avoiding phi-node rewiring machinery.
//!
//! The crate also hosts the analyses both the optimizer and the obfuscator
//! need: CFG utilities, dominator trees, natural loops, static block
//! frequencies, liveness and the call graph.
//!
//! ```
//! use khaos_ir::builder::FunctionBuilder;
//! use khaos_ir::{Module, Type, Operand, BinOp};
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("add1", Type::I64);
//! let x = b.add_param(Type::I64);
//! let one = Operand::const_int(Type::I64, 1);
//! let r = b.bin(BinOp::Add, Type::I64, Operand::local(x), one);
//! b.ret(Some(Operand::local(r)));
//! m.push_function(b.finish());
//! assert!(khaos_ir::verify::verify_module(&m).is_ok());
//! ```

pub mod analysis;
pub mod builder;
pub mod constant;
pub mod function;
pub mod ids;
pub mod inst;
pub mod module;
pub mod parser;
pub mod printer;
pub mod rewrite;
pub mod types;
pub mod verify;

pub use constant::Const;
pub use function::{Block, Function, Linkage, PadInfo, ProvKind, Provenance};
pub use ids::{BlockId, ExtId, FuncId, GlobalId, LocalId};
pub use inst::{BinOp, Callee, CastKind, CmpPred, Inst, Operand, Term, UnOp};
pub use module::{ExtFunc, GInit, Global, Module};
pub use types::Type;

pub use analysis::callgraph::CallGraph;
pub use analysis::cfg::Cfg;
pub use analysis::dom::DomTree;
pub use analysis::freq::BlockFreq;
pub use analysis::liveness::Liveness;
pub use analysis::loops::LoopInfo;
