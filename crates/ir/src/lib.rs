//! # khaos-ir — KIR, the compiler IR substrate
//!
//! KIR is a typed, register-based intermediate representation modelled on the
//! subset of LLVM IR that the Khaos obfuscator (CGO 2023) manipulates:
//!
//! * functions made of basic blocks with explicit terminators,
//! * typed virtual registers ("locals") plus explicit [`Inst::Alloca`] stack
//!   slots for address-taken data,
//! * direct, external and indirect calls, function-address constants and
//!   globals with function-pointer initialisers (relocations with addends),
//! * `invoke`-style exception edges and `setjmp`/`longjmp` intrinsics.
//!
//! Unlike LLVM, KIR is *not* SSA: a local may be assigned multiple times.
//! This mirrors the "demote to memory / registers" representation LLVM's
//! `CodeExtractor` works on and keeps the fission/fusion transformations
//! faithful while avoiding phi-node rewiring machinery.
//!
//! The crate also hosts the analyses both the optimizer and the obfuscator
//! need: CFG utilities, dominator trees, natural loops, static block
//! frequencies, liveness and the call graph.
//!
//! ## The dataflow framework
//!
//! [`analysis::dataflow`] provides a generic monotone dataflow solver the
//! concrete analyses are instances of. An [`analysis::dataflow::Analysis`]
//! supplies a lattice of per-block states and the solver
//! ([`analysis::dataflow::solve`]) iterates a worklist seeded in
//! reverse-postorder (postorder for backward problems) until a fixed
//! point. The contract an instance must meet:
//!
//! * **Lattice.** `join` must be commutative, associative and idempotent;
//!   `top` is the identity of `join` (full set + intersection for a
//!   *must* analysis, empty set + union for a *may* analysis).
//! * **Monotonicity.** `transfer` and `edge` must be monotone: a larger
//!   input state may never produce a smaller output state.
//! * **Finite height.** Every ascending chain of states must be finite —
//!   with the bitset states used here, bounded by the local count.
//!
//! Under that contract the solver terminates with the unique least
//! fixed point; each block is re-processed only when a predecessor's
//! (successor's, for backward) state changes, so convergence takes
//! `O(height × edges)` joins in the worst case and one pass over an
//! acyclic CFG. Shipped instances: reaching definitions, definite
//! initialisation (and its certainly-uninitialised refinement used by the
//! verifier), live variables, and dead-assignment/unreachable-block
//! detection.
//!
//! ## The semantic auditor
//!
//! [`audit`] distills a module into per-root observable-behavior
//! summaries (reachable external calls, global read/write/escape sets,
//! exported signatures) and diffs summaries taken before and after a
//! transformation, flagging dropped effects as structured
//! [`audit::AuditDiagnostic`]s — the static net that catches semantic
//! miscompiles (dropped stores, retargeted calls, orphaned effectful
//! blocks) which structural verification cannot see.
//!
//! ```
//! use khaos_ir::builder::FunctionBuilder;
//! use khaos_ir::{Module, Type, Operand, BinOp};
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("add1", Type::I64);
//! let x = b.add_param(Type::I64);
//! let one = Operand::const_int(Type::I64, 1);
//! let r = b.bin(BinOp::Add, Type::I64, Operand::local(x), one);
//! b.ret(Some(Operand::local(r)));
//! m.push_function(b.finish());
//! assert!(khaos_ir::verify::verify_module(&m).is_ok());
//! ```

pub mod analysis;
pub mod audit;
pub mod builder;
pub mod constant;
pub mod function;
pub mod ids;
pub mod inst;
pub mod module;
pub mod parser;
pub mod printer;
pub mod rewrite;
pub mod types;
pub mod verify;

pub use constant::Const;
pub use function::{Block, Function, Linkage, PadInfo, ProvKind, Provenance};
pub use ids::{BlockId, ExtId, FuncId, GlobalId, LocalId};
pub use inst::{BinOp, Callee, CastKind, CmpPred, Inst, Operand, Term, UnOp};
pub use module::{ExtFunc, GInit, Global, Module};
pub use types::Type;

pub use analysis::callgraph::CallGraph;
pub use analysis::cfg::Cfg;
pub use analysis::dom::DomTree;
pub use analysis::freq::BlockFreq;
pub use analysis::liveness::Liveness;
pub use analysis::loops::LoopInfo;
pub use audit::{AuditDiagnostic, AuditKind, ModuleSummary};
