//! The KIR type system.
//!
//! The type lattice is deliberately small — the shapes the Khaos primitives
//! care about are integer widths, float widths and pointers. Aggregates are
//! memory blobs accessed through pointer arithmetic, as in post-SROA LLVM IR.

use std::fmt;

/// A first-class KIR value type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// No value; only valid as a function return type.
    Void,
    /// 1-bit boolean (comparison results, branch conditions).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Untyped data or code pointer (64-bit).
    Ptr,
}

impl Type {
    /// All value types (everything except [`Type::Void`]).
    pub const VALUES: [Type; 8] = [
        Type::I1,
        Type::I8,
        Type::I16,
        Type::I32,
        Type::I64,
        Type::F32,
        Type::F64,
        Type::Ptr,
    ];

    /// Returns `true` for the integer types (including `I1`).
    pub fn is_int(self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64
        )
    }

    /// Returns `true` for the float types.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Returns `true` for [`Type::Ptr`].
    pub fn is_ptr(self) -> bool {
        self == Type::Ptr
    }

    /// Size of a value of this type in bytes (0 for `Void`).
    pub fn size(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
        }
    }

    /// Bit width for integer types; `None` otherwise.
    pub fn bits(self) -> Option<u32> {
        match self {
            Type::I1 => Some(1),
            Type::I8 => Some(8),
            Type::I16 => Some(16),
            Type::I32 => Some(32),
            Type::I64 => Some(64),
            _ => None,
        }
    }

    /// Lossless-convertibility compatibility relation used by the fusion
    /// primitive when selecting functions and compressing parameter lists.
    ///
    /// Two types are *compatible* when a value of either can be carried in
    /// the [`Type::merged`] type and recovered without losing precision:
    /// integers are compatible with integers, floats with floats, pointers
    /// with pointers. Integer/float mixes are incompatible (the paper's
    /// example) and pointers never mix with arithmetic types.
    pub fn compatible(self, other: Type) -> bool {
        (self.is_int() && other.is_int())
            || (self.is_float() && other.is_float())
            || (self.is_ptr() && other.is_ptr())
    }

    /// The carrier type for two [compatible](Type::compatible) types: the
    /// wider of the two.
    ///
    /// Returns `None` when the types are incompatible.
    pub fn merged(self, other: Type) -> Option<Type> {
        if !self.compatible(other) {
            return None;
        }
        Some(if self.size() >= other.size() {
            self
        } else {
            other
        })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Void => "void",
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Type::I32.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F64.is_float());
        assert!(Type::Ptr.is_ptr());
        assert!(!Type::Void.is_int());
    }

    #[test]
    fn sizes() {
        assert_eq!(Type::Void.size(), 0);
        assert_eq!(Type::I1.size(), 1);
        assert_eq!(Type::I16.size(), 2);
        assert_eq!(Type::F32.size(), 4);
        assert_eq!(Type::Ptr.size(), 8);
    }

    #[test]
    fn compatibility_is_class_based() {
        assert!(Type::I8.compatible(Type::I64));
        assert!(Type::F32.compatible(Type::F64));
        assert!(Type::Ptr.compatible(Type::Ptr));
        assert!(
            !Type::I32.compatible(Type::F32),
            "int/float loses precision"
        );
        assert!(!Type::Ptr.compatible(Type::I64));
        assert!(!Type::Void.compatible(Type::Void));
    }

    #[test]
    fn merged_picks_wider() {
        assert_eq!(Type::I8.merged(Type::I32), Some(Type::I32));
        assert_eq!(Type::I64.merged(Type::I16), Some(Type::I64));
        assert_eq!(Type::F32.merged(Type::F64), Some(Type::F64));
        assert_eq!(Type::I32.merged(Type::F64), None);
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in Type::VALUES {
            for b in Type::VALUES {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn display_roundtrips_names() {
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::Void.to_string(), "void");
        assert_eq!(Type::Ptr.to_string(), "ptr");
    }
}
