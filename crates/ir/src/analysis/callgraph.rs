//! Module call graph and address-taken analysis.
//!
//! Fusion needs: (a) the *direct calling relationship* between candidate
//! pairs (such pairs are excluded, §3.3.1); (b) which functions have their
//! address taken (those need the tagged-pointer treatment); (c) which
//! function addresses *escape* the module (those need trampolines).

use crate::ids::FuncId;
use crate::inst::{Callee, Inst, Term};
use crate::module::{GInit, Module};

/// Call graph facts for a module.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// `callees[f]` = functions directly called by `f` (deduplicated).
    callees: Vec<Vec<FuncId>>,
    /// `callers[f]` = functions that directly call `f` (deduplicated).
    callers: Vec<Vec<FuncId>>,
    /// Functions whose address is taken by an instruction or stored in a
    /// global initialiser.
    address_taken: Vec<bool>,
    /// Functions whose address may leave the module: passed to an external
    /// function, stored in an exported global, or belonging to an exported
    /// function (callable by name from outside).
    escaping: Vec<bool>,
    /// Functions containing at least one indirect call.
    has_indirect_call: Vec<bool>,
}

#[allow(clippy::too_many_arguments)]
fn record_call(
    fi: usize,
    callee: &Callee,
    args: &[crate::inst::Operand],
    fn_locals: &[(crate::ids::LocalId, FuncId)],
    callees: &mut [Vec<FuncId>],
    callers: &mut [Vec<FuncId>],
    escaping: &mut [bool],
    has_indirect_call: &mut [bool],
) {
    match callee {
        Callee::Direct(t) => {
            if !callees[fi].contains(t) {
                callees[fi].push(*t);
            }
            if !callers[t.index()].contains(&FuncId::new(fi)) {
                callers[t.index()].push(FuncId::new(fi));
            }
        }
        Callee::Indirect(_) => has_indirect_call[fi] = true,
        Callee::Ext(_) => {
            // Function pointers passed to externals escape.
            for a in args {
                if let Some(l) = a.as_local() {
                    if let Some((_, func)) = fn_locals.iter().find(|(fl, _)| *fl == l) {
                        escaping[func.index()] = true;
                    }
                }
            }
        }
    }
}

impl CallGraph {
    /// Computes the call graph for `m`.
    pub fn compute(m: &Module) -> Self {
        let n = m.functions.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        let mut address_taken = vec![false; n];
        let mut escaping = vec![false; n];
        let mut has_indirect_call = vec![false; n];

        for (fi, f) in m.functions.iter().enumerate() {
            if f.linkage == crate::function::Linkage::Exported {
                escaping[fi] = true;
            }
            for block in &f.blocks {
                // Track locals that hold function addresses within this
                // block (cheap, flow-insensitive-per-block escape check).
                let mut fn_locals: Vec<(crate::ids::LocalId, FuncId)> = Vec::new();
                for inst in &block.insts {
                    match inst {
                        Inst::FuncAddr { dst, func } => {
                            address_taken[func.index()] = true;
                            fn_locals.push((*dst, *func));
                        }
                        Inst::Call { callee, args, .. } => record_call(
                            fi,
                            callee,
                            args,
                            &fn_locals,
                            &mut callees,
                            &mut callers,
                            &mut escaping,
                            &mut has_indirect_call,
                        ),
                        _ => {}
                    }
                }
                if let Term::Invoke { callee, args, .. } = &block.term {
                    record_call(
                        fi,
                        callee,
                        args,
                        &fn_locals,
                        &mut callees,
                        &mut callers,
                        &mut escaping,
                        &mut has_indirect_call,
                    );
                }
            }
        }

        for g in &m.globals {
            for init in &g.init {
                if let GInit::FuncPtr { func, .. } = init {
                    address_taken[func.index()] = true;
                    if g.exported {
                        escaping[func.index()] = true;
                    }
                }
            }
        }

        CallGraph {
            callees,
            callers,
            address_taken,
            escaping,
            has_indirect_call,
        }
    }

    /// Functions directly called by `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Functions that directly call `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// True if `a` directly calls `b` or `b` directly calls `a`.
    pub fn directly_related(&self, a: FuncId, b: FuncId) -> bool {
        self.callees[a.index()].contains(&b) || self.callees[b.index()].contains(&a)
    }

    /// True if `f`'s address is taken anywhere in the module.
    pub fn is_address_taken(&self, f: FuncId) -> bool {
        self.address_taken[f.index()]
    }

    /// True if `f`'s address (or name) may escape the module.
    pub fn escapes(&self, f: FuncId) -> bool {
        self.escaping[f.index()]
    }

    /// True if `f` contains at least one indirect call site.
    pub fn has_indirect_call(&self, f: FuncId) -> bool {
        self.has_indirect_call[f.index()]
    }

    /// True if `f` calls itself directly.
    pub fn is_self_recursive(&self, f: FuncId) -> bool {
        self.callees[f.index()].contains(&f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Linkage;
    use crate::module::{ExtFunc, Global};
    use crate::types::Type;

    fn module_with_calls() -> Module {
        let mut m = Module::new("cg");
        // f0 calls f1 directly; f1 takes f2's address and passes it to ext.
        let ext = m.declare_external(ExtFunc {
            name: "sink".into(),
            params: vec![Type::Ptr],
            ret_ty: Type::Void,
            variadic: false,
        });

        let mut b2 = FunctionBuilder::new("leaf", Type::Void);
        b2.ret(None);
        let f2 = m.push_function(b2.finish());

        let mut b1 = FunctionBuilder::new("mid", Type::Void);
        let p = b1.funcaddr(f2);
        b1.call_ext(ext, Type::Void, vec![crate::inst::Operand::local(p)]);
        b1.call_indirect(crate::inst::Operand::local(p), Type::Void, vec![]);
        b1.ret(None);
        let f1 = m.push_function(b1.finish());

        let mut b0 = FunctionBuilder::new("root", Type::Void);
        b0.set_exported();
        b0.call(f1, Type::Void, vec![]);
        b0.ret(None);
        m.push_function(b0.finish());
        m
    }

    #[test]
    fn direct_edges() {
        let m = module_with_calls();
        let cg = CallGraph::compute(&m);
        let (root, _) = m.function_by_name("root").unwrap();
        let (mid, _) = m.function_by_name("mid").unwrap();
        let (leaf, _) = m.function_by_name("leaf").unwrap();
        assert_eq!(cg.callees(root), &[mid]);
        assert_eq!(cg.callers(mid), &[root]);
        assert!(cg.directly_related(root, mid));
        assert!(!cg.directly_related(root, leaf));
    }

    #[test]
    fn address_taken_and_escape() {
        let m = module_with_calls();
        let cg = CallGraph::compute(&m);
        let (root, _) = m.function_by_name("root").unwrap();
        let (mid, _) = m.function_by_name("mid").unwrap();
        let (leaf, _) = m.function_by_name("leaf").unwrap();
        assert!(cg.is_address_taken(leaf));
        assert!(!cg.is_address_taken(mid));
        assert!(cg.escapes(leaf), "passed to external sink");
        assert!(cg.escapes(root), "exported linkage");
        assert!(!cg.escapes(mid));
        assert!(cg.has_indirect_call(mid));
        assert!(!cg.has_indirect_call(root));
    }

    #[test]
    fn global_funcptr_is_address_taken() {
        let mut m = Module::new("g");
        let mut fb = FunctionBuilder::new("target", Type::Void);
        fb.ret(None);
        let f = m.push_function(fb.finish());
        m.push_global(Global {
            name: "table".into(),
            init: vec![GInit::FuncPtr { func: f, addend: 0 }],
            align: 8,
            exported: true,
        });
        let cg = CallGraph::compute(&m);
        assert!(cg.is_address_taken(f));
        assert!(cg.escapes(f), "stored in exported global");
        assert_eq!(m.function(f).linkage, Linkage::Internal);
    }

    #[test]
    fn self_recursion_detected() {
        let mut m = Module::new("r");
        let mut fb = FunctionBuilder::new("rec", Type::Void);
        fb.ret(None);
        let f = m.push_function(fb.finish());
        // Patch in a self call.
        let fmut = m.function_mut(f);
        fmut.blocks[0].insts.push(Inst::Call {
            dst: None,
            callee: Callee::Direct(f),
            args: vec![],
        });
        let cg = CallGraph::compute(&m);
        assert!(cg.is_self_recursive(f));
    }
}
