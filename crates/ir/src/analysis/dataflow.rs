//! A generic monotone dataflow framework over the CFG.
//!
//! The framework solves forward and backward dataflow problems with a
//! worklist seeded in reverse postorder (the order that converges fastest
//! for reducible flow graphs in either direction). An analysis supplies a
//! lattice — a [`Analysis::State`] with a [`Analysis::join`], a
//! [`Analysis::top`] element and a [`Analysis::boundary`] value — plus a
//! per-block [`Analysis::transfer`] function and an optional per-edge
//! refinement ([`Analysis::edge`], used for facts that hold on one CFG
//! edge only, such as an invoke result existing only on the normal edge).
//!
//! **Lattice contract.** `join` must be commutative, associative and
//! idempotent; `transfer` and `edge` must be monotone with respect to the
//! join order; and the state space must have finite height. Under that
//! contract [`solve`] terminates at the unique least (for may-problems) or
//! greatest (for must-problems, where `top` is the full set and `join` is
//! intersection) fixpoint. All states here are bitsets over locals or def
//! sites, so height is bounded by the function size and every solve is a
//! handful of passes in practice ([`Solution::iterations`] records the
//! exact block-visit count).
//!
//! On top of the framework this module provides the concrete instances the
//! semantic auditor ([`crate::audit`]), the verifier and `khaos-lint`
//! share: [`ReachingDefs`], [`DefiniteInit`] (use-before-initialization),
//! [`LiveVariables`] (the framework form of [`crate::Liveness`]),
//! [`dead_assignments`], [`unreachable_blocks`]/[`executable_blocks`], and
//! the dominance-checked def-before-use pass
//! ([`def_before_use_violations`]) built on [`crate::DomTree`].

use crate::analysis::cfg::Cfg;
use crate::analysis::dom::DomTree;
use crate::analysis::liveness::LocalSet;
use crate::function::Function;
use crate::ids::{BlockId, LocalId};
use crate::inst::{Operand, Term};
use std::collections::VecDeque;

/// Which way facts propagate through the CFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors (entry seeds the solve).
    Forward,
    /// Facts flow from successors to predecessors (exits seed the solve).
    Backward,
}

/// One monotone dataflow problem (see the module docs for the lattice
/// contract).
pub trait Analysis {
    /// The lattice element attached to each block boundary.
    type State: Clone + PartialEq;

    /// The propagation direction.
    fn direction(&self) -> Direction;

    /// The state at the flow boundary: function entry for forward
    /// problems, every exit block for backward problems.
    fn boundary(&self, f: &Function) -> Self::State;

    /// The optimistic initial state of interior blocks (the lattice top:
    /// the full set for intersection joins, the empty set for unions).
    fn top(&self, f: &Function) -> Self::State;

    /// Merges `other` into `into` (the lattice join).
    fn join(&self, into: &mut Self::State, other: &Self::State);

    /// Applies block `b`'s effect to `state` in place (in state → out
    /// state for forward problems, out state → in state for backward).
    fn transfer(&self, f: &Function, b: BlockId, state: &mut Self::State);

    /// Refines the state crossing the CFG edge `from → to` (applied to a
    /// copy of the source state before joining, in both directions).
    /// Default: no refinement.
    fn edge(&self, _f: &Function, _from: BlockId, _to: BlockId, _state: &mut Self::State) {}
}

/// The fixpoint of a dataflow solve: per-block in/out states.
///
/// Unreachable blocks keep their [`Analysis::top`] state — callers that
/// walk results should restrict themselves to [`Cfg::rpo`].
#[derive(Clone, Debug)]
pub struct Solution<S> {
    /// State at each block's entry.
    pub block_in: Vec<S>,
    /// State at each block's exit.
    pub block_out: Vec<S>,
    /// Number of block visits the worklist performed before converging.
    pub iterations: usize,
}

/// Runs `a` over `f` to its fixpoint with a worklist seeded in reverse
/// postorder (forward) or postorder (backward).
pub fn solve<A: Analysis>(a: &A, f: &Function, cfg: &Cfg) -> Solution<A::State> {
    match a.direction() {
        Direction::Forward => solve_forward(a, f, cfg),
        Direction::Backward => solve_backward(a, f, cfg),
    }
}

fn solve_forward<A: Analysis>(a: &A, f: &Function, cfg: &Cfg) -> Solution<A::State> {
    let n = f.blocks.len();
    let mut block_in: Vec<A::State> = (0..n).map(|_| a.top(f)).collect();
    let mut block_out: Vec<A::State> = (0..n).map(|_| a.top(f)).collect();
    let mut queue: VecDeque<BlockId> = cfg.rpo().iter().copied().collect();
    let mut queued = vec![false; n];
    for &b in cfg.rpo() {
        queued[b.index()] = true;
    }
    let mut iterations = 0;
    while let Some(b) = queue.pop_front() {
        queued[b.index()] = false;
        iterations += 1;
        let bi = b.index();
        let mut acc: Option<A::State> = if b == f.entry() {
            Some(a.boundary(f))
        } else {
            None
        };
        for &p in cfg.preds(b) {
            if !cfg.is_reachable(p) {
                continue;
            }
            let mut s = block_out[p.index()].clone();
            a.edge(f, p, b, &mut s);
            match &mut acc {
                None => acc = Some(s),
                Some(x) => a.join(x, &s),
            }
        }
        let inn = acc.unwrap_or_else(|| a.boundary(f));
        let mut out = inn.clone();
        a.transfer(f, b, &mut out);
        block_in[bi] = inn;
        if out != block_out[bi] {
            block_out[bi] = out;
            f.block(b).term.for_each_successor(|s| {
                if cfg.is_reachable(s) && !queued[s.index()] {
                    queued[s.index()] = true;
                    queue.push_back(s);
                }
            });
        }
    }
    Solution {
        block_in,
        block_out,
        iterations,
    }
}

fn solve_backward<A: Analysis>(a: &A, f: &Function, cfg: &Cfg) -> Solution<A::State> {
    let n = f.blocks.len();
    let mut block_in: Vec<A::State> = (0..n).map(|_| a.top(f)).collect();
    let mut block_out: Vec<A::State> = (0..n).map(|_| a.top(f)).collect();
    let mut queue: VecDeque<BlockId> = cfg.rpo().iter().rev().copied().collect();
    let mut queued = vec![false; n];
    for &b in cfg.rpo() {
        queued[b.index()] = true;
    }
    let mut iterations = 0;
    while let Some(b) = queue.pop_front() {
        queued[b.index()] = false;
        iterations += 1;
        let bi = b.index();
        let mut acc: Option<A::State> = None;
        f.block(b).term.for_each_successor(|s| {
            let mut st = block_in[s.index()].clone();
            a.edge(f, b, s, &mut st);
            match &mut acc {
                None => acc = Some(st),
                Some(x) => a.join(x, &st),
            }
        });
        let out = acc.unwrap_or_else(|| a.boundary(f));
        let mut inn = out.clone();
        a.transfer(f, b, &mut inn);
        block_out[bi] = out;
        if inn != block_in[bi] {
            block_in[bi] = inn;
            for &p in cfg.preds(b) {
                if cfg.is_reachable(p) && !queued[p.index()] {
                    queued[p.index()] = true;
                    queue.push_back(p);
                }
            }
        }
    }
    Solution {
        block_in,
        block_out,
        iterations,
    }
}

// ---------------------------------------------------------------------------
// Definite assignment (use-before-initialization).
// ---------------------------------------------------------------------------

/// Forward must-analysis: the set of locals definitely assigned on every
/// path from the entry. Parameters are assigned at the boundary; a landing
/// pad's binding is assigned at the pad's top; an invoke result is
/// assigned on the normal edge only (the [`Analysis::edge`] hook).
pub struct DefiniteInit;

impl Analysis for DefiniteInit {
    type State = LocalSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, f: &Function) -> LocalSet {
        let mut s = LocalSet::new(f.locals.len());
        for p in f.params() {
            s.insert(p);
        }
        s
    }

    fn top(&self, f: &Function) -> LocalSet {
        LocalSet::full(f.locals.len())
    }

    fn join(&self, into: &mut LocalSet, other: &LocalSet) {
        into.intersect_with(other);
    }

    fn transfer(&self, f: &Function, b: BlockId, state: &mut LocalSet) {
        let block = f.block(b);
        if let Some(pad) = &block.pad {
            if let Some(d) = pad.dst {
                state.insert(d);
            }
        }
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                state.insert(d);
            }
        }
    }

    fn edge(&self, f: &Function, from: BlockId, to: BlockId, state: &mut LocalSet) {
        if let Term::Invoke {
            dst: Some(d),
            normal,
            ..
        } = &f.block(from).term
        {
            if *normal == to {
                state.insert(*d);
            }
        }
    }
}

/// A read of a local that some entry path reaches before any assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UseBeforeInit {
    /// Block containing the use.
    pub block: BlockId,
    /// Instruction index within the block, or `None` for the terminator.
    pub inst: Option<usize>,
    /// The local read.
    pub local: LocalId,
}

/// Every use of a possibly-uninitialized local in the reachable region,
/// judged by the [`DefiniteInit`] must-analysis.
pub fn use_before_init(f: &Function, cfg: &Cfg) -> Vec<UseBeforeInit> {
    let sol = solve(&DefiniteInit, f, cfg);
    let mut out = Vec::new();
    for &b in cfg.rpo() {
        let mut assigned = sol.block_in[b.index()].clone();
        let block = f.block(b);
        if let Some(pad) = &block.pad {
            if let Some(d) = pad.dst {
                assigned.insert(d);
            }
        }
        for (i, inst) in block.insts.iter().enumerate() {
            inst.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    if !assigned.contains(l) {
                        out.push(UseBeforeInit {
                            block: b,
                            inst: Some(i),
                            local: l,
                        });
                    }
                }
            });
            if let Some(d) = inst.def() {
                assigned.insert(d);
            }
        }
        block.term.for_each_use(|o| {
            if let Some(l) = o.as_local() {
                if !assigned.contains(l) {
                    out.push(UseBeforeInit {
                        block: b,
                        inst: None,
                        local: l,
                    });
                }
            }
        });
    }
    out
}

/// The dominance-checked def-before-use pass the verifier runs.
///
/// Fast path: a use is accepted when an assignment appears earlier in the
/// same block, or when some block containing an assignment *strictly
/// dominates* the use's block ([`DomTree`]) — every entry path then
/// executes the def before the use. Only when a use survives that check is
/// the [`DefiniteInit`] dataflow consulted: its intersection join also
/// accepts the legal non-SSA diamond (a local assigned on *every* incoming
/// path with no single dominating definition, the shape `mem2reg`
/// produces at joins). Uses failing both checks are returned.
pub fn def_before_use_violations(f: &Function, cfg: &Cfg) -> Vec<UseBeforeInit> {
    if dominance_covers_all_uses(f, cfg) {
        return Vec::new();
    }
    use_before_init(f, cfg)
}

/// True if every use in the reachable region is covered by a same-block
/// earlier def or a strictly dominating def block (the cheap sound filter
/// of [`def_before_use_violations`]).
fn dominance_covers_all_uses(f: &Function, cfg: &Cfg) -> bool {
    let nl = f.locals.len();
    // def_blocks[l]: blocks whose execution guarantees l is assigned on
    // exit — including the normal successor of a defining invoke.
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); nl];
    for &b in cfg.rpo() {
        let block = f.block(b);
        if let Some(pad) = &block.pad {
            if let Some(d) = pad.dst {
                def_blocks[d.index()].push(b);
            }
        }
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                if def_blocks[d.index()].last() != Some(&b) {
                    def_blocks[d.index()].push(b);
                }
            }
        }
        if let Term::Invoke {
            dst: Some(d),
            normal,
            ..
        } = &block.term
        {
            def_blocks[d.index()].push(*normal);
        }
    }
    let dom = DomTree::compute(f, cfg);
    let params = {
        let mut s = LocalSet::new(nl);
        for p in f.params() {
            s.insert(p);
        }
        s
    };
    let dominated = |l: LocalId, b: BlockId, assigned_here: &LocalSet| {
        params.contains(l)
            || assigned_here.contains(l)
            || def_blocks[l.index()]
                .iter()
                .any(|&d| d != b && dom.dominates(d, b))
    };
    for &b in cfg.rpo() {
        let block = f.block(b);
        let mut assigned = LocalSet::new(nl);
        if let Some(pad) = &block.pad {
            if let Some(d) = pad.dst {
                assigned.insert(d);
            }
        }
        let mut ok = true;
        for inst in &block.insts {
            inst.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    if !dominated(l, b, &assigned) {
                        ok = false;
                    }
                }
            });
            if let Some(d) = inst.def() {
                assigned.insert(d);
            }
        }
        block.term.for_each_use(|o| {
            if let Some(l) = o.as_local() {
                if !dominated(l, b, &assigned) {
                    ok = false;
                }
            }
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Uses that **no** definition reaches on **any** path — certainly
/// uninitialized, as opposed to the maybe-uninitialized uses
/// [`use_before_init`] reports.
///
/// The distinction matters under control-flow-merging obfuscation: deep
/// fusion interleaves blocks of two function bodies and re-dispatches on
/// the ctrl parameter, so a def on the ctrl=0 path stops dominating uses
/// that are dynamically ctrl=0-only. Those uses are maybe-uninit to the
/// path-insensitive must-analysis yet correct at run time. A use with an
/// *empty* reaching-def set has no such excuse: the defining code was
/// dropped or orphaned. Built on [`ReachingDefs`], with the same
/// dominance fast path as [`def_before_use_violations`].
pub fn certainly_uninit_uses(f: &Function, cfg: &Cfg) -> Vec<UseBeforeInit> {
    if dominance_covers_all_uses(f, cfg) {
        return Vec::new();
    }
    let (rd, sol) = ReachingDefs::compute(f, cfg);
    let nl = f.locals.len();
    let mut out = Vec::new();
    for &b in cfg.rpo() {
        // reached[l] = some def of l reaches the current point.
        let mut reached = LocalSet::new(nl);
        for s in rd.resolve(&sol.block_in[b.index()]) {
            reached.insert(s.local);
        }
        let block = f.block(b);
        if let Some(pad) = &block.pad {
            if let Some(d) = pad.dst {
                reached.insert(d);
            }
        }
        for (i, inst) in block.insts.iter().enumerate() {
            inst.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    if !reached.contains(l) {
                        out.push(UseBeforeInit {
                            block: b,
                            inst: Some(i),
                            local: l,
                        });
                    }
                }
            });
            if let Some(d) = inst.def() {
                reached.insert(d);
            }
        }
        block.term.for_each_use(|o| {
            if let Some(l) = o.as_local() {
                if !reached.contains(l) {
                    out.push(UseBeforeInit {
                        block: b,
                        inst: None,
                        local: l,
                    });
                }
            }
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Reaching definitions.
// ---------------------------------------------------------------------------

/// Where a definition site sits within its block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefPos {
    /// A parameter (site attached to the entry block's boundary).
    Param,
    /// A landing pad's exception binding (top of the pad block).
    PadBind,
    /// The instruction at this index.
    Inst(u32),
    /// An invoke result (materializes on the normal edge out of `block`).
    InvokeResult,
}

/// One definition site of a local.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    /// The local defined.
    pub local: LocalId,
    /// The block holding the definition.
    pub block: BlockId,
    /// The position within the block.
    pub pos: DefPos,
}

/// A bitset over [`DefSite`] indices (the [`ReachingDefs`] state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteSet {
    bits: Vec<u64>,
}

impl SiteSet {
    /// An empty set sized for `n` sites.
    pub fn new(n: usize) -> Self {
        SiteSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts site `i`.
    pub fn insert(&mut self, i: u32) {
        self.bits[i as usize / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, i: u32) -> bool {
        self.bits
            .get(i as usize / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &SiteSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }

    /// Removes every site present in `other`.
    pub fn subtract(&mut self, other: &SiteSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !*b;
        }
    }

    /// Iterates member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64u32).filter_map(move |b| {
                if word & (1u64 << b) != 0 {
                    Some(w as u32 * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

/// Forward may-analysis: which definition sites of each local can reach a
/// program point. Construct with [`ReachingDefs::new`] (the instance
/// pre-numbers every site), solve via [`solve`] or the
/// [`ReachingDefs::compute`] convenience.
pub struct ReachingDefs {
    sites: Vec<DefSite>,
    /// Per local: all of its sites (the kill set of a new definition).
    kill: Vec<SiteSet>,
    /// Per block: site indices in execution order (pad bind, then insts).
    block_events: Vec<Vec<u32>>,
    /// Per block: the invoke-result site, if the terminator defines one.
    term_site: Vec<Option<u32>>,
    param_sites: Vec<u32>,
}

impl ReachingDefs {
    /// Numbers every definition site of `f`.
    pub fn new(f: &Function) -> Self {
        let mut sites = Vec::new();
        let mut param_sites = Vec::new();
        for p in f.params() {
            param_sites.push(sites.len() as u32);
            sites.push(DefSite {
                local: p,
                block: f.entry(),
                pos: DefPos::Param,
            });
        }
        let mut block_events = vec![Vec::new(); f.blocks.len()];
        let mut term_site = vec![None; f.blocks.len()];
        for (b, block) in f.iter_blocks() {
            if let Some(pad) = &block.pad {
                if let Some(d) = pad.dst {
                    block_events[b.index()].push(sites.len() as u32);
                    sites.push(DefSite {
                        local: d,
                        block: b,
                        pos: DefPos::PadBind,
                    });
                }
            }
            for (i, inst) in block.insts.iter().enumerate() {
                if let Some(d) = inst.def() {
                    block_events[b.index()].push(sites.len() as u32);
                    sites.push(DefSite {
                        local: d,
                        block: b,
                        pos: DefPos::Inst(i as u32),
                    });
                }
            }
            if let Some(d) = block.term.def() {
                term_site[b.index()] = Some(sites.len() as u32);
                sites.push(DefSite {
                    local: d,
                    block: b,
                    pos: DefPos::InvokeResult,
                });
            }
        }
        let mut kill = vec![SiteSet::new(sites.len()); f.locals.len()];
        for (i, s) in sites.iter().enumerate() {
            kill[s.local.index()].insert(i as u32);
        }
        ReachingDefs {
            sites,
            kill,
            block_events,
            term_site,
            param_sites,
        }
    }

    /// The numbered sites, indexable by the bits of a [`SiteSet`].
    pub fn sites(&self) -> &[DefSite] {
        &self.sites
    }

    /// Solves reaching definitions for `f` and returns the instance
    /// (site table) alongside the per-block solution.
    pub fn compute(f: &Function, cfg: &Cfg) -> (Self, Solution<SiteSet>) {
        let a = Self::new(f);
        let sol = solve(&a, f, cfg);
        (a, sol)
    }

    /// The sites of `set` resolved against the site table.
    pub fn resolve<'a>(&'a self, set: &'a SiteSet) -> impl Iterator<Item = &'a DefSite> + 'a {
        set.iter().map(|i| &self.sites[i as usize])
    }
}

impl Analysis for ReachingDefs {
    type State = SiteSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _f: &Function) -> SiteSet {
        let mut s = SiteSet::new(self.sites.len());
        for &i in &self.param_sites {
            s.insert(i);
        }
        s
    }

    fn top(&self, _f: &Function) -> SiteSet {
        SiteSet::new(self.sites.len())
    }

    fn join(&self, into: &mut SiteSet, other: &SiteSet) {
        into.union_with(other);
    }

    fn transfer(&self, _f: &Function, b: BlockId, state: &mut SiteSet) {
        for &i in &self.block_events[b.index()] {
            let l = self.sites[i as usize].local;
            state.subtract(&self.kill[l.index()]);
            state.insert(i);
        }
    }

    fn edge(&self, f: &Function, from: BlockId, to: BlockId, state: &mut SiteSet) {
        if let Some(i) = self.term_site[from.index()] {
            if let Term::Invoke { normal, .. } = &f.block(from).term {
                if *normal == to {
                    let l = self.sites[i as usize].local;
                    state.subtract(&self.kill[l.index()]);
                    state.insert(i);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Live variables (the framework form of `Liveness`) and dead stores.
// ---------------------------------------------------------------------------

/// Backward may-analysis: locals whose current value may still be read.
/// Equivalent to [`crate::Liveness`] (pinned by a test there); exists as a
/// framework instance so backward problems have a reference
/// implementation.
pub struct LiveVariables;

impl Analysis for LiveVariables {
    type State = LocalSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, f: &Function) -> LocalSet {
        LocalSet::new(f.locals.len())
    }

    fn top(&self, f: &Function) -> LocalSet {
        LocalSet::new(f.locals.len())
    }

    fn join(&self, into: &mut LocalSet, other: &LocalSet) {
        into.union_with(other);
    }

    fn transfer(&self, f: &Function, b: BlockId, state: &mut LocalSet) {
        let block = f.block(b);
        if let Some(d) = block.term.def() {
            state.remove(d);
        }
        block.term.for_each_use(|o| {
            if let Some(l) = o.as_local() {
                state.insert(l);
            }
        });
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.def() {
                state.remove(d);
            }
            inst.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    state.insert(l);
                }
            });
        }
        if let Some(pad) = &block.pad {
            if let Some(d) = pad.dst {
                state.remove(d);
            }
        }
    }
}

/// An assignment whose value no path ever reads before redefinition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadAssignment {
    /// Block containing the assignment.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
    /// The local assigned.
    pub local: LocalId,
    /// True when deleting the instruction is safe (pure, no side effects);
    /// false for dead call results and other effectful definitions.
    pub removable: bool,
}

/// Dead-store analysis over locals: every reachable assignment whose value
/// is never read before the local is reassigned or the function exits.
pub fn dead_assignments(f: &Function, cfg: &Cfg) -> Vec<DeadAssignment> {
    let sol = solve(&LiveVariables, f, cfg);
    let mut out = Vec::new();
    for &b in cfg.rpo() {
        let block = f.block(b);
        let mut live = sol.block_out[b.index()].clone();
        if let Some(d) = block.term.def() {
            live.remove(d);
        }
        block.term.for_each_use(|o| {
            if let Some(l) = o.as_local() {
                live.insert(l);
            }
        });
        for (i, inst) in block.insts.iter().enumerate().rev() {
            if let Some(d) = inst.def() {
                if !live.contains(d) {
                    out.push(DeadAssignment {
                        block: b,
                        inst: i,
                        local: d,
                        removable: inst.is_pure(),
                    });
                }
                live.remove(d);
            }
            inst.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    live.insert(l);
                }
            });
        }
    }
    out.sort_by_key(|d| (d.block.index(), d.inst));
    out
}

// ---------------------------------------------------------------------------
// Reachability: structurally unreachable and statically executable blocks.
// ---------------------------------------------------------------------------

/// Blocks no CFG path from the entry reaches (candidates for removal;
/// `simplifycfg` deletes them).
pub fn unreachable_blocks(f: &Function, cfg: &Cfg) -> Vec<BlockId> {
    f.iter_blocks()
        .map(|(b, _)| b)
        .filter(|&b| !cfg.is_reachable(b))
        .collect()
}

/// Per-block flag: can any execution reach this block, following only
/// *feasible* edges — a branch or switch on a constant takes exactly its
/// decided edge. This is the reachability notion the semantic auditor
/// compares under: it is stable when a pass folds a constant branch and
/// prunes the dead arm, because the arm was already infeasible here.
pub fn executable_blocks(f: &Function) -> Vec<bool> {
    let mut exec = vec![false; f.blocks.len()];
    let mut stack = vec![f.entry()];
    exec[f.entry().index()] = true;
    while let Some(b) = stack.pop() {
        let visit = |t: BlockId, exec: &mut Vec<bool>, stack: &mut Vec<BlockId>| {
            if !exec[t.index()] {
                exec[t.index()] = true;
                stack.push(t);
            }
        };
        match &f.block(b).term {
            Term::Branch {
                cond: Operand::Const(c),
                then_bb,
                else_bb,
            } => match c.normalized() {
                Some(0) => visit(*else_bb, &mut exec, &mut stack),
                Some(_) => visit(*then_bb, &mut exec, &mut stack),
                None => {
                    visit(*then_bb, &mut exec, &mut stack);
                    visit(*else_bb, &mut exec, &mut stack);
                }
            },
            Term::Switch {
                value: Operand::Const(c),
                cases,
                default,
                ..
            } => match c.normalized() {
                Some(v) => {
                    let t = cases
                        .iter()
                        .find(|(k, _)| *k == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    visit(t, &mut exec, &mut stack);
                }
                None => {
                    for (_, t) in cases {
                        visit(*t, &mut exec, &mut stack);
                    }
                    visit(*default, &mut exec, &mut stack);
                }
            },
            t => t.for_each_successor(|s| visit(s, &mut exec, &mut stack)),
        }
    }
    exec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::liveness::Liveness;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Callee, CmpPred};
    use crate::types::Type;

    /// `x` assigned in both arms of a diamond, used at the join: the
    /// legal non-SSA shape with no single dominating def.
    fn diamond_assign() -> Function {
        let mut fb = FunctionBuilder::new("d", Type::I64);
        let p = fb.add_param(Type::I64);
        let x = fb.new_local(Type::I64);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I64,
            Operand::local(p),
            Operand::const_int(Type::I64, 0),
        );
        fb.branch(Operand::local(c), t, e);
        fb.switch_to(t);
        fb.copy_to(x, Operand::const_int(Type::I64, 1));
        fb.jump(j);
        fb.switch_to(e);
        fb.copy_to(x, Operand::const_int(Type::I64, 2));
        fb.jump(j);
        fb.switch_to(j);
        fb.ret(Some(Operand::local(x)));
        fb.finish()
    }

    /// `x` assigned in only one arm, used at the join: maybe-uninit.
    /// Returns the function and `x`.
    fn half_diamond_assign() -> (Function, LocalId) {
        let mut fb = FunctionBuilder::new("h", Type::I64);
        let p = fb.add_param(Type::I64);
        let x = fb.new_local(Type::I64);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I64,
            Operand::local(p),
            Operand::const_int(Type::I64, 0),
        );
        fb.branch(Operand::local(c), t, e);
        fb.switch_to(t);
        fb.copy_to(x, Operand::const_int(Type::I64, 1));
        fb.jump(j);
        fb.switch_to(e);
        fb.jump(j);
        fb.switch_to(j);
        fb.ret(Some(Operand::local(x)));
        (fb.finish(), x)
    }

    #[test]
    fn definite_init_accepts_the_diamond() {
        let f = diamond_assign();
        let cfg = Cfg::compute(&f);
        assert!(use_before_init(&f, &cfg).is_empty());
        assert!(def_before_use_violations(&f, &cfg).is_empty());
    }

    #[test]
    fn definite_init_flags_the_half_diamond() {
        let (f, x) = half_diamond_assign();
        let cfg = Cfg::compute(&f);
        let v = use_before_init(&f, &cfg);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].local, x);
        assert_eq!(v[0].inst, None, "the use is the ret terminator");
        assert_eq!(def_before_use_violations(&f, &cfg), v);
    }

    #[test]
    fn dominating_def_fast_path_accepts_straight_line() {
        let mut fb = FunctionBuilder::new("s", Type::I64);
        let p = fb.add_param(Type::I64);
        let r = fb.bin(
            BinOp::Add,
            Type::I64,
            Operand::local(p),
            Operand::const_int(Type::I64, 1),
        );
        fb.ret(Some(Operand::local(r)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        assert!(dominance_covers_all_uses(&f, &cfg));
        assert!(def_before_use_violations(&f, &cfg).is_empty());
    }

    #[test]
    fn live_variables_matches_liveness() {
        for f in [diamond_assign(), half_diamond_assign().0] {
            let cfg = Cfg::compute(&f);
            let lv = Liveness::compute(&f, &cfg);
            let sol = solve(&LiveVariables, &f, &cfg);
            for &b in cfg.rpo() {
                assert_eq!(
                    &sol.block_in[b.index()],
                    lv.live_in(b),
                    "in {b} of {}",
                    f.name
                );
                assert_eq!(
                    &sol.block_out[b.index()],
                    lv.live_out(b),
                    "out {b} of {}",
                    f.name
                );
            }
        }
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        let f = diamond_assign();
        let cfg = Cfg::compute(&f);
        let (rd, sol) = ReachingDefs::compute(&f, &cfg);
        let x = LocalId(1);
        // Both arm defs of x reach the join block's entry.
        let join = BlockId(3);
        let reaching: Vec<_> = rd
            .resolve(&sol.block_in[join.index()])
            .filter(|s| s.local == x)
            .map(|s| s.block)
            .collect();
        assert_eq!(reaching, vec![BlockId(1), BlockId(2)]);
        // The param def site reaches everywhere.
        let p = LocalId(0);
        assert!(rd
            .resolve(&sol.block_in[join.index()])
            .any(|s| s.local == p && s.pos == DefPos::Param));
    }

    #[test]
    fn reaching_defs_kill_in_block() {
        let mut fb = FunctionBuilder::new("k", Type::I64);
        let x = fb.new_local(Type::I64);
        fb.copy_to(x, Operand::const_int(Type::I64, 1));
        fb.copy_to(x, Operand::const_int(Type::I64, 2));
        fb.ret(Some(Operand::local(x)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let (rd, sol) = ReachingDefs::compute(&f, &cfg);
        let out: Vec<_> = rd.resolve(&sol.block_out[0]).collect();
        assert_eq!(out.len(), 1, "second copy kills the first");
        assert_eq!(out[0].pos, DefPos::Inst(1));
    }

    #[test]
    fn dead_assignment_detected_and_killed_overwrite() {
        let mut fb = FunctionBuilder::new("ds", Type::I64);
        let x = fb.new_local(Type::I64);
        let y = fb.new_local(Type::I64);
        fb.copy_to(x, Operand::const_int(Type::I64, 1)); // dead: overwritten
        fb.copy_to(x, Operand::const_int(Type::I64, 2));
        fb.copy_to(y, Operand::const_int(Type::I64, 3)); // dead: never read
        fb.ret(Some(Operand::local(x)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let dead = dead_assignments(&f, &cfg);
        assert_eq!(dead.len(), 2, "{dead:?}");
        assert_eq!((dead[0].inst, dead[0].local), (0, x));
        assert_eq!((dead[1].inst, dead[1].local), (2, y));
        assert!(dead.iter().all(|d| d.removable));
    }

    #[test]
    fn executable_blocks_prune_const_branches() {
        let mut fb = FunctionBuilder::new("cb", Type::I64);
        let t = fb.new_block();
        let e = fb.new_block();
        fb.branch(Operand::const_bool(true), t, e);
        fb.switch_to(t);
        fb.ret(Some(Operand::const_int(Type::I64, 1)));
        fb.switch_to(e);
        fb.ret(Some(Operand::const_int(Type::I64, 2)));
        let f = fb.finish();
        let exec = executable_blocks(&f);
        assert_eq!(exec, vec![true, true, false]);
        // The structural notion still sees both arms.
        let cfg = Cfg::compute(&f);
        assert!(cfg.is_reachable(BlockId(2)));
        assert!(unreachable_blocks(&f, &cfg).is_empty());
    }

    #[test]
    fn invoke_result_assigned_on_normal_edge_only() {
        let mut m = crate::module::Module::new("inv");
        let mut callee = FunctionBuilder::new("callee", Type::I64);
        callee.ret(Some(Operand::const_int(Type::I64, 7)));
        let cid = m.push_function(callee.finish());
        let mut fb = FunctionBuilder::new("f", Type::I64);
        let normal = fb.new_block();
        let pad = fb.new_pad_block(None);
        let r = fb
            .invoke(Callee::Direct(cid), Type::I64, vec![], normal, pad)
            .unwrap();
        fb.switch_to(normal);
        fb.ret(Some(Operand::local(r)));
        fb.switch_to(pad);
        // Using the invoke result on the unwind path is a violation.
        fb.ret(Some(Operand::local(r)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let v = use_before_init(&f, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].block, BlockId(2));
        assert_eq!(def_before_use_violations(&f, &cfg), v);
    }

    #[test]
    fn solver_iteration_count_is_reported() {
        let f = diamond_assign();
        let cfg = Cfg::compute(&f);
        let sol = solve(&DefiniteInit, &f, &cfg);
        assert!(sol.iterations >= cfg.reachable_count());
    }

    #[test]
    fn loop_carried_assignment_is_not_definite() {
        // entry -> header; header branches to body or exit; body assigns x
        // and loops; exit reads x. x is unassigned on the first header
        // visit, so the exit read is maybe-uninit.
        let mut fb = FunctionBuilder::new("lp", Type::I64);
        let p = fb.add_param(Type::I64);
        let x = fb.new_local(Type::I64);
        let h = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I64,
            Operand::local(p),
            Operand::const_int(Type::I64, 0),
        );
        fb.branch(Operand::local(c), body, exit);
        fb.switch_to(body);
        fb.copy_to(x, Operand::const_int(Type::I64, 9));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(Operand::local(x)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let v = use_before_init(&f, &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].local, x);
    }
}
