//! Natural-loop detection and nesting depths.
//!
//! Algorithm 1 of the paper weighs a candidate region's cost by the trip
//! count of the innermost loop containing its head; this module provides
//! the loop nest and a static trip-count estimate.

use crate::analysis::cfg::Cfg;
use crate::analysis::dom::DomTree;
use crate::function::Function;
use crate::ids::BlockId;

/// A single natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub blocks: Vec<BlockId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
}

/// The loop forest of a function.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    loops: Vec<Loop>,
    /// Innermost loop containing each block (`None` if not in a loop).
    innermost: Vec<Option<u32>>,
    /// Loop nesting depth of each block (0 if not in a loop).
    depth: Vec<u32>,
}

/// Static trip-count estimate used when no profile exists (the paper's
/// "loop count"); matches LLVM's default block-frequency assumption.
pub const DEFAULT_TRIP_COUNT: f64 = 10.0;

impl LoopInfo {
    /// Detects natural loops from back edges (`t -> h` where `h` dominates
    /// `t`) and merges bodies that share a header.
    pub fn compute(f: &Function, cfg: &Cfg, dt: &DomTree) -> Self {
        let n = f.blocks.len();
        // Collect back edges grouped by header.
        let mut latches_by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for &b in cfg.rpo() {
            f.block(b).term.for_each_successor(|s| {
                if dt.dominates(s, b) {
                    match latches_by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, v)) => v.push(b),
                        None => latches_by_header.push((s, vec![b])),
                    }
                }
            });
        }
        // Natural loop body: header + all blocks that reach a latch without
        // passing through the header.
        let mut loops = Vec::new();
        for (header, latches) in latches_by_header {
            let mut in_body = vec![false; n];
            in_body[header.index()] = true;
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if !in_body[l.index()] {
                    in_body[l.index()] = true;
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if !in_body[p.index()] && cfg.is_reachable(p) {
                        in_body[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let blocks: Vec<BlockId> = (0..n).filter(|&i| in_body[i]).map(BlockId::new).collect();
            loops.push(Loop {
                header,
                blocks,
                depth: 0,
            });
        }

        // Depth: number of loops containing each block; loop depth = depth
        // of its header.
        let mut depth = vec![0u32; n];
        for l in &loops {
            for &b in &l.blocks {
                depth[b.index()] += 1;
            }
        }
        for l in &mut loops {
            l.depth = depth[l.header.index()];
        }
        // Innermost loop: the containing loop with maximal depth.
        let mut innermost: Vec<Option<u32>> = vec![None; n];
        for (li, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                let better = match innermost[b.index()] {
                    None => true,
                    Some(prev) => loops[prev as usize].depth < l.depth,
                };
                if better {
                    innermost[b.index()] = Some(li as u32);
                }
            }
        }
        LoopInfo {
            loops,
            innermost,
            depth,
        }
    }

    /// All detected loops.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&Loop> {
        self.innermost[b.index()].map(|i| &self.loops[i as usize])
    }

    /// Loop nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// True if `b` is inside any loop.
    pub fn in_loop(&self, b: BlockId) -> bool {
        self.depth(b) > 0
    }

    /// Static trip-count estimate for the innermost loop containing `b`.
    pub fn trip_count(&self, b: BlockId) -> f64 {
        if self.in_loop(b) {
            DEFAULT_TRIP_COUNT
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpPred, Operand};
    use crate::types::Type;

    /// entry -> h1; h1 -> {h2, exit}; h2 -> {body, h1}; body -> h2
    fn nested_loops() -> Function {
        let mut fb = FunctionBuilder::new("l", Type::Void);
        let p = fb.add_param(Type::I32);
        let h1 = fb.new_block();
        let h2 = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        fb.jump(h1);
        fb.switch_to(h1);
        fb.branch(Operand::local(c), h2, exit);
        fb.switch_to(h2);
        fb.branch(Operand::local(c), body, h1);
        fb.switch_to(body);
        fb.jump(h2);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    fn analyze(f: &Function) -> LoopInfo {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        LoopInfo::compute(f, &cfg, &dt)
    }

    #[test]
    fn finds_two_nested_loops() {
        let f = nested_loops();
        let li = analyze(&f);
        assert_eq!(li.loops().len(), 2);
        let outer = li.loops().iter().find(|l| l.header == BlockId(1)).unwrap();
        let inner = li.loops().iter().find(|l| l.header == BlockId(2)).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
    }

    #[test]
    fn depths_and_innermost() {
        let f = nested_loops();
        let li = analyze(&f);
        assert_eq!(li.depth(BlockId(0)), 0);
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 2);
        assert_eq!(li.depth(BlockId(3)), 2);
        assert_eq!(li.depth(BlockId(4)), 0);
        assert_eq!(li.innermost(BlockId(3)).unwrap().header, BlockId(2));
        assert!(li.innermost(BlockId(4)).is_none());
        assert!(li.in_loop(BlockId(2)));
        assert_eq!(li.trip_count(BlockId(4)), 1.0);
        assert_eq!(li.trip_count(BlockId(3)), DEFAULT_TRIP_COUNT);
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut fb = FunctionBuilder::new("s", Type::Void);
        fb.ret(None);
        let f = fb.finish();
        let li = analyze(&f);
        assert!(li.loops().is_empty());
    }

    #[test]
    fn self_loop_detected() {
        let mut fb = FunctionBuilder::new("w", Type::Void);
        let p = fb.add_param(Type::I32);
        let h = fb.new_block();
        let exit = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        fb.jump(h);
        fb.switch_to(h);
        fb.branch(Operand::local(c), h, exit);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let li = analyze(&f);
        assert_eq!(li.loops().len(), 1);
        assert_eq!(li.loops()[0].blocks, vec![h]);
    }
}
