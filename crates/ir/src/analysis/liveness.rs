//! Backward liveness analysis over locals.
//!
//! Fission uses liveness to compute the inputs and outputs of a separated
//! region (paper §3.2.2); the code generator uses it for register
//! allocation; dead-code elimination uses the def/use sets.

use crate::analysis::cfg::Cfg;
use crate::function::Function;
use crate::ids::{BlockId, LocalId};

/// Fixed-size bitset over locals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalSet {
    bits: Vec<u64>,
}

impl LocalSet {
    /// An empty set sized for `n` locals.
    pub fn new(n: usize) -> Self {
        LocalSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// The full set over `n` locals (every id below `n` is a member).
    /// Trailing bits of the last word are kept clear so `full(n)` equals
    /// the set built by inserting each local individually.
    pub fn full(n: usize) -> Self {
        let mut bits = vec![!0u64; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = bits.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        LocalSet { bits }
    }

    /// Intersects `other` into `self`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &LocalSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let nv = *a & *b;
            if nv != *a {
                *a = nv;
                changed = true;
            }
        }
        changed
    }

    /// Inserts `l`; returns true if newly inserted.
    pub fn insert(&mut self, l: LocalId) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        let had = self.bits[w] & (1 << b) != 0;
        self.bits[w] |= 1 << b;
        !had
    }

    /// Removes `l`.
    pub fn remove(&mut self, l: LocalId) {
        let (w, b) = (l.index() / 64, l.index() % 64);
        self.bits[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, l: LocalId) -> bool {
        let (w, b) = (l.index() / 64, l.index() % 64);
        self.bits.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &LocalSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let nv = *a | *b;
            if nv != *a {
                *a = nv;
                changed = true;
            }
        }
        changed
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = LocalId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter_map(move |b| {
                if word & (1u64 << b) != 0 {
                    Some(LocalId::new(w * 64 + b))
                } else {
                    None
                }
            })
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no members.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

/// Per-block liveness facts.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<LocalSet>,
    live_out: Vec<LocalSet>,
    /// Locals read in the block before any redefinition (upward-exposed uses).
    gen: Vec<LocalSet>,
    /// Locals defined in the block.
    def: Vec<LocalSet>,
}

impl Liveness {
    /// Runs the classic backward dataflow to a fixed point.
    ///
    /// A landing pad's bound local counts as a definition at the top of the
    /// pad block. Invoke destinations are treated as defined on the normal
    /// edge only; for simplicity (and conservatively for liveness) we treat
    /// them as block-level defs of the invoking block.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let nl = f.locals.len();
        let mut gen = vec![LocalSet::new(nl); n];
        let mut def = vec![LocalSet::new(nl); n];
        for (b, block) in f.iter_blocks() {
            let bi = b.index();
            if let Some(pad) = &block.pad {
                if let Some(d) = pad.dst {
                    def[bi].insert(d);
                }
            }
            for inst in &block.insts {
                inst.for_each_use(|o| {
                    if let Some(l) = o.as_local() {
                        if !def[bi].contains(l) {
                            gen[bi].insert(l);
                        }
                    }
                });
                if let Some(d) = inst.def() {
                    def[bi].insert(d);
                }
            }
            block.term.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    if !def[bi].contains(l) {
                        gen[bi].insert(l);
                    }
                }
            });
            if let Some(d) = block.term.def() {
                def[bi].insert(d);
            }
        }

        let mut live_in = vec![LocalSet::new(nl); n];
        let mut live_out = vec![LocalSet::new(nl); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Postorder (reverse of RPO) converges fastest for backward flow.
            for &b in cfg.rpo().iter().rev() {
                let bi = b.index();
                let mut out = LocalSet::new(nl);
                f.block(b).term.for_each_successor(|s| {
                    out.union_with(&live_in[s.index()]);
                });
                // in = gen ∪ (out \ def)
                let mut inn = gen[bi].clone();
                for l in out.iter() {
                    if !def[bi].contains(l) {
                        inn.insert(l);
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if inn != live_in[bi] {
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness {
            live_in,
            live_out,
            gen,
            def,
        }
    }

    /// Locals live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &LocalSet {
        &self.live_in[b.index()]
    }

    /// Locals live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &LocalSet {
        &self.live_out[b.index()]
    }

    /// Upward-exposed uses of `b`.
    pub fn gen_set(&self, b: BlockId) -> &LocalSet {
        &self.gen[b.index()]
    }

    /// Locals defined in `b`.
    pub fn def_set(&self, b: BlockId) -> &LocalSet {
        &self.def[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpPred, Operand};
    use crate::types::Type;

    #[test]
    fn localset_basics() {
        let mut s = LocalSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(LocalId(3)));
        assert!(!s.insert(LocalId(3)));
        assert!(s.insert(LocalId(70)));
        assert!(s.contains(LocalId(70)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![LocalId(3), LocalId(70)]);
        s.remove(LocalId(3));
        assert!(!s.contains(LocalId(3)));
    }

    #[test]
    fn param_live_through_loop() {
        // sum = 0; while (i > 0) { sum += i; i -= 1 } ; return sum
        let mut fb = FunctionBuilder::new("s", Type::I32);
        let i = fb.add_param(Type::I32);
        let sum = fb.new_local(Type::I32);
        let h = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.copy_to(sum, Operand::const_int(Type::I32, 0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(i),
            Operand::const_int(Type::I32, 0),
        );
        fb.branch(Operand::local(c), body, exit);
        fb.switch_to(body);
        let ns = fb.bin(
            BinOp::Add,
            Type::I32,
            Operand::local(sum),
            Operand::local(i),
        );
        fb.copy_to(sum, Operand::local(ns));
        let ni = fb.bin(
            BinOp::Sub,
            Type::I32,
            Operand::local(i),
            Operand::const_int(Type::I32, 1),
        );
        fb.copy_to(i, Operand::local(ni));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(Operand::local(sum)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);

        let h = BlockId(1);
        let body = BlockId(2);
        let exit = BlockId(3);
        assert!(lv.live_in(h).contains(i));
        assert!(lv.live_in(h).contains(sum));
        assert!(lv.live_in(body).contains(i));
        assert!(lv.live_in(exit).contains(sum));
        assert!(!lv.live_in(exit).contains(i), "i is dead at exit");
        assert!(lv.live_out(body).contains(sum));
    }

    #[test]
    fn def_kills_liveness() {
        let mut fb = FunctionBuilder::new("k", Type::I32);
        let x = fb.new_local(Type::I32);
        let nxt = fb.new_block();
        fb.jump(nxt);
        fb.switch_to(nxt);
        fb.copy_to(x, Operand::const_int(Type::I32, 5));
        fb.ret(Some(Operand::local(x)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(
            !lv.live_in(BlockId(1)).contains(x),
            "x defined before use in block"
        );
        assert!(lv.def_set(BlockId(1)).contains(x));
        assert!(lv.gen_set(BlockId(1)).is_empty());
    }
}
