//! Dominator tree computation (Cooper–Harvey–Kennedy).
//!
//! The fission primitive partitions functions at *dominator subtree*
//! granularity (paper §3.2.1): any dominator subtree is a single-entry
//! region and can be separated into a `sepFunc`.

use crate::analysis::cfg::Cfg;
use crate::function::Function;
use crate::ids::BlockId;

/// The dominator tree of a function's reachable CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator of `b`; the entry maps to itself.
    /// Unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Children lists (reachable blocks only).
    children: Vec<Vec<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree using the Cooper–Harvey–Kennedy
    /// iterative algorithm over reverse postorder.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let entry = f.entry();
        let rpo = cfg.rpo();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up by RPO index until the fingers meet.
            while a != b {
                let (ai, bi) = (cfg.rpo_index(a).unwrap(), cfg.rpo_index(b).unwrap());
                if ai > bi {
                    a = idom[a.index()].expect("processed block has idom");
                } else {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for &b in rpo {
            if b != entry {
                if let Some(p) = idom[b.index()] {
                    children[p.index()].push(b);
                }
            }
        }
        DomTree {
            idom,
            children,
            entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Dominator-tree children of `b`.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// All blocks in the dominator subtree rooted at `root` (preorder,
    /// including `root`).
    pub fn subtree(&self, root: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(b) = stack.pop() {
            out.push(b);
            stack.extend(self.children(b).iter().copied());
        }
        out
    }

    /// Roots of every dominator subtree except the whole-function tree:
    /// i.e. every reachable block other than the entry (paper Algorithm 1,
    /// line 3 removes the function's own tree).
    pub fn candidate_roots(&self, cfg: &Cfg) -> Vec<BlockId> {
        cfg.rpo()
            .iter()
            .copied()
            .filter(|&b| b != self.entry)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpPred, Operand, Term};
    use crate::types::Type;

    /// entry -> {a, b}; a -> join; b -> join; join -> {loop_h}; loop_h -> {loop_b, exit}; loop_b -> loop_h
    fn build_cfg() -> Function {
        let mut fb = FunctionBuilder::new("t", Type::Void);
        let p = fb.add_param(Type::I32);
        let a = fb.new_block();
        let b = fb.new_block();
        let join = fb.new_block();
        let loop_h = fb.new_block();
        let loop_b = fb.new_block();
        let exit = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        fb.branch(Operand::local(c), a, b);
        fb.switch_to(a);
        fb.jump(join);
        fb.switch_to(b);
        fb.jump(join);
        fb.switch_to(join);
        fb.jump(loop_h);
        fb.switch_to(loop_h);
        fb.branch(Operand::local(c), loop_b, exit);
        fb.switch_to(loop_b);
        fb.jump(loop_h);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn idoms_match_structure() {
        let f = build_cfg();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom(BlockId(0)), None);
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(
            dt.idom(BlockId(3)),
            Some(BlockId(0)),
            "join dominated by entry, not by a/b"
        );
        assert_eq!(dt.idom(BlockId(4)), Some(BlockId(3)));
        assert_eq!(dt.idom(BlockId(5)), Some(BlockId(4)));
        assert_eq!(dt.idom(BlockId(6)), Some(BlockId(4)));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = build_cfg();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert!(dt.dominates(BlockId(0), BlockId(6)));
        assert!(dt.dominates(BlockId(4), BlockId(5)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn subtree_collects_descendants() {
        let f = build_cfg();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let mut st = dt.subtree(BlockId(4));
        st.sort();
        assert_eq!(st, vec![BlockId(4), BlockId(5), BlockId(6)]);
    }

    #[test]
    fn candidate_roots_exclude_entry() {
        let f = build_cfg();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let roots = dt.candidate_roots(&cfg);
        assert_eq!(roots.len(), 6);
        assert!(!roots.contains(&BlockId(0)));
    }

    /// Naive O(n^2) dominance used to cross-check the CHK implementation.
    fn naive_dominates(f: &Function, a: BlockId, b: BlockId) -> bool {
        // b is dominated by a iff removing a makes b unreachable.
        let n = f.blocks.len();
        let mut visited = vec![false; n];
        let mut stack = vec![f.entry()];
        if f.entry() != a {
            visited[f.entry().index()] = true;
            while let Some(x) = stack.pop() {
                f.block(x).term.for_each_successor(|s| {
                    if s != a && !visited[s.index()] {
                        visited[s.index()] = true;
                        stack.push(s);
                    }
                });
            }
        }
        a == b || !visited[b.index()]
    }

    #[test]
    fn matches_naive_dominance() {
        let f = build_cfg();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        for (a, _) in f.iter_blocks() {
            for (b, _) in f.iter_blocks() {
                if cfg.is_reachable(a) && cfg.is_reachable(b) {
                    assert_eq!(
                        dt.dominates(a, b),
                        naive_dominates(&f, a, b),
                        "dominates({a},{b}) disagrees with naive"
                    );
                }
            }
        }
    }

    #[test]
    fn irreducible_like_cfg_handled() {
        // entry -> a, b; a -> b; b -> a (cross edges); both -> via branch.
        let mut fb = FunctionBuilder::new("x", Type::Void);
        let p = fb.add_param(Type::I32);
        let a = fb.new_block();
        let b = fb.new_block();
        let exit = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        fb.branch(Operand::local(c), a, b);
        fb.switch_to(a);
        fb.branch(Operand::local(c), b, exit);
        fb.switch_to(b);
        fb.branch(Operand::local(c), a, exit);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom(a), Some(BlockId(0)));
        assert_eq!(dt.idom(b), Some(BlockId(0)));
        assert_eq!(dt.idom(exit), Some(BlockId(0)));
        // Terminator sanity for the test function itself.
        assert!(matches!(f.block(exit).term, Term::Ret(None)));
    }
}
