//! Function- and module-level analyses shared by the optimizer, the
//! obfuscator and the code generator.

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod dom;
pub mod freq;
pub mod liveness;
pub mod loops;
