//! Control-flow graph utilities: predecessors, postorder traversals and
//! reachability.

use crate::function::Function;
use crate::ids::BlockId;

/// Predecessor lists and traversal orders for a function's CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    /// Reverse postorder over reachable blocks, starting at the entry.
    rpo: Vec<BlockId>,
    /// `rpo_index[b] == Some(i)` iff `rpo[i] == b`; `None` for unreachable.
    rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Computes the CFG for `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        for (b, block) in f.iter_blocks() {
            block.term.for_each_successor(|s| {
                if !preds[s.index()].contains(&b) {
                    preds[s.index()].push(b);
                }
            });
        }
        // Iterative DFS postorder.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
        visited[f.entry().index()] = true;
        let succs: Vec<Vec<BlockId>> = f.blocks.iter().map(|b| b.term.successors()).collect();
        while let Some((b, i)) = stack.pop() {
            if i < succs[b.index()].len() {
                stack.push((b, i + 1));
                let s = succs[b.index()][i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        let mut rpo = post;
        rpo.reverse();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i as u32);
        }
        Cfg {
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Predecessors of `b` (deduplicated, in discovery order).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Reverse postorder over reachable blocks; `rpo()[0]` is the entry.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse postorder, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<u32> {
        self.rpo_index[b.index()]
    }

    /// True if `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Number of reachable blocks.
    pub fn reachable_count(&self) -> usize {
        self.rpo.len()
    }

    /// Number of CFG edges among reachable blocks (with multiplicity).
    pub fn edge_count(&self, f: &Function) -> usize {
        self.rpo
            .iter()
            .map(|&b| f.block(b).term.successors().len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpPred, Operand};
    use crate::types::Type;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", Type::Void);
        let p = b.add_param(Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        b.branch(Operand::local(c), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn preds_of_join() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(0)), &[]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.reachable_count(), 4);
        // The join must come after both branch targets.
        let j = cfg.rpo_index(BlockId(3)).unwrap();
        assert!(j > cfg.rpo_index(BlockId(1)).unwrap());
        assert!(j > cfg.rpo_index(BlockId(2)).unwrap());
    }

    #[test]
    fn unreachable_blocks_detected() {
        let mut f = diamond();
        // Add a dangling block no one targets.
        let dead = f.push_block(crate::function::Block::with_term(crate::inst::Term::Ret(
            None,
        )));
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.reachable_count(), 4);
    }

    #[test]
    fn edge_count_counts_multiplicity() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.edge_count(&f), 4); // branch(2) + 2 jumps
    }
}
