//! Static block-frequency estimation.
//!
//! A simplified analogue of LLVM's BlockFrequency analysis (which the paper
//! cites as the source of Algorithm 1's cold/hot information): branch
//! probabilities are uniform, and each loop multiplies its body's frequency
//! by a static trip count.

use crate::analysis::cfg::Cfg;
use crate::analysis::loops::{LoopInfo, DEFAULT_TRIP_COUNT};
use crate::function::Function;
use crate::ids::BlockId;

/// Estimated execution frequency of each block, with the entry at 1.0.
#[derive(Clone, Debug)]
pub struct BlockFreq {
    freq: Vec<f64>,
}

impl BlockFreq {
    /// Computes block frequencies.
    ///
    /// Frequencies propagate in reverse postorder along forward edges with
    /// uniform branch probabilities; back edges are ignored, and instead
    /// every block's frequency is scaled by `trip^depth` for its loop
    /// nesting depth. This converges in one pass and is stable under the
    /// CFG edits the obfuscator performs.
    pub fn compute(f: &Function, cfg: &Cfg, li: &LoopInfo) -> Self {
        let n = f.blocks.len();
        let mut base = vec![0.0f64; n];
        base[f.entry().index()] = 1.0;
        for &b in cfg.rpo() {
            let w = base[b.index()];
            if w == 0.0 {
                continue;
            }
            let succs = f.block(b).term.successors();
            if succs.is_empty() {
                continue;
            }
            let share = w / succs.len() as f64;
            for s in succs {
                // Ignore back/self edges: loop weighting handles them.
                let is_back = match (cfg.rpo_index(s), cfg.rpo_index(b)) {
                    (Some(si), Some(bi)) => si <= bi,
                    _ => false,
                };
                if !is_back {
                    base[s.index()] += share;
                }
            }
        }
        let freq = (0..n)
            .map(|i| {
                let b = BlockId::new(i);
                let depth = li.depth(b);
                base[i] * DEFAULT_TRIP_COUNT.powi(depth as i32)
            })
            .collect();
        BlockFreq { freq }
    }

    /// The estimated frequency of `b` (0.0 for unreachable blocks).
    pub fn freq(&self, b: BlockId) -> f64 {
        self.freq[b.index()]
    }

    /// The hottest block.
    pub fn hottest(&self) -> Option<BlockId> {
        self.freq
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("frequencies are finite"))
            .map(|(i, _)| BlockId::new(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dom::DomTree;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpPred, Operand};
    use crate::types::Type;

    fn analyze(f: &Function) -> BlockFreq {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let li = LoopInfo::compute(f, &cfg, &dt);
        BlockFreq::compute(f, &cfg, &li)
    }

    #[test]
    fn branch_splits_probability() {
        let mut fb = FunctionBuilder::new("b", Type::Void);
        let p = fb.add_param(Type::I32);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        fb.branch(Operand::local(c), t, e);
        fb.switch_to(t);
        fb.jump(j);
        fb.switch_to(e);
        fb.jump(j);
        fb.switch_to(j);
        fb.ret(None);
        let f = fb.finish();
        let bf = analyze(&f);
        assert_eq!(bf.freq(BlockId(0)), 1.0);
        assert!((bf.freq(BlockId(1)) - 0.5).abs() < 1e-9);
        assert!((bf.freq(BlockId(2)) - 0.5).abs() < 1e-9);
        assert!((bf.freq(BlockId(3)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loop_bodies_are_hot() {
        let mut fb = FunctionBuilder::new("l", Type::Void);
        let p = fb.add_param(Type::I32);
        let h = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        fb.jump(h);
        fb.switch_to(h);
        fb.branch(Operand::local(c), body, exit);
        fb.switch_to(body);
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let bf = analyze(&f);
        assert!(
            bf.freq(BlockId(2)) > bf.freq(BlockId(0)),
            "loop body hotter than entry"
        );
        assert!(
            bf.freq(BlockId(2)) > bf.freq(BlockId(3)),
            "loop body hotter than exit"
        );
        let hot = bf.hottest().unwrap();
        assert!(hot == BlockId(1) || hot == BlockId(2));
    }
}
