//! Ergonomic construction of KIR functions.

use crate::constant::Const;
use crate::function::{Block, Function, Linkage, PadInfo};
use crate::ids::{BlockId, ExtId, FuncId, GlobalId, LocalId};
use crate::inst::{BinOp, Callee, CastKind, CmpPred, Inst, Operand, Term, UnOp};
use crate::types::Type;

/// Builds one [`Function`], tracking a current insertion block.
///
/// Terminators are set explicitly; blocks left unterminated keep the
/// placeholder [`Term::Unreachable`], which the verifier accepts only when
/// genuinely unreachable code is intended.
///
/// ```
/// use khaos_ir::builder::FunctionBuilder;
/// use khaos_ir::{Type, Operand, BinOp};
///
/// let mut b = FunctionBuilder::new("double_it", Type::I64);
/// let x = b.add_param(Type::I64);
/// let two = Operand::const_int(Type::I64, 2);
/// let r = b.bin(BinOp::Mul, Type::I64, Operand::local(x), two);
/// b.ret(Some(Operand::local(r)));
/// let f = b.finish();
/// assert_eq!(f.param_count, 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    cur: BlockId,
    params_closed: bool,
}

impl FunctionBuilder {
    /// Starts a new function; the insertion point is the entry block.
    pub fn new(name: impl Into<String>, ret_ty: Type) -> Self {
        FunctionBuilder {
            f: Function::new(name, ret_ty),
            cur: BlockId(0),
            params_closed: false,
        }
    }

    /// Adds a parameter of type `ty`.
    ///
    /// # Panics
    /// Panics if a non-parameter local has already been created; parameters
    /// must occupy the first local slots.
    pub fn add_param(&mut self, ty: Type) -> LocalId {
        assert!(
            !self.params_closed,
            "parameters must be added before other locals"
        );
        let id = self.f.new_local(ty);
        self.f.param_count += 1;
        id
    }

    /// Creates a non-parameter local of type `ty`.
    pub fn new_local(&mut self, ty: Type) -> LocalId {
        self.params_closed = true;
        self.f.new_local(ty)
    }

    /// Marks the function as exported.
    pub fn set_exported(&mut self) -> &mut Self {
        self.f.linkage = Linkage::Exported;
        self
    }

    /// Marks the function as variadic.
    pub fn set_variadic(&mut self) -> &mut Self {
        self.f.variadic = true;
        self
    }

    /// Adds an annotation string (e.g. `"vulnerable"`).
    pub fn annotate(&mut self, a: impl Into<String>) -> &mut Self {
        self.f.annotations.push(a.into());
        self
    }

    /// Creates a new (empty, unreachable-terminated) block.
    pub fn new_block(&mut self) -> BlockId {
        self.f.push_block(Block::with_term(Term::Unreachable))
    }

    /// Creates a new landing-pad block; `dst` receives the exception value.
    pub fn new_pad_block(&mut self, dst: Option<LocalId>) -> BlockId {
        let mut b = Block::with_term(Term::Unreachable);
        b.pad = Some(PadInfo { dst });
        self.f.push_block(b)
    }

    /// Moves the insertion point.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            b.index() < self.f.blocks.len(),
            "switch_to out-of-range block {b}"
        );
        self.cur = b;
    }

    /// The current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Read-only access to the function under construction.
    pub fn function(&self) -> &Function {
        &self.f
    }

    fn push(&mut self, i: Inst) {
        self.f.blocks[self.cur.index()].insts.push(i);
    }

    fn def(&mut self, ty: Type) -> LocalId {
        self.new_local(ty)
    }

    /// Emits a binary operation and returns the destination local.
    pub fn bin(&mut self, op: BinOp, ty: Type, lhs: Operand, rhs: Operand) -> LocalId {
        let dst = self.def(ty);
        self.push(Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// Emits a unary operation.
    pub fn un(&mut self, op: UnOp, ty: Type, src: Operand) -> LocalId {
        let dst = self.def(ty);
        self.push(Inst::Un { op, ty, dst, src });
        dst
    }

    /// Emits a comparison; the result local has type `i1`.
    pub fn cmp(&mut self, pred: CmpPred, ty: Type, lhs: Operand, rhs: Operand) -> LocalId {
        let dst = self.def(Type::I1);
        self.push(Inst::Cmp {
            pred,
            ty,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// Emits a select.
    pub fn select(
        &mut self,
        ty: Type,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    ) -> LocalId {
        let dst = self.def(ty);
        self.push(Inst::Select {
            ty,
            dst,
            cond,
            on_true,
            on_false,
        });
        dst
    }

    /// Emits a register copy.
    pub fn copy(&mut self, ty: Type, src: Operand) -> LocalId {
        let dst = self.def(ty);
        self.push(Inst::Copy { ty, dst, src });
        dst
    }

    /// Emits a copy into an existing local.
    pub fn copy_to(&mut self, dst: LocalId, src: Operand) {
        let ty = self.f.local_ty(dst);
        self.push(Inst::Copy { ty, dst, src });
    }

    /// Emits a cast.
    pub fn cast(&mut self, kind: CastKind, src: Operand, from: Type, to: Type) -> LocalId {
        let dst = self.def(to);
        self.push(Inst::Cast {
            kind,
            dst,
            src,
            from,
            to,
        });
        dst
    }

    /// Emits a load.
    pub fn load(&mut self, ty: Type, addr: Operand) -> LocalId {
        let dst = self.def(ty);
        self.push(Inst::Load { ty, dst, addr });
        dst
    }

    /// Emits a store.
    pub fn store(&mut self, ty: Type, value: Operand, addr: Operand) {
        self.push(Inst::Store { ty, addr, value });
    }

    /// Emits an alloca of `size` bytes.
    pub fn alloca(&mut self, size: u32) -> LocalId {
        let dst = self.def(Type::Ptr);
        self.push(Inst::Alloca {
            dst,
            size,
            align: 8,
        });
        dst
    }

    /// Emits byte-offset pointer arithmetic.
    pub fn ptradd(&mut self, base: Operand, offset: Operand) -> LocalId {
        let dst = self.def(Type::Ptr);
        self.push(Inst::PtrAdd { dst, base, offset });
        dst
    }

    /// Emits a direct call; returns the destination local for non-void callees.
    pub fn call(&mut self, func: FuncId, ret_ty: Type, args: Vec<Operand>) -> Option<LocalId> {
        let dst = if ret_ty == Type::Void {
            None
        } else {
            Some(self.def(ret_ty))
        };
        self.push(Inst::Call {
            dst,
            callee: Callee::Direct(func),
            args,
        });
        dst
    }

    /// Emits a call to an external function.
    pub fn call_ext(&mut self, ext: ExtId, ret_ty: Type, args: Vec<Operand>) -> Option<LocalId> {
        let dst = if ret_ty == Type::Void {
            None
        } else {
            Some(self.def(ret_ty))
        };
        self.push(Inst::Call {
            dst,
            callee: Callee::Ext(ext),
            args,
        });
        dst
    }

    /// Emits an indirect call through `ptr`.
    pub fn call_indirect(
        &mut self,
        ptr: Operand,
        ret_ty: Type,
        args: Vec<Operand>,
    ) -> Option<LocalId> {
        let dst = if ret_ty == Type::Void {
            None
        } else {
            Some(self.def(ret_ty))
        };
        self.push(Inst::Call {
            dst,
            callee: Callee::Indirect(ptr),
            args,
        });
        dst
    }

    /// Takes the address of a function.
    pub fn funcaddr(&mut self, func: FuncId) -> LocalId {
        let dst = self.def(Type::Ptr);
        self.push(Inst::FuncAddr { dst, func });
        dst
    }

    /// Takes the address of a global.
    pub fn globaladdr(&mut self, global: GlobalId) -> LocalId {
        let dst = self.def(Type::Ptr);
        self.push(Inst::GlobalAddr { dst, global });
        dst
    }

    /// Convenience: loads an integer constant into a fresh local.
    pub fn iconst(&mut self, ty: Type, value: i64) -> LocalId {
        self.copy(ty, Operand::Const(Const::int(ty, value)))
    }

    fn set_term(&mut self, t: Term) {
        self.f.blocks[self.cur.index()].term = t;
    }

    /// Terminates the current block with a jump.
    pub fn jump(&mut self, target: BlockId) {
        self.set_term(Term::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.set_term(Term::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminates the current block with a switch.
    pub fn switch(
        &mut self,
        ty: Type,
        value: Operand,
        cases: Vec<(i64, BlockId)>,
        default: BlockId,
    ) {
        self.set_term(Term::Switch {
            ty,
            value,
            cases,
            default,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.set_term(Term::Ret(value));
    }

    /// Terminates the current block with an invoke (call with unwind edge).
    pub fn invoke(
        &mut self,
        callee: Callee,
        ret_ty: Type,
        args: Vec<Operand>,
        normal: BlockId,
        unwind: BlockId,
    ) -> Option<LocalId> {
        let dst = if ret_ty == Type::Void {
            None
        } else {
            Some(self.def(ret_ty))
        };
        self.set_term(Term::Invoke {
            dst,
            callee,
            args,
            normal,
            unwind,
        });
        dst
    }

    /// Terminates the current block with `unreachable`.
    pub fn unreachable(&mut self) {
        self.set_term(Term::Unreachable);
    }

    /// Finishes construction and returns the function.
    pub fn finish(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_function() {
        let mut b = FunctionBuilder::new("f", Type::I32);
        let p = b.add_param(Type::I32);
        let r = b.bin(
            BinOp::Add,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 1),
        );
        b.ret(Some(Operand::local(r)));
        let f = b.finish();
        assert_eq!(f.param_count, 1);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.block(BlockId(0)).insts.len(), 1);
        assert!(matches!(f.block(BlockId(0)).term, Term::Ret(Some(_))));
    }

    #[test]
    fn builds_diamond_cfg() {
        let mut b = FunctionBuilder::new("g", Type::I32);
        let p = b.add_param(Type::I32);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        let out = b.new_local(Type::I32);
        b.branch(Operand::local(c), t, e);
        b.switch_to(t);
        b.copy_to(out, Operand::const_int(Type::I32, 1));
        b.jump(j);
        b.switch_to(e);
        b.copy_to(out, Operand::const_int(Type::I32, 2));
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(Operand::local(out)));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.block(BlockId(0)).term.successors(), vec![t, e]);
    }

    #[test]
    #[should_panic(expected = "parameters must be added before")]
    fn params_after_locals_panics() {
        let mut b = FunctionBuilder::new("h", Type::Void);
        let _ = b.new_local(Type::I32);
        let _ = b.add_param(Type::I32);
    }

    #[test]
    fn pad_blocks_are_marked() {
        let mut b = FunctionBuilder::new("e", Type::Void);
        let v = b.new_local(Type::I64);
        let pad = b.new_pad_block(Some(v));
        assert!(b.function().block(pad).is_pad());
    }
}
