//! Instructions, operands and block terminators.

use crate::constant::Const;
use crate::ids::{BlockId, ExtId, FuncId, GlobalId, LocalId};
use crate::types::Type;

/// A value read by an instruction: either a local register or a constant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// Read the current value of a local.
    Local(LocalId),
    /// An immediate constant.
    Const(Const),
}

impl Operand {
    /// Shorthand for `Operand::Local`.
    pub fn local(id: LocalId) -> Self {
        Operand::Local(id)
    }

    /// Shorthand for an integer immediate.
    pub fn const_int(ty: Type, value: i64) -> Self {
        Operand::Const(Const::int(ty, value))
    }

    /// Shorthand for a float immediate.
    pub fn const_float(ty: Type, value: f64) -> Self {
        Operand::Const(Const::float(ty, value))
    }

    /// Shorthand for the `i1` constants.
    pub fn const_bool(value: bool) -> Self {
        Operand::Const(Const::bool(value))
    }

    /// The zero value of `ty`.
    pub fn zero(ty: Type) -> Self {
        Operand::Const(Const::zero(ty))
    }

    /// Returns the local if this operand reads one.
    pub fn as_local(&self) -> Option<LocalId> {
        match self {
            Operand::Local(l) => Some(*l),
            Operand::Const(_) => None,
        }
    }

    /// Returns the constant if this operand is immediate.
    pub fn as_const(&self) -> Option<Const> {
        match self {
            Operand::Local(_) => None,
            Operand::Const(c) => Some(*c),
        }
    }
}

impl From<LocalId> for Operand {
    fn from(l: LocalId) -> Self {
        Operand::Local(l)
    }
}

impl From<Const> for Operand {
    fn from(c: Const) -> Self {
        Operand::Const(c)
    }
}

/// Integer and float binary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division. Traps on division by zero.
    SDiv,
    /// Unsigned division. Traps on division by zero.
    UDiv,
    /// Signed remainder. Traps on division by zero.
    SRem,
    /// Unsigned remainder. Traps on division by zero.
    URem,
    And,
    Or,
    Xor,
    /// Shift left; shift amount is masked to the width.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// All variants, for iteration in tests and generators.
    pub const ALL: [BinOp; 17] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::SDiv,
        BinOp::UDiv,
        BinOp::SRem,
        BinOp::URem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
        BinOp::FAdd,
        BinOp::FSub,
        BinOp::FMul,
        BinOp::FDiv,
    ];

    /// True for the float-typed operations.
    pub fn is_float_op(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// True for operations that can trap (integer division/remainder by zero).
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
    }

    /// True if `op(a, b) == op(b, a)`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// The textual mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

/// Unary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Float negation.
    FNeg,
}

impl UnOp {
    /// The textual mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::FNeg => "fneg",
        }
    }
}

/// Comparison predicates. `S`/`U` prefixes are signed/unsigned integer
/// comparisons; `F` prefixes are ordered float comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
    FEq,
    FNe,
    FLt,
    FLe,
    FGt,
    FGe,
}

impl CmpPred {
    /// All variants.
    pub const ALL: [CmpPred; 16] = [
        CmpPred::Eq,
        CmpPred::Ne,
        CmpPred::Slt,
        CmpPred::Sle,
        CmpPred::Sgt,
        CmpPred::Sge,
        CmpPred::Ult,
        CmpPred::Ule,
        CmpPred::Ugt,
        CmpPred::Uge,
        CmpPred::FEq,
        CmpPred::FNe,
        CmpPred::FLt,
        CmpPred::FLe,
        CmpPred::FGt,
        CmpPred::FGe,
    ];

    /// True for the float predicates.
    pub fn is_float_pred(self) -> bool {
        matches!(
            self,
            CmpPred::FEq | CmpPred::FNe | CmpPred::FLt | CmpPred::FLe | CmpPred::FGt | CmpPred::FGe
        )
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpPred {
        match self {
            CmpPred::Eq | CmpPred::Ne | CmpPred::FEq | CmpPred::FNe => self,
            CmpPred::Slt => CmpPred::Sgt,
            CmpPred::Sle => CmpPred::Sge,
            CmpPred::Sgt => CmpPred::Slt,
            CmpPred::Sge => CmpPred::Sle,
            CmpPred::Ult => CmpPred::Ugt,
            CmpPred::Ule => CmpPred::Uge,
            CmpPred::Ugt => CmpPred::Ult,
            CmpPred::Uge => CmpPred::Ule,
            CmpPred::FLt => CmpPred::FGt,
            CmpPred::FLe => CmpPred::FGe,
            CmpPred::FGt => CmpPred::FLt,
            CmpPred::FGe => CmpPred::FLe,
        }
    }

    /// The logically negated predicate.
    pub fn negated(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Slt => CmpPred::Sge,
            CmpPred::Sle => CmpPred::Sgt,
            CmpPred::Sgt => CmpPred::Sle,
            CmpPred::Sge => CmpPred::Slt,
            CmpPred::Ult => CmpPred::Uge,
            CmpPred::Ule => CmpPred::Ugt,
            CmpPred::Ugt => CmpPred::Ule,
            CmpPred::Uge => CmpPred::Ult,
            CmpPred::FEq => CmpPred::FNe,
            CmpPred::FNe => CmpPred::FEq,
            CmpPred::FLt => CmpPred::FGe,
            CmpPred::FLe => CmpPred::FGt,
            CmpPred::FGt => CmpPred::FLe,
            CmpPred::FGe => CmpPred::FLt,
        }
    }

    /// The textual mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
            CmpPred::FEq => "feq",
            CmpPred::FNe => "fne",
            CmpPred::FLt => "flt",
            CmpPred::FLe => "fle",
            CmpPred::FGt => "fgt",
            CmpPred::FGe => "fge",
        }
    }
}

/// Value conversion kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Integer truncation to a narrower type.
    Trunc,
    /// Zero extension to a wider integer type.
    ZExt,
    /// Sign extension to a wider integer type.
    SExt,
    /// Float → signed integer (round toward zero, saturating).
    FpToSi,
    /// Signed integer → float.
    SiToFp,
    /// Float narrowing (`f64` → `f32`).
    FpTrunc,
    /// Float widening (`f32` → `f64`).
    FpExt,
    /// Pointer → `i64`.
    PtrToInt,
    /// `i64` → pointer.
    IntToPtr,
}

impl CastKind {
    /// The textual mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::Trunc => "trunc",
            CastKind::ZExt => "zext",
            CastKind::SExt => "sext",
            CastKind::FpToSi => "fptosi",
            CastKind::SiToFp => "sitofp",
            CastKind::FpTrunc => "fptrunc",
            CastKind::FpExt => "fpext",
            CastKind::PtrToInt => "ptrtoint",
            CastKind::IntToPtr => "inttoptr",
        }
    }
}

/// The target of a call.
#[derive(Clone, Debug, PartialEq)]
pub enum Callee {
    /// A function in the same module.
    Direct(FuncId),
    /// A declared external function, executed by the VM's synthetic libc.
    Ext(ExtId),
    /// An indirect call through a pointer value.
    Indirect(Operand),
}

/// A non-terminator instruction.
///
/// Every instruction defines at most one local ([`Inst::def`]) and reads a
/// set of operands ([`Inst::for_each_use`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    /// `dst = op ty lhs, rhs`
    Bin {
        op: BinOp,
        ty: Type,
        dst: LocalId,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = op ty src`
    Un {
        op: UnOp,
        ty: Type,
        dst: LocalId,
        src: Operand,
    },
    /// `dst = cmp pred ty lhs, rhs` — `dst` has type `i1`.
    Cmp {
        pred: CmpPred,
        ty: Type,
        dst: LocalId,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = select cond, on_true, on_false` (all of type `ty`).
    Select {
        ty: Type,
        dst: LocalId,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    /// `dst = copy ty src` — register move.
    Copy {
        ty: Type,
        dst: LocalId,
        src: Operand,
    },
    /// `dst = cast kind src : from -> to`
    Cast {
        kind: CastKind,
        dst: LocalId,
        src: Operand,
        from: Type,
        to: Type,
    },
    /// `dst = load ty, addr`
    Load {
        ty: Type,
        dst: LocalId,
        addr: Operand,
    },
    /// `store ty value, addr`
    Store {
        ty: Type,
        addr: Operand,
        value: Operand,
    },
    /// `dst = alloca size, align` — reserves `size` bytes in the current
    /// frame and yields the address. Executing the same alloca repeatedly
    /// (e.g. in a loop) yields fresh slots, as in C.
    Alloca { dst: LocalId, size: u32, align: u32 },
    /// `dst = ptradd base, offset` — byte-offset pointer arithmetic.
    PtrAdd {
        dst: LocalId,
        base: Operand,
        offset: Operand,
    },
    /// `dst = call callee(args...)` — `dst` is `None` for void calls.
    Call {
        dst: Option<LocalId>,
        callee: Callee,
        args: Vec<Operand>,
    },
    /// `dst = funcaddr @f` — takes the address of a function.
    FuncAddr { dst: LocalId, func: FuncId },
    /// `dst = globaladdr @g` — takes the address of a global.
    GlobalAddr { dst: LocalId, global: GlobalId },
}

impl Inst {
    /// The local defined by this instruction, if any.
    pub fn def(&self) -> Option<LocalId> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Alloca { dst, .. }
            | Inst::PtrAdd { dst, .. }
            | Inst::FuncAddr { dst, .. }
            | Inst::GlobalAddr { dst, .. } => Some(*dst),
            Inst::Store { .. } => None,
            Inst::Call { dst, .. } => *dst,
        }
    }

    /// A mutable reference to the defined local, if any.
    pub fn def_mut(&mut self) -> Option<&mut LocalId> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Alloca { dst, .. }
            | Inst::PtrAdd { dst, .. }
            | Inst::FuncAddr { dst, .. }
            | Inst::GlobalAddr { dst, .. } => Some(dst),
            Inst::Store { .. } => None,
            Inst::Call { dst, .. } => dst.as_mut(),
        }
    }

    /// Visits every operand this instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Un { src, .. } | Inst::Copy { src, .. } | Inst::Cast { src, .. } => f(src),
            Inst::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { addr, value, .. } => {
                f(addr);
                f(value);
            }
            Inst::Alloca { .. } | Inst::FuncAddr { .. } | Inst::GlobalAddr { .. } => {}
            Inst::PtrAdd { base, offset, .. } => {
                f(base);
                f(offset);
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(p) = callee {
                    f(p);
                }
                for a in args {
                    f(a);
                }
            }
        }
    }

    /// Visits every operand this instruction reads, mutably.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Un { src, .. } | Inst::Copy { src, .. } | Inst::Cast { src, .. } => f(src),
            Inst::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { addr, value, .. } => {
                f(addr);
                f(value);
            }
            Inst::Alloca { .. } | Inst::FuncAddr { .. } | Inst::GlobalAddr { .. } => {}
            Inst::PtrAdd { base, offset, .. } => {
                f(base);
                f(offset);
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(p) = callee {
                    f(p);
                }
                for a in args {
                    f(a);
                }
            }
        }
    }

    /// True if removing this instruction (when its def is dead) is safe:
    /// no memory writes, no calls, no traps.
    pub fn is_pure(&self) -> bool {
        match self {
            Inst::Bin { op, .. } => !op.can_trap(),
            Inst::Un { .. }
            | Inst::Cmp { .. }
            | Inst::Select { .. }
            | Inst::Copy { .. }
            | Inst::Cast { .. }
            | Inst::PtrAdd { .. }
            | Inst::FuncAddr { .. }
            | Inst::GlobalAddr { .. } => true,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Alloca { .. } | Inst::Call { .. } => {
                false
            }
        }
    }
}

/// A basic-block terminator.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on an `i1` operand.
    Branch {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Multi-way switch on an integer operand.
    Switch {
        ty: Type,
        value: Operand,
        cases: Vec<(i64, BlockId)>,
        default: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
    /// A call with an exception edge: control continues at `normal`, or at
    /// `unwind` (a landing pad) if the callee throws.
    Invoke {
        dst: Option<LocalId>,
        callee: Callee,
        args: Vec<Operand>,
        normal: BlockId,
        unwind: BlockId,
    },
    /// Marks unreachable control flow; the VM traps if executed.
    Unreachable,
}

impl Term {
    /// The local defined by this terminator (only `Invoke` defines one).
    pub fn def(&self) -> Option<LocalId> {
        match self {
            Term::Invoke { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Visits every operand this terminator reads.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Term::Jump(_) | Term::Unreachable => {}
            Term::Branch { cond, .. } => f(cond),
            Term::Switch { value, .. } => f(value),
            Term::Ret(Some(v)) => f(v),
            Term::Ret(None) => {}
            Term::Invoke { callee, args, .. } => {
                if let Callee::Indirect(p) = callee {
                    f(p);
                }
                for a in args {
                    f(a);
                }
            }
        }
    }

    /// Visits every operand this terminator reads, mutably.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Term::Jump(_) | Term::Unreachable => {}
            Term::Branch { cond, .. } => f(cond),
            Term::Switch { value, .. } => f(value),
            Term::Ret(Some(v)) => f(v),
            Term::Ret(None) => {}
            Term::Invoke { callee, args, .. } => {
                if let Callee::Indirect(p) = callee {
                    f(p);
                }
                for a in args {
                    f(a);
                }
            }
        }
    }

    /// Visits every successor block id.
    pub fn for_each_successor(&self, mut f: impl FnMut(BlockId)) {
        match self {
            Term::Jump(t) => f(*t),
            Term::Branch {
                then_bb, else_bb, ..
            } => {
                f(*then_bb);
                f(*else_bb);
            }
            Term::Switch { cases, default, .. } => {
                for (_, t) in cases {
                    f(*t);
                }
                f(*default);
            }
            Term::Ret(_) | Term::Unreachable => {}
            Term::Invoke { normal, unwind, .. } => {
                f(*normal);
                f(*unwind);
            }
        }
    }

    /// Visits every successor block id, mutably (for retargeting edges).
    pub fn for_each_successor_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            Term::Jump(t) => f(t),
            Term::Branch {
                then_bb, else_bb, ..
            } => {
                f(then_bb);
                f(else_bb);
            }
            Term::Switch { cases, default, .. } => {
                for (_, t) in cases {
                    f(t);
                }
                f(default);
            }
            Term::Ret(_) | Term::Unreachable => {}
            Term::Invoke { normal, unwind, .. } => {
                f(normal);
                f(unwind);
            }
        }
    }

    /// Collects the successors into a vector.
    pub fn successors(&self) -> Vec<BlockId> {
        let mut v = Vec::new();
        self.for_each_successor(|b| v.push(b));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_constructors() {
        assert_eq!(
            Operand::const_int(Type::I32, 5).as_const(),
            Some(Const::int(Type::I32, 5))
        );
        assert_eq!(Operand::local(LocalId(3)).as_local(), Some(LocalId(3)));
        assert_eq!(Operand::zero(Type::Ptr).as_const(), Some(Const::Null));
        let o: Operand = LocalId(1).into();
        assert_eq!(o, Operand::Local(LocalId(1)));
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::FAdd.is_float_op());
        assert!(!BinOp::Add.is_float_op());
        assert!(BinOp::SDiv.can_trap());
        assert!(
            !BinOp::FDiv.can_trap(),
            "float division yields inf, no trap"
        );
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
    }

    #[test]
    fn pred_negation_is_involutive() {
        for p in CmpPred::ALL {
            assert_eq!(p.negated().negated(), p);
            assert_eq!(p.swapped().swapped(), p);
        }
    }

    #[test]
    fn inst_def_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            ty: Type::I32,
            dst: LocalId(2),
            lhs: Operand::local(LocalId(0)),
            rhs: Operand::const_int(Type::I32, 1),
        };
        assert_eq!(i.def(), Some(LocalId(2)));
        let mut uses = Vec::new();
        i.for_each_use(|o| uses.push(*o));
        assert_eq!(uses.len(), 2);
        assert!(i.is_pure());

        let s = Inst::Store {
            ty: Type::I64,
            addr: Operand::local(LocalId(1)),
            value: Operand::local(LocalId(0)),
        };
        assert_eq!(s.def(), None);
        assert!(!s.is_pure());
    }

    #[test]
    fn call_uses_include_indirect_target() {
        let c = Inst::Call {
            dst: None,
            callee: Callee::Indirect(Operand::local(LocalId(9))),
            args: vec![Operand::local(LocalId(1))],
        };
        let mut uses = Vec::new();
        c.for_each_use(|o| uses.push(*o));
        assert_eq!(uses.len(), 2);
        assert_eq!(uses[0].as_local(), Some(LocalId(9)));
    }

    #[test]
    fn term_successors() {
        let t = Term::Switch {
            ty: Type::I32,
            value: Operand::local(LocalId(0)),
            cases: vec![(0, BlockId(1)), (1, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(Term::Ret(None).successors(), Vec::<BlockId>::new());
        let inv = Term::Invoke {
            dst: Some(LocalId(4)),
            callee: Callee::Direct(FuncId(0)),
            args: vec![],
            normal: BlockId(5),
            unwind: BlockId(6),
        };
        assert_eq!(inv.successors(), vec![BlockId(5), BlockId(6)]);
        assert_eq!(inv.def(), Some(LocalId(4)));
    }

    #[test]
    fn retarget_edges_mutably() {
        let mut t = Term::Jump(BlockId(0));
        t.for_each_successor_mut(|b| *b = BlockId(7));
        assert_eq!(t, Term::Jump(BlockId(7)));
    }
}
