//! Functions, basic blocks and provenance.

use crate::ids::{BlockId, LocalId};
use crate::inst::{Inst, Operand, Term};
use crate::types::Type;

/// Whether a function is visible outside its module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Module-private; the obfuscator may change its signature freely.
    Internal,
    /// Part of the module interface; callers outside the module exist, so
    /// signature changes require a trampoline (paper §3.3.3).
    Exported,
}

/// Landing-pad marker on a block.
///
/// A block carrying `PadInfo` may only be entered through the `unwind` edge
/// of a [`Term::Invoke`]; `dst` receives the thrown value (an `i64`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PadInfo {
    /// Local that receives the in-flight exception value, if bound.
    pub dst: Option<LocalId>,
}

/// Lineage of a function with respect to the pre-obfuscation program.
///
/// The diffing evaluation needs the paper's relaxed pairing judgment (§4.2):
/// an original function pairs successfully with any of its `sepFuncs`, its
/// `remFunc`, or any `fusFunc` it participates in. `origins` carries the
/// set of original source-function names this function's code descends from.
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    /// How this function came to be.
    pub kind: ProvKind,
    /// Names of the original functions whose code is (partly) inside.
    pub origins: Vec<String>,
}

/// The transformation that produced a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProvKind {
    /// Present in the source program.
    Original,
    /// A region separated out of an original function by fission.
    Sep,
    /// The remnant of an original function after fission.
    Rem,
    /// The aggregation of two functions by fusion.
    Fused,
    /// A forwarding stub generated for exported/escaping fused functions.
    Trampoline,
}

impl Provenance {
    /// Provenance of an unobfuscated function named `name`.
    pub fn original(name: impl Into<String>) -> Self {
        Provenance {
            kind: ProvKind::Original,
            origins: vec![name.into()],
        }
    }

    /// True if any of this function's code descends from `origin`.
    pub fn has_origin(&self, origin: &str) -> bool {
        self.origins.iter().any(|o| o == origin)
    }
}

/// A basic block: a straight-line instruction list plus one terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// The non-terminator instructions, in execution order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
    /// Landing-pad marker (see [`PadInfo`]).
    pub pad: Option<PadInfo>,
}

impl Block {
    /// A block that falls through to `target`.
    pub fn jump_to(target: BlockId) -> Self {
        Block {
            insts: Vec::new(),
            term: Term::Jump(target),
            pad: None,
        }
    }

    /// A block holding only `term`.
    pub fn with_term(term: Term) -> Self {
        Block {
            insts: Vec::new(),
            term,
            pad: None,
        }
    }

    /// True if this block is a landing pad.
    pub fn is_pad(&self) -> bool {
        self.pad.is_some()
    }
}

/// A KIR function.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Symbol name. Unique within a module.
    pub name: String,
    /// Types of all locals; params occupy the first `param_count` slots.
    pub locals: Vec<Type>,
    /// Number of leading locals that are parameters.
    pub param_count: u32,
    /// Return type (may be [`Type::Void`]).
    pub ret_ty: Type,
    /// Basic blocks. `BlockId(0)` is the entry block.
    pub blocks: Vec<Block>,
    /// Visibility.
    pub linkage: Linkage,
    /// True for C-style variadic functions (never fused, per §3.3.1).
    pub variadic: bool,
    /// Lineage for the diffing ground truth.
    pub provenance: Provenance,
    /// Free-form markers; the workloads mark vulnerable functions with
    /// `"vulnerable"` for the escape@k experiment.
    pub annotations: Vec<String>,
}

impl Function {
    /// Creates an empty function with the given name and return type.
    ///
    /// The entry block is created, terminated by [`Term::Unreachable`] until
    /// real code is added.
    pub fn new(name: impl Into<String>, ret_ty: Type) -> Self {
        let name = name.into();
        Function {
            provenance: Provenance::original(name.clone()),
            name,
            locals: Vec::new(),
            param_count: 0,
            ret_ty,
            blocks: vec![Block::with_term(Term::Unreachable)],
            linkage: Linkage::Internal,
            variadic: false,
            annotations: Vec::new(),
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Ids of the parameter locals.
    pub fn params(&self) -> impl Iterator<Item = LocalId> + '_ {
        (0..self.param_count).map(LocalId)
    }

    /// Types of the parameters.
    pub fn param_types(&self) -> &[Type] {
        &self.locals[..self.param_count as usize]
    }

    /// Appends a fresh local of type `ty` and returns its id.
    pub fn new_local(&mut self, ty: Type) -> LocalId {
        let id = LocalId::new(self.locals.len());
        self.locals.push(ty);
        id
    }

    /// The type of local `l`.
    ///
    /// # Panics
    /// Panics if `l` is out of range.
    pub fn local_ty(&self, l: LocalId) -> Type {
        self.locals[l.index()]
    }

    /// Appends a block and returns its id.
    pub fn push_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Shared access to a block.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i), b))
    }

    /// Total instruction count (including terminators), a cheap size metric
    /// used by inlining heuristics and statistics.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }

    /// True if the function carries the given annotation.
    pub fn has_annotation(&self, a: &str) -> bool {
        self.annotations.iter().any(|x| x == a)
    }

    /// Visits every operand read anywhere in the function, mutably.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        for b in &mut self.blocks {
            for i in &mut b.insts {
                i.for_each_use_mut(&mut f);
            }
            b.term.for_each_use_mut(&mut f);
        }
    }

    /// Replaces every read of local `from` with the operand `to`.
    pub fn replace_uses(&mut self, from: LocalId, to: Operand) {
        self.for_each_use_mut(|o| {
            if o.as_local() == Some(from) {
                *o = to;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    #[test]
    fn new_function_has_entry() {
        let f = Function::new("f", Type::Void);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.block(f.entry()).term, Term::Unreachable);
        assert_eq!(f.provenance.kind, ProvKind::Original);
        assert!(f.provenance.has_origin("f"));
    }

    #[test]
    fn locals_and_params() {
        let mut f = Function::new("g", Type::I32);
        let a = f.new_local(Type::I32);
        let b = f.new_local(Type::F64);
        f.param_count = 1;
        assert_eq!(f.params().collect::<Vec<_>>(), vec![a]);
        assert_eq!(f.param_types(), &[Type::I32]);
        assert_eq!(f.local_ty(b), Type::F64);
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let mut f = Function::new("h", Type::I32);
        let a = f.new_local(Type::I32);
        let d = f.new_local(Type::I32);
        f.param_count = 1;
        f.block_mut(BlockId(0)).insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Type::I32,
            dst: d,
            lhs: Operand::local(a),
            rhs: Operand::local(a),
        });
        f.block_mut(BlockId(0)).term = Term::Ret(Some(Operand::local(d)));
        f.replace_uses(a, Operand::const_int(Type::I32, 7));
        match &f.block(BlockId(0)).insts[0] {
            Inst::Bin { lhs, rhs, .. } => {
                assert_eq!(lhs.as_const().unwrap().normalized(), Some(7));
                assert_eq!(rhs.as_const().unwrap().normalized(), Some(7));
            }
            other => panic!("unexpected inst {other:?}"),
        }
    }

    #[test]
    fn inst_count_includes_terminators() {
        let mut f = Function::new("k", Type::Void);
        f.block_mut(BlockId(0)).term = Term::Ret(None);
        assert_eq!(f.inst_count(), 1);
        let b = f.push_block(Block::jump_to(BlockId(0)));
        assert_eq!(f.inst_count(), 2);
        assert!(!f.block(b).is_pad());
    }

    #[test]
    fn annotations() {
        let mut f = Function::new("v", Type::Void);
        f.annotations.push("vulnerable".to_string());
        assert!(f.has_annotation("vulnerable"));
        assert!(!f.has_annotation("hot"));
    }
}
