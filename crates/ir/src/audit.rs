//! Semantic audit: observable-behavior summaries and the before/after
//! check (`VerifyPolicy::AuditAfterEach`) that every pipeline can run.
//!
//! [`verify_module`](crate::verify::verify_module) proves a module is
//! *well-formed*; it cannot tell that a pass silently dropped a store,
//! rewired a call, or orphaned an effectful block. This module adds that
//! layer: [`ModuleSummary::compute`] distills a module's observable
//! behavior — per audit root (exported functions and `main`), the
//! call-graph-reachable external-call set, global read/write/escape sets,
//! and signature/linkage facts — and [`ModuleSummary::diff`] compares the
//! summaries taken before and after a transformation, reporting each
//! violation as a structured [`AuditDiagnostic`].
//!
//! **Comparison direction.** Summaries are *may*-behavior over
//! statically-executable code ([`executable_blocks`]), and the legal
//! transforms in this repo only ever grow that approximation: fusion
//! merges two bodies behind a ctrl dispatch (each caller now may-reaches
//! both effect domains), bogus control flow adds junk clones of real
//! effects plus writes to fresh opaque globals. A transform is therefore
//! flagged when an effect *disappears* — every before-effect must still
//! be present after — while new effects are tolerated. All three
//! miscompile classes the auditor is tested against (dropped stores,
//! retargeted calls, orphaned blocks) manifest as missing effects, so the
//! one-sided check loses no detection power. Exported signatures are
//! compared exactly in both directions: the linker surface may not drift.
//!
//! **Comparison granularity.** Effect lanes are compared on the *module*
//! closure; only signature/linkage facts are compared per root. Per-root
//! effect attribution is legitimately non-monotone under the optimizer:
//! the inliner specializes a callee body with one root's constant
//! arguments (a fused function's ctrl dispatch is the canonical case),
//! constant propagation folds the now-decidable guard, and the guarded
//! effect becomes statically dead for that root while remaining live
//! elsewhere — observed on every workload suite. The module closure is
//! stable under every legal pass (an effect leaves it only when *no*
//! root can reach it, which legal passes never cause) and still catches
//! the mutation classes, each of which removes an effect's last
//! reachable occurrence. The per-root [`ModuleSummary::roots`] map stays
//! available for reporting (`khaos-lint` prints it); it just is not a
//! pass/fail criterion.

use crate::analysis::dataflow::executable_blocks;
use crate::function::Linkage;
use crate::inst::{Callee, Inst, Operand, Term};
use crate::module::{GInit, Module};
use crate::types::Type;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub mod mutation;

/// Which audited fact a diagnostic violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditKind {
    /// Exported function set / signature / linkage drift.
    Interface,
    /// A reachable external call disappeared.
    ExtCalls,
    /// A reachable global read disappeared.
    GlobalReads,
    /// A reachable global write disappeared.
    GlobalWrites,
    /// A reachable global-address escape disappeared.
    GlobalEscapes,
}

impl fmt::Display for AuditKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditKind::Interface => "interface",
            AuditKind::ExtCalls => "ext-calls",
            AuditKind::GlobalReads => "global-reads",
            AuditKind::GlobalWrites => "global-writes",
            AuditKind::GlobalEscapes => "global-escapes",
        };
        f.write_str(s)
    }
}

/// One audited-behavior violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditDiagnostic {
    /// The audit root the violation was observed from (`None` =
    /// module-wide root).
    pub function: Option<String>,
    /// The violated fact class.
    pub kind: AuditKind,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for AuditDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "[{}] root {func}: {}", self.kind, self.detail),
            None => write!(f, "[{}] module: {}", self.kind, self.detail),
        }
    }
}

impl std::error::Error for AuditDiagnostic {}

/// The observable effects reachable from one audit root.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EffectSet {
    /// Names of external functions that may be called.
    pub ext_calls: BTreeSet<String>,
    /// Names of globals that may be read.
    pub global_reads: BTreeSet<String>,
    /// Names of globals that may be written.
    pub global_writes: BTreeSet<String>,
    /// Names of globals whose address may escape (stored to memory,
    /// passed to an external or indirect callee, or returned by a root).
    pub global_escapes: BTreeSet<String>,
}

impl EffectSet {
    fn union_with(&mut self, o: &EffectSet) {
        self.ext_calls.extend(o.ext_calls.iter().cloned());
        self.global_reads.extend(o.global_reads.iter().cloned());
        self.global_writes.extend(o.global_writes.iter().cloned());
        self.global_escapes.extend(o.global_escapes.iter().cloned());
    }

    /// Elements of `self` absent from `other` (the dropped effects), as
    /// (kind, name) pairs.
    fn missing_from(&self, other: &EffectSet) -> Vec<(AuditKind, String)> {
        let mut out = Vec::new();
        let lanes = [
            (AuditKind::ExtCalls, &self.ext_calls, &other.ext_calls),
            (
                AuditKind::GlobalReads,
                &self.global_reads,
                &other.global_reads,
            ),
            (
                AuditKind::GlobalWrites,
                &self.global_writes,
                &other.global_writes,
            ),
            (
                AuditKind::GlobalEscapes,
                &self.global_escapes,
                &other.global_escapes,
            ),
        ];
        for (kind, mine, theirs) in lanes {
            for name in mine.difference(theirs) {
                out.push((kind, name.clone()));
            }
        }
        out
    }
}

/// Linker-surface facts of one exported function (or `main`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SigFacts {
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret_ty: Type,
    /// Variadic flag.
    pub variadic: bool,
    /// True when the function is `Linkage::Exported` (false only for a
    /// non-exported `main`).
    pub exported: bool,
}

/// A module's audited observable behavior.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleSummary {
    /// Signature facts per audit root, keyed by function name.
    pub sigs: BTreeMap<String, SigFacts>,
    /// Reachable effects per audit root, keyed by function name.
    pub roots: BTreeMap<String, EffectSet>,
    /// Effects reachable from the module-wide pseudo-root: every audit
    /// root plus every address-taken function.
    pub module_effects: EffectSet,
    /// Names of the module's globals.
    pub global_names: BTreeSet<String>,
}

/// Per-function facts shared by the summary and the mutation generators.
pub(crate) struct FnFacts {
    /// Intra-function effects over executable blocks.
    pub effects: EffectSet,
    /// Directly-called function indices (executable call/invoke sites).
    pub callees: BTreeSet<usize>,
    /// True when an executable indirect call/invoke exists.
    pub has_indirect_call: bool,
    /// Per-local set of global ids the local may point to.
    pub ptr: Vec<BTreeSet<usize>>,
    /// Per-block static executability ([`executable_blocks`]).
    pub exec: Vec<bool>,
    /// Function indices whose address is taken here (executable code).
    pub taken: BTreeSet<usize>,
}

pub(crate) struct ModuleFacts {
    pub fns: Vec<FnFacts>,
    /// Address-taken functions: executable `FuncAddr` sites plus
    /// `GInit::FuncPtr` initializers.
    pub address_taken: BTreeSet<usize>,
    /// Audit-root function indices (exported or named `main`).
    pub root_fns: Vec<usize>,
}

fn operand_globals<'a>(ptr: &'a [BTreeSet<usize>], o: &Operand) -> Option<&'a BTreeSet<usize>> {
    o.as_local()
        .map(|l| &ptr[l.index()])
        .filter(|s| !s.is_empty())
}

impl ModuleFacts {
    pub(crate) fn compute(m: &Module) -> ModuleFacts {
        let n = m.functions.len();
        let exec: Vec<Vec<bool>> = m.functions.iter().map(executable_blocks).collect();
        let mut ptr: Vec<Vec<BTreeSet<usize>>> = m
            .functions
            .iter()
            .map(|f| vec![BTreeSet::new(); f.locals.len()])
            .collect();
        let mut ret_globals: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];

        // Flow-insensitive global-pointer propagation to a module-wide
        // fixpoint. Interprocedural flow covers both directions fission
        // and inline move pointers: direct-call arguments seed callee
        // parameters, direct-call results receive the callee's return
        // set. Loads never yield global pointers (no initializer form
        // stores a global's address), so the chains stay register-level.
        let mut changed = true;
        while changed {
            changed = false;
            for (fi, f) in m.functions.iter().enumerate() {
                // (callee, param index, globals) updates applied after the
                // scan of this function, so `ptr[fi]` can be borrowed.
                let mut pending: Vec<(usize, usize, BTreeSet<usize>)> = Vec::new();
                let mut pending_ret: BTreeSet<usize> = BTreeSet::new();
                let pf = &mut ptr[fi];
                let flow = |dst: crate::ids::LocalId,
                            srcs: &[&Operand],
                            pf: &mut Vec<BTreeSet<usize>>,
                            changed: &mut bool| {
                    let mut add: BTreeSet<usize> = BTreeSet::new();
                    for s in srcs {
                        if let Some(g) = operand_globals(pf, s) {
                            add.extend(g.iter().copied());
                        }
                    }
                    for g in add {
                        if pf[dst.index()].insert(g) {
                            *changed = true;
                        }
                    }
                };
                let call_flow = |dst: Option<crate::ids::LocalId>,
                                 callee: &Callee,
                                 args: &[Operand],
                                 pf: &mut Vec<BTreeSet<usize>>,
                                 pending: &mut Vec<(usize, usize, BTreeSet<usize>)>,
                                 changed: &mut bool| {
                    if let Callee::Direct(c) = callee {
                        let ci = c.index();
                        let pc = m.functions[ci].param_count as usize;
                        for (k, a) in args.iter().enumerate().take(pc) {
                            if let Some(g) = operand_globals(pf, a) {
                                pending.push((ci, k, g.clone()));
                            }
                        }
                        if let Some(d) = dst {
                            for g in ret_globals[ci].clone() {
                                if pf[d.index()].insert(g) {
                                    *changed = true;
                                }
                            }
                        }
                    }
                };
                for (bi, block) in f.blocks.iter().enumerate() {
                    if !exec[fi][bi] {
                        continue;
                    }
                    for inst in &block.insts {
                        match inst {
                            Inst::GlobalAddr { dst, global }
                                if pf[dst.index()].insert(global.index()) =>
                            {
                                changed = true;
                            }
                            Inst::Copy { dst, src, .. } => flow(*dst, &[src], pf, &mut changed),
                            Inst::Cast { dst, src, .. } => flow(*dst, &[src], pf, &mut changed),
                            Inst::PtrAdd { dst, base, .. } => flow(*dst, &[base], pf, &mut changed),
                            Inst::Select {
                                dst,
                                on_true,
                                on_false,
                                ..
                            } => flow(*dst, &[on_true, on_false], pf, &mut changed),
                            Inst::Call { dst, callee, args } => {
                                call_flow(*dst, callee, args, pf, &mut pending, &mut changed)
                            }
                            _ => {}
                        }
                    }
                    match &block.term {
                        Term::Invoke {
                            dst, callee, args, ..
                        } => call_flow(*dst, callee, args, pf, &mut pending, &mut changed),
                        Term::Ret(Some(v)) => {
                            if let Some(g) = operand_globals(pf, v) {
                                pending_ret.extend(g.iter().copied());
                            }
                        }
                        _ => {}
                    }
                }
                for g in pending_ret {
                    if ret_globals[fi].insert(g) {
                        changed = true;
                    }
                }
                for (ci, k, gs) in pending {
                    for g in gs {
                        if ptr[ci][k].insert(g) {
                            changed = true;
                        }
                    }
                }
            }
        }

        // Effect collection over the converged pointer sets.
        let gname = |g: usize| m.globals[g].name.clone();
        let mut fns: Vec<FnFacts> = Vec::with_capacity(n);
        for (fi, f) in m.functions.iter().enumerate() {
            let pf = &ptr[fi];
            let mut fx = FnFacts {
                effects: EffectSet::default(),
                callees: BTreeSet::new(),
                has_indirect_call: false,
                ptr: Vec::new(),
                exec: exec[fi].clone(),
                taken: BTreeSet::new(),
            };
            let is_root = f.linkage == Linkage::Exported || f.name == "main";
            let escape = |o: &Operand, fx: &mut FnFacts| {
                if let Some(g) = operand_globals(pf, o) {
                    fx.effects
                        .global_escapes
                        .extend(g.iter().map(|&x| gname(x)));
                }
            };
            for (bi, block) in f.blocks.iter().enumerate() {
                if !exec[fi][bi] {
                    continue;
                }
                let call_site = |callee: &Callee, args: &[Operand], fx: &mut FnFacts| match callee {
                    Callee::Direct(c) => {
                        fx.callees.insert(c.index());
                    }
                    Callee::Ext(e) => {
                        fx.effects
                            .ext_calls
                            .insert(m.externals[e.index()].name.clone());
                        for a in args {
                            escape(a, fx);
                        }
                    }
                    Callee::Indirect(p) => {
                        fx.has_indirect_call = true;
                        escape(p, fx);
                        for a in args {
                            escape(a, fx);
                        }
                    }
                };
                for inst in &block.insts {
                    match inst {
                        Inst::Load { addr, .. } => {
                            if let Some(g) = operand_globals(pf, addr) {
                                fx.effects.global_reads.extend(g.iter().map(|&x| gname(x)));
                            }
                        }
                        Inst::Store { addr, value, .. } => {
                            if let Some(g) = operand_globals(pf, addr) {
                                fx.effects.global_writes.extend(g.iter().map(|&x| gname(x)));
                            }
                            escape(value, &mut fx);
                        }
                        Inst::FuncAddr { func, .. } => {
                            fx.taken.insert(func.index());
                        }
                        Inst::Call { callee, args, .. } => call_site(callee, args, &mut fx),
                        _ => {}
                    }
                }
                match &block.term {
                    Term::Invoke { callee, args, .. } => call_site(callee, args, &mut fx),
                    Term::Ret(Some(v)) if is_root => escape(v, &mut fx),
                    _ => {}
                }
            }
            fx.ptr = pf.clone();
            fns.push(fx);
        }

        let mut address_taken: BTreeSet<usize> = BTreeSet::new();
        for fx in &fns {
            address_taken.extend(fx.taken.iter().copied());
        }
        for g in &m.globals {
            for init in &g.init {
                if let GInit::FuncPtr { func, .. } = init {
                    address_taken.insert(func.index());
                }
            }
        }
        let root_fns: Vec<usize> = m
            .functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.linkage == Linkage::Exported || f.name == "main")
            .map(|(i, _)| i)
            .collect();
        ModuleFacts {
            fns,
            address_taken,
            root_fns,
        }
    }

    /// Effects of the direct-call closure seeded from `start`; when the
    /// closure contains an indirect call the address-taken set joins the
    /// frontier (an indirect site may target any of them).
    pub(crate) fn closure_effects(&self, start: impl IntoIterator<Item = usize>) -> EffectSet {
        let mut eff = EffectSet::default();
        for fi in self.closure(start) {
            eff.union_with(&self.fns[fi].effects);
        }
        eff
    }

    /// Function indices in the call closure of `start` (see
    /// [`Self::closure_effects`] for the indirect-call rule).
    pub(crate) fn closure(&self, start: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = start.into_iter().collect();
        let mut indirect_seen = false;
        while let Some(fi) = queue.pop() {
            if !visited.insert(fi) {
                continue;
            }
            let fx = &self.fns[fi];
            queue.extend(fx.callees.iter().copied());
            if fx.has_indirect_call && !indirect_seen {
                indirect_seen = true;
                queue.extend(self.address_taken.iter().copied());
            }
        }
        visited
    }

    /// Functions reachable from the module pseudo-root (audit roots plus
    /// address-taken functions).
    pub(crate) fn reachable_from_roots(&self) -> BTreeSet<usize> {
        let seeds: Vec<usize> = self
            .root_fns
            .iter()
            .chain(self.address_taken.iter())
            .copied()
            .collect();
        self.closure(seeds)
    }
}

impl ModuleSummary {
    /// Computes the audited summary of `m`.
    pub fn compute(m: &Module) -> ModuleSummary {
        let facts = ModuleFacts::compute(m);
        let mut sigs = BTreeMap::new();
        let mut roots = BTreeMap::new();
        for &fi in &facts.root_fns {
            let f = &m.functions[fi];
            sigs.insert(
                f.name.clone(),
                SigFacts {
                    params: f.param_types().to_vec(),
                    ret_ty: f.ret_ty,
                    variadic: f.variadic,
                    exported: f.linkage == Linkage::Exported,
                },
            );
            roots.insert(f.name.clone(), facts.closure_effects([fi]));
        }
        let seeds: Vec<usize> = facts
            .root_fns
            .iter()
            .chain(facts.address_taken.iter())
            .copied()
            .collect();
        let module_effects = facts.closure_effects(seeds);
        let global_names = m.globals.iter().map(|g| g.name.clone()).collect();
        ModuleSummary {
            sigs,
            roots,
            module_effects,
            global_names,
        }
    }

    /// Compares a pre-transform summary against a post-transform one;
    /// every returned diagnostic is an observable-behavior violation.
    pub fn diff(before: &ModuleSummary, after: &ModuleSummary) -> Vec<AuditDiagnostic> {
        let mut out = Vec::new();
        for (name, sig) in &before.sigs {
            match after.sigs.get(name) {
                None => out.push(AuditDiagnostic {
                    function: Some(name.clone()),
                    kind: AuditKind::Interface,
                    detail: "audit root disappeared".to_string(),
                }),
                Some(s) if s != sig => out.push(AuditDiagnostic {
                    function: Some(name.clone()),
                    kind: AuditKind::Interface,
                    detail: format!("signature changed: {sig:?} -> {s:?}"),
                }),
                Some(_) => {}
            }
        }
        for name in after.sigs.keys() {
            if !before.sigs.contains_key(name) {
                out.push(AuditDiagnostic {
                    function: Some(name.clone()),
                    kind: AuditKind::Interface,
                    detail: "new audit root appeared".to_string(),
                });
            }
        }
        for (kind, dropped) in before.module_effects.missing_from(&after.module_effects) {
            out.push(AuditDiagnostic {
                function: None,
                kind,
                detail: format!("reachable effect on `{dropped}` disappeared"),
            });
        }
        out
    }
}

/// Convenience for pipeline wiring: summarize `after`, diff it against
/// `before`, and hand back the new summary so it can serve as the next
/// stage's before-summary without recomputation.
pub fn audit_step(before: &ModuleSummary, after: &Module) -> (ModuleSummary, Vec<AuditDiagnostic>) {
    let summary = ModuleSummary::compute(after);
    let diags = ModuleSummary::diff(before, &summary);
    (summary, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Linkage;
    use crate::module::{ExtFunc, Global};
    use crate::types::Type;

    /// main -> helper; helper reads and writes @counter and calls
    /// ext print_i64.
    fn sample() -> Module {
        let mut m = Module::new("audit_sample");
        let counter = m.push_global(Global::zeroed("counter", 8));
        let print = m.declare_external(ExtFunc {
            name: "print_i64".to_string(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
            variadic: false,
        });

        let mut h = FunctionBuilder::new("helper", Type::I64);
        let p = h.add_param(Type::I64);
        let addr = h.globaladdr(counter);
        let old = h.load(Type::I64, Operand::local(addr));
        let sum = h.bin(
            crate::inst::BinOp::Add,
            Type::I64,
            Operand::local(old),
            Operand::local(p),
        );
        h.store(Type::I64, Operand::local(sum), Operand::local(addr));
        h.call_ext(print, Type::Void, vec![Operand::local(sum)]);
        h.ret(Some(Operand::local(sum)));
        let helper = m.push_function(h.finish());

        let mut f = FunctionBuilder::new("main", Type::I64);
        let r = f
            .call(helper, Type::I64, vec![Operand::const_int(Type::I64, 5)])
            .unwrap();
        f.ret(Some(Operand::local(r)));
        let mut mainf = f.finish();
        mainf.linkage = Linkage::Exported;
        m.push_function(mainf);
        m
    }

    #[test]
    fn summary_sees_transitive_effects() {
        let m = sample();
        let s = ModuleSummary::compute(&m);
        let main = &s.roots["main"];
        assert!(main.ext_calls.contains("print_i64"));
        assert!(main.global_reads.contains("counter"));
        assert!(main.global_writes.contains("counter"));
        assert!(s.module_effects.global_writes.contains("counter"));
    }

    #[test]
    fn identity_diff_is_clean() {
        let m = sample();
        let s = ModuleSummary::compute(&m);
        assert!(ModuleSummary::diff(&s, &s).is_empty());
    }

    #[test]
    fn added_effects_are_tolerated() {
        let m = sample();
        let before = ModuleSummary::compute(&m);
        let mut grown = m.clone();
        // A pass adds a fresh opaque global and a write to it (bogus
        // control flow's shape): tolerated.
        let opq = grown.push_global(Global::zeroed("__opq_state_1", 8));
        let helper = grown.function_by_name("helper").unwrap().0;
        let f = grown.function_mut(helper);
        let a = f.new_local(Type::Ptr);
        f.blocks[0].insts.insert(
            0,
            Inst::GlobalAddr {
                dst: a,
                global: opq,
            },
        );
        f.blocks[0].insts.insert(
            1,
            Inst::Store {
                ty: Type::I64,
                addr: Operand::local(a),
                value: Operand::const_int(Type::I64, 1),
            },
        );
        let after = ModuleSummary::compute(&grown);
        assert!(ModuleSummary::diff(&before, &after).is_empty());
    }

    #[test]
    fn dropped_store_is_flagged() {
        let m = sample();
        let before = ModuleSummary::compute(&m);
        let mut bad = m.clone();
        let helper = bad.function_by_name("helper").unwrap().0;
        let f = bad.function_mut(helper);
        let idx = f.blocks[0]
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Store { .. }))
            .expect("store present");
        f.blocks[0].insts.remove(idx);
        let after = ModuleSummary::compute(&bad);
        let d = ModuleSummary::diff(&before, &after);
        assert!(
            d.iter().any(|x| x.kind == AuditKind::GlobalWrites),
            "dropped store must be flagged: {d:?}"
        );
    }

    #[test]
    fn dropped_ext_call_is_flagged() {
        let m = sample();
        let before = ModuleSummary::compute(&m);
        let mut bad = m.clone();
        let helper = bad.function_by_name("helper").unwrap().0;
        let f = bad.function_mut(helper);
        let idx = f.blocks[0]
            .insts
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Inst::Call {
                        callee: Callee::Ext(_),
                        ..
                    }
                )
            })
            .expect("ext call present");
        f.blocks[0].insts.remove(idx);
        let after = ModuleSummary::compute(&bad);
        let d = ModuleSummary::diff(&before, &after);
        assert!(d.iter().any(|x| x.kind == AuditKind::ExtCalls), "{d:?}");
    }

    #[test]
    fn signature_drift_is_flagged() {
        let m = sample();
        let before = ModuleSummary::compute(&m);
        let mut bad = m.clone();
        let main = bad.function_by_name("main").unwrap().0;
        bad.function_mut(main).linkage = Linkage::Internal;
        // `main` stays a root by name, but its linkage fact changed.
        let after = ModuleSummary::compute(&bad);
        let d = ModuleSummary::diff(&before, &after);
        assert!(d.iter().any(|x| x.kind == AuditKind::Interface), "{d:?}");
    }

    #[test]
    fn indirect_calls_pull_in_address_taken_effects() {
        let mut m = Module::new("indirect");
        let g = m.push_global(Global::zeroed("state", 8));
        let mut t = FunctionBuilder::new("target", Type::Void);
        let a = t.globaladdr(g);
        t.store(
            Type::I64,
            Operand::const_int(Type::I64, 7),
            Operand::local(a),
        );
        t.ret(None);
        let target = m.push_function(t.finish());

        let mut f = FunctionBuilder::new("main", Type::Void);
        let fp = f.funcaddr(target);
        f.call_indirect(Operand::local(fp), Type::Void, vec![]);
        f.ret(None);
        m.push_function(f.finish());

        let s = ModuleSummary::compute(&m);
        assert!(
            s.roots["main"].global_writes.contains("state"),
            "indirect closure must include address-taken target"
        );
    }

    #[test]
    fn escapes_via_ext_and_memory_are_recorded() {
        let mut m = Module::new("esc");
        let g = m.push_global(Global::zeroed("buf", 16));
        let sink = m.declare_external(ExtFunc {
            name: "sink".to_string(),
            params: vec![Type::Ptr],
            ret_ty: Type::Void,
            variadic: false,
        });
        let mut f = FunctionBuilder::new("main", Type::Void);
        let a = f.globaladdr(g);
        f.call_ext(sink, Type::Void, vec![Operand::local(a)]);
        f.ret(None);
        m.push_function(f.finish());
        let s = ModuleSummary::compute(&m);
        assert!(s.roots["main"].global_escapes.contains("buf"));
    }

    #[test]
    fn unexecutable_arm_effects_are_ignored() {
        // br true -> live arm; the dead arm's store must not be summarized,
        // so constant-branch folding plus unreachable-block removal stays
        // audit-clean.
        let mut m = Module::new("deadarm");
        let g = m.push_global(Global::zeroed("dead_g", 8));
        let mut f = FunctionBuilder::new("main", Type::Void);
        let live = f.new_block();
        let dead = f.new_block();
        f.branch(Operand::const_bool(true), live, dead);
        f.switch_to(live);
        f.ret(None);
        f.switch_to(dead);
        let a = f.globaladdr(g);
        f.store(
            Type::I64,
            Operand::const_int(Type::I64, 1),
            Operand::local(a),
        );
        f.ret(None);
        m.push_function(f.finish());
        let s = ModuleSummary::compute(&m);
        assert!(s.module_effects.global_writes.is_empty());
    }

    #[test]
    fn interprocedural_pointer_args_attribute_effects() {
        // main passes &g to writer(p); writer stores through p. The write
        // must attribute to g — the shape fission produces when a region
        // receives live-in pointers as parameters.
        let mut m = Module::new("interproc");
        let g = m.push_global(Global::zeroed("shared", 8));
        let mut w = FunctionBuilder::new("writer", Type::Void);
        let p = w.add_param(Type::Ptr);
        w.store(
            Type::I64,
            Operand::const_int(Type::I64, 3),
            Operand::local(p),
        );
        w.ret(None);
        let writer = m.push_function(w.finish());
        let mut f = FunctionBuilder::new("main", Type::Void);
        let a = f.globaladdr(g);
        f.call(writer, Type::Void, vec![Operand::local(a)]);
        f.ret(None);
        m.push_function(f.finish());
        let s = ModuleSummary::compute(&m);
        assert!(s.roots["main"].global_writes.contains("shared"), "{s:?}");
    }
}
