//! Textual printing of KIR modules.
//!
//! The format round-trips through [`crate::parser`], which the test suites
//! use to snapshot and rebuild IR.

use crate::constant::Const;
use crate::function::{Function, Linkage, ProvKind};
use crate::inst::{Callee, Inst, Operand, Term};
use crate::module::{GInit, Module};
use crate::types::Type;
use std::fmt::Write as _;

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module {}", m.name);
    for e in &m.externals {
        let params: Vec<String> = e.params.iter().map(|t| t.to_string()).collect();
        let var = if e.variadic { ", ..." } else { "" };
        let _ = writeln!(
            s,
            "extern {}({}{}) -> {}",
            e.name,
            params.join(", "),
            var,
            e.ret_ty
        );
    }
    for g in &m.globals {
        let exp = if g.exported { " exported" } else { "" };
        let _ = writeln!(s, "global {} align {}{} {{", g.name, g.align, exp);
        for init in &g.init {
            match init {
                GInit::Bytes(b) => {
                    let hex: Vec<String> = b.iter().map(|x| format!("{x:02x}")).collect();
                    let _ = writeln!(s, "  bytes {}", hex.join(""));
                }
                GInit::Int { value, ty } => {
                    let _ = writeln!(s, "  int {ty} {value}");
                }
                GInit::Float { value, ty } => {
                    let _ = writeln!(s, "  float {ty} {value:?}");
                }
                GInit::Zero(n) => {
                    let _ = writeln!(s, "  zero {n}");
                }
                GInit::FuncPtr { func, addend } => {
                    let name = &m.functions[func.index()].name;
                    let _ = writeln!(s, "  funcptr @{name} + {addend}");
                }
            }
        }
        let _ = writeln!(s, "}}");
    }
    for f in &m.functions {
        s.push('\n');
        print_function_into(&mut s, m, f);
    }
    s
}

/// Prints a single function (with module context for callee names).
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut s = String::new();
    print_function_into(&mut s, m, f);
    s
}

fn print_function_into(s: &mut String, m: &Module, f: &Function) {
    let exp = if f.linkage == Linkage::Exported {
        " exported"
    } else {
        ""
    };
    let var = if f.variadic { " variadic" } else { "" };
    let _ = writeln!(
        s,
        "func {}({}) -> {}{}{} {{",
        f.name, f.param_count, f.ret_ty, exp, var
    );
    let kind = match f.provenance.kind {
        ProvKind::Original => "original",
        ProvKind::Sep => "sep",
        ProvKind::Rem => "rem",
        ProvKind::Fused => "fused",
        ProvKind::Trampoline => "trampoline",
    };
    let _ = writeln!(s, "  prov {} {}", kind, f.provenance.origins.join(" "));
    if !f.annotations.is_empty() {
        let _ = writeln!(s, "  annot {}", f.annotations.join(" "));
    }
    let tys: Vec<String> = f.locals.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(s, "  locals {}", tys.join(" "));
    for (b, block) in f.iter_blocks() {
        match &block.pad {
            Some(pad) => match pad.dst {
                Some(d) => {
                    let _ = writeln!(s, "{b} pad {d}:");
                }
                None => {
                    let _ = writeln!(s, "{b} pad:");
                }
            },
            None => {
                let _ = writeln!(s, "{b}:");
            }
        }
        for inst in &block.insts {
            let _ = writeln!(s, "  {}", fmt_inst(m, inst));
        }
        let _ = writeln!(s, "  {}", fmt_term(m, &block.term));
    }
    let _ = writeln!(s, "}}");
}

fn fmt_operand(o: &Operand) -> String {
    match o {
        Operand::Local(l) => format!("{l}"),
        Operand::Const(Const::Int { value, ty }) => {
            if *ty == Type::I1 {
                if *value & 1 == 1 {
                    "true".into()
                } else {
                    "false".into()
                }
            } else {
                format!("{ty}:{value}")
            }
        }
        Operand::Const(Const::Float { value, ty }) => format!("{ty}:{value:?}"),
        Operand::Const(Const::Null) => "null".into(),
    }
}

fn fmt_callee(m: &Module, c: &Callee) -> String {
    match c {
        Callee::Direct(f) => format!("@{}", m.functions[f.index()].name),
        Callee::Ext(e) => format!("ext:{}", m.externals[e.index()].name),
        Callee::Indirect(p) => format!("[{}]", fmt_operand(p)),
    }
}

fn fmt_args(args: &[Operand]) -> String {
    let v: Vec<String> = args.iter().map(fmt_operand).collect();
    v.join(", ")
}

/// Formats one instruction in parseable syntax.
pub fn fmt_inst(m: &Module, inst: &Inst) -> String {
    match inst {
        Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => {
            format!(
                "{dst} = {} {ty} {}, {}",
                op.mnemonic(),
                fmt_operand(lhs),
                fmt_operand(rhs)
            )
        }
        Inst::Un { op, ty, dst, src } => {
            format!("{dst} = {} {ty} {}", op.mnemonic(), fmt_operand(src))
        }
        Inst::Cmp {
            pred,
            ty,
            dst,
            lhs,
            rhs,
        } => {
            format!(
                "{dst} = cmp {} {ty} {}, {}",
                pred.mnemonic(),
                fmt_operand(lhs),
                fmt_operand(rhs)
            )
        }
        Inst::Select {
            ty,
            dst,
            cond,
            on_true,
            on_false,
        } => {
            format!(
                "{dst} = select {ty} {}, {}, {}",
                fmt_operand(cond),
                fmt_operand(on_true),
                fmt_operand(on_false)
            )
        }
        Inst::Copy { ty, dst, src } => format!("{dst} = copy {ty} {}", fmt_operand(src)),
        Inst::Cast {
            kind,
            dst,
            src,
            from,
            to,
        } => {
            format!(
                "{dst} = {} {} : {from} -> {to}",
                kind.mnemonic(),
                fmt_operand(src)
            )
        }
        Inst::Load { ty, dst, addr } => format!("{dst} = load {ty}, {}", fmt_operand(addr)),
        Inst::Store { ty, addr, value } => {
            format!("store {ty} {}, {}", fmt_operand(value), fmt_operand(addr))
        }
        Inst::Alloca { dst, size, align } => format!("{dst} = alloca {size} align {align}"),
        Inst::PtrAdd { dst, base, offset } => {
            format!(
                "{dst} = ptradd {}, {}",
                fmt_operand(base),
                fmt_operand(offset)
            )
        }
        Inst::Call { dst, callee, args } => match dst {
            Some(d) => format!("{d} = call {}({})", fmt_callee(m, callee), fmt_args(args)),
            None => format!("call {}({})", fmt_callee(m, callee), fmt_args(args)),
        },
        Inst::FuncAddr { dst, func } => {
            format!("{dst} = funcaddr @{}", m.functions[func.index()].name)
        }
        Inst::GlobalAddr { dst, global } => {
            format!("{dst} = globaladdr @{}", m.globals[global.index()].name)
        }
    }
}

/// Formats one terminator in parseable syntax.
pub fn fmt_term(m: &Module, term: &Term) -> String {
    match term {
        Term::Jump(t) => format!("jmp {t}"),
        Term::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("br {}, {then_bb}, {else_bb}", fmt_operand(cond))
        }
        Term::Switch {
            ty,
            value,
            cases,
            default,
        } => {
            let cs: Vec<String> = cases.iter().map(|(v, t)| format!("{v} -> {t}")).collect();
            format!(
                "switch {ty} {} [{}] default {default}",
                fmt_operand(value),
                cs.join(", ")
            )
        }
        Term::Ret(None) => "ret".into(),
        Term::Ret(Some(v)) => format!("ret {}", fmt_operand(v)),
        Term::Invoke {
            dst,
            callee,
            args,
            normal,
            unwind,
        } => {
            let head = match dst {
                Some(d) => format!("{d} = invoke"),
                None => "invoke".into(),
            };
            format!(
                "{head} {}({}) to {normal} unwind {unwind}",
                fmt_callee(m, callee),
                fmt_args(args)
            )
        }
        Term::Unreachable => "unreachable".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpPred};

    #[test]
    fn prints_readable_function() {
        let mut m = Module::new("demo");
        let mut fb = FunctionBuilder::new("f", Type::I32);
        let p = fb.add_param(Type::I32);
        let t = fb.new_block();
        let e = fb.new_block();
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        fb.branch(Operand::local(c), t, e);
        fb.switch_to(t);
        let r = fb.bin(
            BinOp::Add,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 1),
        );
        fb.ret(Some(Operand::local(r)));
        fb.switch_to(e);
        fb.ret(Some(Operand::const_int(Type::I32, 0)));
        m.push_function(fb.finish());
        let out = print_module(&m);
        assert!(out.contains("module demo"));
        assert!(out.contains("func f(1) -> i32"));
        assert!(out.contains("%2 = add i32 %0, i32:1"));
        assert!(out.contains("br %1, bb1, bb2"));
        assert!(out.contains("ret i32:0"));
        assert!(out.contains("prov original f"));
    }

    #[test]
    fn prints_bool_consts_as_keywords() {
        assert_eq!(fmt_operand(&Operand::const_bool(true)), "true");
        assert_eq!(fmt_operand(&Operand::const_bool(false)), "false");
        assert_eq!(fmt_operand(&Operand::Const(Const::Null)), "null");
    }
}
