//! Rewriting utilities shared by optimization and obfuscation passes.

use crate::function::{Block, Function};
use crate::ids::{BlockId, LocalId};
use crate::inst::{Inst, Operand, Term};
use std::collections::HashMap;

/// Remaps every local id in `inst` through `map` (ids absent from the map
/// stay unchanged).
pub fn remap_inst_locals(inst: &mut Inst, map: &HashMap<LocalId, LocalId>) {
    if let Some(d) = inst.def_mut() {
        if let Some(n) = map.get(d) {
            *d = *n;
        }
    }
    inst.for_each_use_mut(|o| {
        if let Operand::Local(l) = o {
            if let Some(n) = map.get(l) {
                *o = Operand::Local(*n);
            }
        }
    });
}

/// Remaps every local id in `term` through `map`.
pub fn remap_term_locals(term: &mut Term, map: &HashMap<LocalId, LocalId>) {
    if let Term::Invoke { dst: Some(d), .. } = term {
        if let Some(n) = map.get(d) {
            *d = *n;
        }
    }
    term.for_each_use_mut(|o| {
        if let Operand::Local(l) = o {
            if let Some(n) = map.get(l) {
                *o = Operand::Local(*n);
            }
        }
    });
}

/// Remaps every block id in `term` through `map` (ids absent stay put).
pub fn remap_term_blocks(term: &mut Term, map: &HashMap<BlockId, BlockId>) {
    term.for_each_successor_mut(|b| {
        if let Some(n) = map.get(b) {
            *b = *n;
        }
    });
}

/// Remaps a whole block (instructions, terminator, pad binding).
pub fn remap_block(
    block: &mut Block,
    locals: &HashMap<LocalId, LocalId>,
    blocks: &HashMap<BlockId, BlockId>,
) {
    if let Some(pad) = &mut block.pad {
        if let Some(d) = &mut pad.dst {
            if let Some(n) = locals.get(d) {
                *d = *n;
            }
        }
    }
    for inst in &mut block.insts {
        remap_inst_locals(inst, locals);
    }
    remap_term_locals(&mut block.term, locals);
    remap_term_blocks(&mut block.term, blocks);
}

/// Removes the blocks in `dead` (which must be unreferenced after the call)
/// and compacts block ids, rewriting all terminators.
///
/// Returns the mapping from old to new block ids for surviving blocks.
///
/// # Panics
/// Panics if the entry block is listed in `dead`.
pub fn remove_blocks(f: &mut Function, dead: &[BlockId]) -> HashMap<BlockId, BlockId> {
    let mut is_dead = vec![false; f.blocks.len()];
    for &d in dead {
        assert!(d != f.entry(), "cannot remove the entry block");
        is_dead[d.index()] = true;
    }
    let mut map = HashMap::new();
    let mut new_blocks = Vec::with_capacity(f.blocks.len() - dead.len());
    for (i, b) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if !is_dead[i] {
            map.insert(BlockId::new(i), BlockId::new(new_blocks.len()));
            new_blocks.push(b);
        }
    }
    f.blocks = new_blocks;
    for b in &mut f.blocks {
        remap_term_blocks(&mut b.term, &map);
    }
    map
}

/// Replaces direct jumps/branches targeting `from` with `to` across the
/// whole function (used when splicing dispatch blocks in).
pub fn retarget_edges(f: &mut Function, from: BlockId, to: BlockId) {
    for b in &mut f.blocks {
        b.term.for_each_successor_mut(|s| {
            if *s == from {
                *s = to;
            }
        });
    }
}

/// Builds a map that renumbers `locals` of a source function into fresh
/// locals appended to `dest`, preserving types.
pub fn import_locals(dest: &mut Function, src: &Function) -> HashMap<LocalId, LocalId> {
    let mut map = HashMap::with_capacity(src.locals.len());
    for (i, ty) in src.locals.iter().enumerate() {
        let nl = dest.new_local(*ty);
        map.insert(LocalId::new(i), nl);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, CmpPred};
    use crate::types::Type;

    #[test]
    fn remap_locals_in_inst() {
        let mut i = Inst::Bin {
            op: BinOp::Add,
            ty: Type::I32,
            dst: LocalId(0),
            lhs: Operand::local(LocalId(1)),
            rhs: Operand::local(LocalId(2)),
        };
        let map: HashMap<_, _> = [(LocalId(0), LocalId(10)), (LocalId(2), LocalId(12))]
            .into_iter()
            .collect();
        remap_inst_locals(&mut i, &map);
        assert_eq!(i.def(), Some(LocalId(10)));
        let mut uses = Vec::new();
        i.for_each_use(|o| uses.push(o.as_local().unwrap()));
        assert_eq!(uses, vec![LocalId(1), LocalId(12)]);
    }

    #[test]
    fn remove_blocks_compacts_and_retargets() {
        let mut fb = FunctionBuilder::new("f", Type::Void);
        let p = fb.add_param(Type::I32);
        let a = fb.new_block(); // bb1 — will die
        let b = fb.new_block(); // bb2 — survives
        let c = fb.cmp(
            CmpPred::Sgt,
            Type::I32,
            Operand::local(p),
            Operand::const_int(Type::I32, 0),
        );
        fb.branch(Operand::local(c), b, b);
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        fb.ret(None);
        let mut f = fb.finish();
        let map = remove_blocks(&mut f, &[a]);
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(map.get(&b), Some(&BlockId(1)));
        // Entry branch must now point at the compacted id.
        assert_eq!(
            f.block(BlockId(0)).term.successors(),
            vec![BlockId(1), BlockId(1)]
        );
    }

    #[test]
    fn retarget_rewrites_all_edges() {
        let mut fb = FunctionBuilder::new("f", Type::Void);
        let t = fb.new_block();
        let n = fb.new_block();
        fb.jump(t);
        fb.switch_to(t);
        fb.ret(None);
        fb.switch_to(n);
        fb.ret(None);
        let mut f = fb.finish();
        retarget_edges(&mut f, t, n);
        assert_eq!(f.block(BlockId(0)).term, Term::Jump(n));
    }

    #[test]
    fn import_locals_preserves_types() {
        let mut a = FunctionBuilder::new("a", Type::Void);
        a.ret(None);
        let mut a = a.finish();
        let mut bb = FunctionBuilder::new("b", Type::Void);
        let _p = bb.add_param(Type::F64);
        let _l = bb.new_local(Type::I8);
        bb.ret(None);
        let b = bb.finish();
        let map = import_locals(&mut a, &b);
        assert_eq!(a.locals.len(), 2);
        assert_eq!(a.local_ty(map[&LocalId(0)]), Type::F64);
        assert_eq!(a.local_ty(map[&LocalId(1)]), Type::I8);
    }
}
