//! Parsing of the textual KIR format produced by [`crate::printer`].

use crate::constant::Const;
use crate::function::{Block, Function, Linkage, PadInfo, ProvKind, Provenance};
use crate::ids::{BlockId, ExtId, FuncId, GlobalId, LocalId};
use crate::inst::{BinOp, Callee, CastKind, CmpPred, Inst, Operand, Term, UnOp};
use crate::module::{ExtFunc, GInit, Global, Module};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a line number.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    func_ids: HashMap<String, FuncId>,
    global_ids: HashMap<String, GlobalId>,
    ext_ids: HashMap<String, ExtId>,
}

/// Parses a module from the textual format.
///
/// # Errors
/// Returns a [`ParseError`] with the offending line on malformed input.
pub fn parse_module(src: &str) -> PResult<Module> {
    // Pre-scan symbol tables so forward references resolve.
    let mut func_ids = HashMap::new();
    let mut global_ids = HashMap::new();
    let mut ext_ids = HashMap::new();
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("func ") {
            if let Some(name) = rest.split('(').next() {
                let id = FuncId::new(func_ids.len());
                func_ids.insert(name.trim().to_string(), id);
            }
        } else if let Some(rest) = t.strip_prefix("global ") {
            if let Some(name) = rest.split_whitespace().next() {
                let id = GlobalId::new(global_ids.len());
                global_ids.insert(name.to_string(), id);
            }
        } else if let Some(rest) = t.strip_prefix("extern ") {
            if let Some(name) = rest.split('(').next() {
                let id = ExtId::new(ext_ids.len());
                ext_ids.insert(name.trim().to_string(), id);
            }
        }
    }

    let lines: Vec<(usize, &str)> = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with(';'))
        .collect();
    let mut p = Parser {
        lines,
        pos: 0,
        func_ids,
        global_ids,
        ext_ids,
    };
    p.module()
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> PResult<(usize, &'a str)> {
        let r = self.peek().ok_or_else(|| ParseError {
            line: self.lines.last().map_or(0, |(n, _)| *n),
            message: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok(r)
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line,
            message: msg.into(),
        })
    }

    fn module(&mut self) -> PResult<Module> {
        let (ln, first) = self.next_line()?;
        let name = first.strip_prefix("module ").ok_or_else(|| ParseError {
            line: ln,
            message: "expected `module <name>`".into(),
        })?;
        let mut m = Module::new(name.trim());
        // Pre-size function slots so ids match the pre-scan.
        while let Some((ln, line)) = self.peek() {
            if line.starts_with("extern ") {
                self.pos += 1;
                m.externals.push(self.parse_extern(ln, line)?);
            } else if line.starts_with("global ") {
                self.pos += 1;
                m.globals.push(self.parse_global(ln, line)?);
            } else if line.starts_with("func ") {
                self.pos += 1;
                let f = self.parse_function(ln, line)?;
                m.functions.push(f);
            } else {
                return self.err(ln, format!("unexpected line `{line}`"));
            }
        }
        Ok(m)
    }

    fn parse_type(&self, ln: usize, s: &str) -> PResult<Type> {
        match s {
            "void" => Ok(Type::Void),
            "i1" => Ok(Type::I1),
            "i8" => Ok(Type::I8),
            "i16" => Ok(Type::I16),
            "i32" => Ok(Type::I32),
            "i64" => Ok(Type::I64),
            "f32" => Ok(Type::F32),
            "f64" => Ok(Type::F64),
            "ptr" => Ok(Type::Ptr),
            other => self.err(ln, format!("unknown type `{other}`")),
        }
    }

    fn parse_extern(&self, ln: usize, line: &str) -> PResult<ExtFunc> {
        // extern name(ty, ty, ...) -> ty
        let rest = line.strip_prefix("extern ").expect("caller checked prefix");
        let open = rest.find('(').ok_or(ParseError {
            line: ln,
            message: "expected `(`".into(),
        })?;
        let close = rest.rfind(')').ok_or(ParseError {
            line: ln,
            message: "expected `)`".into(),
        })?;
        let name = rest[..open].trim().to_string();
        let params_str = &rest[open + 1..close];
        let after = rest[close + 1..].trim();
        let ret_str = after
            .strip_prefix("->")
            .ok_or(ParseError {
                line: ln,
                message: "expected `-> <ty>`".into(),
            })?
            .trim();
        let mut params = Vec::new();
        let mut variadic = false;
        for part in params_str
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            if part == "..." {
                variadic = true;
            } else {
                params.push(self.parse_type(ln, part)?);
            }
        }
        Ok(ExtFunc {
            name,
            params,
            ret_ty: self.parse_type(ln, ret_str)?,
            variadic,
        })
    }

    fn parse_global(&mut self, ln: usize, header: &str) -> PResult<Global> {
        // global name align N [exported] {
        let rest = header
            .strip_prefix("global ")
            .expect("caller checked prefix");
        let mut words = rest.split_whitespace();
        let name = words
            .next()
            .ok_or(ParseError {
                line: ln,
                message: "expected global name".into(),
            })?
            .to_string();
        let mut align = 8u32;
        let mut exported = false;
        while let Some(w) = words.next() {
            match w {
                "align" => {
                    let v = words.next().ok_or(ParseError {
                        line: ln,
                        message: "expected align value".into(),
                    })?;
                    align = v.parse().map_err(|_| ParseError {
                        line: ln,
                        message: "bad align value".into(),
                    })?;
                }
                "exported" => exported = true,
                "{" => break,
                other => return self.err(ln, format!("unexpected `{other}` in global header")),
            }
        }
        let mut init = Vec::new();
        loop {
            let (ln2, line) = self.next_line()?;
            if line == "}" {
                break;
            }
            let mut w = line.split_whitespace();
            match w.next() {
                Some("bytes") => {
                    let hex = w.next().unwrap_or("");
                    if hex.len() % 2 != 0 {
                        return self.err(ln2, "odd-length hex byte string");
                    }
                    let mut bytes = Vec::with_capacity(hex.len() / 2);
                    for i in (0..hex.len()).step_by(2) {
                        let b = u8::from_str_radix(&hex[i..i + 2], 16).map_err(|_| ParseError {
                            line: ln2,
                            message: "bad hex".into(),
                        })?;
                        bytes.push(b);
                    }
                    init.push(GInit::Bytes(bytes));
                }
                Some("int") => {
                    let ty = self.parse_type(
                        ln2,
                        w.next().ok_or(ParseError {
                            line: ln2,
                            message: "expected type".into(),
                        })?,
                    )?;
                    let v: i64 = w.next().and_then(|s| s.parse().ok()).ok_or(ParseError {
                        line: ln2,
                        message: "bad int value".into(),
                    })?;
                    init.push(GInit::Int { value: v, ty });
                }
                Some("float") => {
                    let ty = self.parse_type(
                        ln2,
                        w.next().ok_or(ParseError {
                            line: ln2,
                            message: "expected type".into(),
                        })?,
                    )?;
                    let v: f64 = w.next().and_then(|s| s.parse().ok()).ok_or(ParseError {
                        line: ln2,
                        message: "bad float value".into(),
                    })?;
                    init.push(GInit::Float { value: v, ty });
                }
                Some("zero") => {
                    let n: u32 = w.next().and_then(|s| s.parse().ok()).ok_or(ParseError {
                        line: ln2,
                        message: "bad zero size".into(),
                    })?;
                    init.push(GInit::Zero(n));
                }
                Some("funcptr") => {
                    let fname = w
                        .next()
                        .and_then(|s| s.strip_prefix('@'))
                        .ok_or(ParseError {
                            line: ln2,
                            message: "expected @func".into(),
                        })?;
                    let func = *self.func_ids.get(fname).ok_or(ParseError {
                        line: ln2,
                        message: format!("unknown func `{fname}`"),
                    })?;
                    // optional "+ N"
                    let mut addend = 0i64;
                    if let Some("+") = w.next() {
                        addend = w.next().and_then(|s| s.parse().ok()).ok_or(ParseError {
                            line: ln2,
                            message: "bad addend".into(),
                        })?;
                    }
                    init.push(GInit::FuncPtr { func, addend });
                }
                other => return self.err(ln2, format!("unknown global init `{other:?}`")),
            }
        }
        Ok(Global {
            name,
            init,
            align,
            exported,
        })
    }

    fn parse_operand(&self, ln: usize, s: &str) -> PResult<Operand> {
        let s = s.trim();
        if let Some(n) = s.strip_prefix('%') {
            let i: usize = n.parse().map_err(|_| ParseError {
                line: ln,
                message: format!("bad local `{s}`"),
            })?;
            return Ok(Operand::Local(LocalId::new(i)));
        }
        match s {
            "true" => return Ok(Operand::const_bool(true)),
            "false" => return Ok(Operand::const_bool(false)),
            "null" => return Ok(Operand::Const(Const::Null)),
            _ => {}
        }
        // ty:value
        let (ty_s, val_s) = s.split_once(':').ok_or_else(|| ParseError {
            line: ln,
            message: format!("bad operand `{s}`"),
        })?;
        let ty = self.parse_type(ln, ty_s)?;
        if ty.is_float() {
            let v: f64 = val_s.parse().map_err(|_| ParseError {
                line: ln,
                message: format!("bad float `{val_s}`"),
            })?;
            Ok(Operand::const_float(ty, v))
        } else {
            let v: i64 = val_s.parse().map_err(|_| ParseError {
                line: ln,
                message: format!("bad int `{val_s}`"),
            })?;
            Ok(Operand::const_int(ty, v))
        }
    }

    fn parse_local(&self, ln: usize, s: &str) -> PResult<LocalId> {
        let n = s.trim().strip_prefix('%').ok_or_else(|| ParseError {
            line: ln,
            message: format!("expected local, got `{s}`"),
        })?;
        let i: usize = n.parse().map_err(|_| ParseError {
            line: ln,
            message: format!("bad local `{s}`"),
        })?;
        Ok(LocalId::new(i))
    }

    fn parse_block_id(&self, ln: usize, s: &str) -> PResult<BlockId> {
        let n = s.trim().strip_prefix("bb").ok_or_else(|| ParseError {
            line: ln,
            message: format!("expected block, got `{s}`"),
        })?;
        let i: usize = n.parse().map_err(|_| ParseError {
            line: ln,
            message: format!("bad block `{s}`"),
        })?;
        Ok(BlockId::new(i))
    }

    fn parse_callee(&self, ln: usize, s: &str) -> PResult<Callee> {
        let s = s.trim();
        if let Some(name) = s.strip_prefix('@') {
            let id = self.func_ids.get(name).ok_or_else(|| ParseError {
                line: ln,
                message: format!("unknown func `{name}`"),
            })?;
            Ok(Callee::Direct(*id))
        } else if let Some(name) = s.strip_prefix("ext:") {
            let id = self.ext_ids.get(name).ok_or_else(|| ParseError {
                line: ln,
                message: format!("unknown extern `{name}`"),
            })?;
            Ok(Callee::Ext(*id))
        } else if s.starts_with('[') && s.ends_with(']') {
            Ok(Callee::Indirect(
                self.parse_operand(ln, &s[1..s.len() - 1])?,
            ))
        } else {
            self.err(ln, format!("bad callee `{s}`"))
        }
    }

    fn parse_args(&self, ln: usize, s: &str) -> PResult<Vec<Operand>> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Vec::new());
        }
        s.split(',').map(|a| self.parse_operand(ln, a)).collect()
    }

    fn parse_call_like(&self, ln: usize, s: &str) -> PResult<(Callee, Vec<Operand>)> {
        // "<callee>(<args>)"
        let open = s.find('(').ok_or_else(|| ParseError {
            line: ln,
            message: "expected `(` in call".into(),
        })?;
        let close = s.rfind(')').ok_or_else(|| ParseError {
            line: ln,
            message: "expected `)` in call".into(),
        })?;
        let callee = self.parse_callee(ln, &s[..open])?;
        let args = self.parse_args(ln, &s[open + 1..close])?;
        Ok((callee, args))
    }

    fn parse_function(&mut self, ln: usize, header: &str) -> PResult<Function> {
        // func name(N) -> ty [exported] [variadic] {
        let rest = header.strip_prefix("func ").expect("caller checked prefix");
        let open = rest.find('(').ok_or(ParseError {
            line: ln,
            message: "expected `(`".into(),
        })?;
        let close = rest.find(')').ok_or(ParseError {
            line: ln,
            message: "expected `)`".into(),
        })?;
        let name = rest[..open].trim().to_string();
        let param_count: u32 = rest[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| ParseError {
                line: ln,
                message: "bad param count".into(),
            })?;
        let after = rest[close + 1..].trim();
        let after = after
            .strip_prefix("->")
            .ok_or(ParseError {
                line: ln,
                message: "expected `->`".into(),
            })?
            .trim();
        let mut words = after.split_whitespace();
        let ret_ty = self.parse_type(
            ln,
            words.next().ok_or(ParseError {
                line: ln,
                message: "expected return type".into(),
            })?,
        )?;
        let mut linkage = Linkage::Internal;
        let mut variadic = false;
        for w in words {
            match w {
                "exported" => linkage = Linkage::Exported,
                "variadic" => variadic = true,
                "{" => break,
                other => return self.err(ln, format!("unexpected `{other}` in func header")),
            }
        }

        let mut f = Function::new(name, ret_ty);
        f.blocks.clear();
        f.param_count = param_count;
        f.linkage = linkage;
        f.variadic = variadic;

        // Optional prov / annot lines, then locals.
        loop {
            let (ln2, line) = self.next_line()?;
            if let Some(rest) = line.strip_prefix("prov ") {
                let mut w = rest.split_whitespace();
                let kind = match w.next() {
                    Some("original") => ProvKind::Original,
                    Some("sep") => ProvKind::Sep,
                    Some("rem") => ProvKind::Rem,
                    Some("fused") => ProvKind::Fused,
                    Some("trampoline") => ProvKind::Trampoline,
                    other => return self.err(ln2, format!("unknown prov kind `{other:?}`")),
                };
                f.provenance = Provenance {
                    kind,
                    origins: w.map(String::from).collect(),
                };
            } else if let Some(rest) = line.strip_prefix("annot ") {
                f.annotations = rest.split_whitespace().map(String::from).collect();
            } else if let Some(rest) = line.strip_prefix("locals") {
                f.locals = rest
                    .split_whitespace()
                    .map(|t| self.parse_type(ln2, t))
                    .collect::<PResult<Vec<_>>>()?;
                break;
            } else {
                return self.err(ln2, format!("expected prov/annot/locals, got `{line}`"));
            }
        }

        // Blocks until "}".
        let mut cur: Option<Block> = None;
        loop {
            let (ln2, line) = self.next_line()?;
            if line == "}" {
                if let Some(b) = cur.take() {
                    f.blocks.push(b);
                }
                break;
            }
            if line.starts_with("bb") && line.ends_with(':') {
                if let Some(b) = cur.take() {
                    f.blocks.push(b);
                }
                let head = &line[..line.len() - 1];
                let mut parts = head.split_whitespace();
                let _bid = parts.next(); // block ids are positional
                let mut pad = None;
                if let Some("pad") = parts.next() {
                    let dst = match parts.next() {
                        Some(l) => Some(self.parse_local(ln2, l)?),
                        None => None,
                    };
                    pad = Some(PadInfo { dst });
                }
                let mut b = Block::with_term(Term::Unreachable);
                b.pad = pad;
                cur = Some(b);
                continue;
            }
            let block = cur.as_mut().ok_or(ParseError {
                line: ln2,
                message: "instruction before first block".into(),
            })?;
            if let Some(term) = self.try_parse_term(ln2, line)? {
                block.term = term;
            } else {
                block.insts.push(self.parse_inst(ln2, line)?);
            }
        }
        Ok(f)
    }

    fn try_parse_term(&self, ln: usize, line: &str) -> PResult<Option<Term>> {
        if let Some(rest) = line.strip_prefix("jmp ") {
            return Ok(Some(Term::Jump(self.parse_block_id(ln, rest)?)));
        }
        if let Some(rest) = line.strip_prefix("br ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return self.err(ln, "br needs cond, then, else");
            }
            return Ok(Some(Term::Branch {
                cond: self.parse_operand(ln, parts[0])?,
                then_bb: self.parse_block_id(ln, parts[1])?,
                else_bb: self.parse_block_id(ln, parts[2])?,
            }));
        }
        if let Some(rest) = line.strip_prefix("switch ") {
            // switch ty value [c -> bb, ...] default bb
            let open = rest.find('[').ok_or(ParseError {
                line: ln,
                message: "expected `[`".into(),
            })?;
            let close = rest.rfind(']').ok_or(ParseError {
                line: ln,
                message: "expected `]`".into(),
            })?;
            let mut head = rest[..open].split_whitespace();
            let ty = self.parse_type(
                ln,
                head.next().ok_or(ParseError {
                    line: ln,
                    message: "expected type".into(),
                })?,
            )?;
            let value = self.parse_operand(
                ln,
                head.next().ok_or(ParseError {
                    line: ln,
                    message: "expected value".into(),
                })?,
            )?;
            let mut cases = Vec::new();
            for c in rest[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
            {
                let (v, t) = c.split_once("->").ok_or(ParseError {
                    line: ln,
                    message: "case needs `->`".into(),
                })?;
                let v: i64 = v.trim().parse().map_err(|_| ParseError {
                    line: ln,
                    message: "bad case value".into(),
                })?;
                cases.push((v, self.parse_block_id(ln, t)?));
            }
            let def = rest[close + 1..]
                .trim()
                .strip_prefix("default")
                .ok_or(ParseError {
                    line: ln,
                    message: "expected `default`".into(),
                })?;
            return Ok(Some(Term::Switch {
                ty,
                value,
                cases,
                default: self.parse_block_id(ln, def)?,
            }));
        }
        if line == "ret" {
            return Ok(Some(Term::Ret(None)));
        }
        if let Some(rest) = line.strip_prefix("ret ") {
            return Ok(Some(Term::Ret(Some(self.parse_operand(ln, rest)?))));
        }
        if line == "unreachable" {
            return Ok(Some(Term::Unreachable));
        }
        // [%d =] invoke callee(args) to bbN unwind bbM
        let (dst, body) = match line.split_once('=') {
            Some((lhs, rhs))
                if lhs.trim().starts_with('%') && rhs.trim().starts_with("invoke ") =>
            {
                (Some(self.parse_local(ln, lhs)?), rhs.trim())
            }
            _ => (None, line),
        };
        if let Some(rest) = body.strip_prefix("invoke ") {
            let to_pos = rest.rfind(" to ").ok_or(ParseError {
                line: ln,
                message: "invoke needs ` to `".into(),
            })?;
            let (callee, args) = self.parse_call_like(ln, &rest[..to_pos])?;
            let tail = &rest[to_pos + 4..];
            let (normal_s, unwind_s) = tail.split_once("unwind").ok_or(ParseError {
                line: ln,
                message: "invoke needs `unwind`".into(),
            })?;
            return Ok(Some(Term::Invoke {
                dst,
                callee,
                args,
                normal: self.parse_block_id(ln, normal_s)?,
                unwind: self.parse_block_id(ln, unwind_s)?,
            }));
        }
        Ok(None)
    }

    fn parse_inst(&self, ln: usize, line: &str) -> PResult<Inst> {
        // Void call has no `=`.
        if let Some(rest) = line.strip_prefix("call ") {
            let (callee, args) = self.parse_call_like(ln, rest)?;
            return Ok(Inst::Call {
                dst: None,
                callee,
                args,
            });
        }
        if let Some(rest) = line.strip_prefix("store ") {
            // store ty value, addr
            let mut w = rest.splitn(2, ' ');
            let ty = self.parse_type(
                ln,
                w.next().ok_or(ParseError {
                    line: ln,
                    message: "expected type".into(),
                })?,
            )?;
            let rest2 = w.next().ok_or(ParseError {
                line: ln,
                message: "expected operands".into(),
            })?;
            let (v, a) = rest2.split_once(',').ok_or(ParseError {
                line: ln,
                message: "store needs value, addr".into(),
            })?;
            return Ok(Inst::Store {
                ty,
                value: self.parse_operand(ln, v)?,
                addr: self.parse_operand(ln, a)?,
            });
        }
        let (lhs, rhs) = line.split_once('=').ok_or_else(|| ParseError {
            line: ln,
            message: format!("unrecognised line `{line}`"),
        })?;
        let dst = self.parse_local(ln, lhs)?;
        let body = rhs.trim();
        let mut w = body.splitn(2, ' ');
        let mnem = w.next().unwrap_or("");
        let rest = w.next().unwrap_or("").trim();

        let binop = BinOp::ALL.iter().find(|b| b.mnemonic() == mnem).copied();
        if let Some(op) = binop {
            let mut ww = rest.splitn(2, ' ');
            let ty = self.parse_type(
                ln,
                ww.next().ok_or(ParseError {
                    line: ln,
                    message: "expected type".into(),
                })?,
            )?;
            let ops = ww.next().ok_or(ParseError {
                line: ln,
                message: "expected operands".into(),
            })?;
            let (l, r) = ops.split_once(',').ok_or(ParseError {
                line: ln,
                message: "binop needs two operands".into(),
            })?;
            return Ok(Inst::Bin {
                op,
                ty,
                dst,
                lhs: self.parse_operand(ln, l)?,
                rhs: self.parse_operand(ln, r)?,
            });
        }
        if let Some(op) = [UnOp::Neg, UnOp::Not, UnOp::FNeg]
            .iter()
            .find(|u| u.mnemonic() == mnem)
            .copied()
        {
            let mut ww = rest.splitn(2, ' ');
            let ty = self.parse_type(
                ln,
                ww.next().ok_or(ParseError {
                    line: ln,
                    message: "expected type".into(),
                })?,
            )?;
            let src = ww.next().ok_or(ParseError {
                line: ln,
                message: "expected operand".into(),
            })?;
            return Ok(Inst::Un {
                op,
                ty,
                dst,
                src: self.parse_operand(ln, src)?,
            });
        }
        match mnem {
            "cmp" => {
                let mut ww = rest.splitn(3, ' ');
                let pred_s = ww.next().ok_or(ParseError {
                    line: ln,
                    message: "expected pred".into(),
                })?;
                let pred = CmpPred::ALL
                    .iter()
                    .find(|p| p.mnemonic() == pred_s)
                    .copied()
                    .ok_or_else(|| ParseError {
                        line: ln,
                        message: format!("bad pred `{pred_s}`"),
                    })?;
                let ty = self.parse_type(
                    ln,
                    ww.next().ok_or(ParseError {
                        line: ln,
                        message: "expected type".into(),
                    })?,
                )?;
                let ops = ww.next().ok_or(ParseError {
                    line: ln,
                    message: "expected operands".into(),
                })?;
                let (l, r) = ops.split_once(',').ok_or(ParseError {
                    line: ln,
                    message: "cmp needs two operands".into(),
                })?;
                Ok(Inst::Cmp {
                    pred,
                    ty,
                    dst,
                    lhs: self.parse_operand(ln, l)?,
                    rhs: self.parse_operand(ln, r)?,
                })
            }
            "select" => {
                let mut ww = rest.splitn(2, ' ');
                let ty = self.parse_type(
                    ln,
                    ww.next().ok_or(ParseError {
                        line: ln,
                        message: "expected type".into(),
                    })?,
                )?;
                let ops = ww.next().ok_or(ParseError {
                    line: ln,
                    message: "expected operands".into(),
                })?;
                let parts: Vec<&str> = ops.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return self.err(ln, "select needs three operands");
                }
                Ok(Inst::Select {
                    ty,
                    dst,
                    cond: self.parse_operand(ln, parts[0])?,
                    on_true: self.parse_operand(ln, parts[1])?,
                    on_false: self.parse_operand(ln, parts[2])?,
                })
            }
            "copy" => {
                let mut ww = rest.splitn(2, ' ');
                let ty = self.parse_type(
                    ln,
                    ww.next().ok_or(ParseError {
                        line: ln,
                        message: "expected type".into(),
                    })?,
                )?;
                let src = ww.next().ok_or(ParseError {
                    line: ln,
                    message: "expected operand".into(),
                })?;
                Ok(Inst::Copy {
                    ty,
                    dst,
                    src: self.parse_operand(ln, src)?,
                })
            }
            "load" => {
                let (ty_s, addr_s) = rest.split_once(',').ok_or(ParseError {
                    line: ln,
                    message: "load needs `ty, addr`".into(),
                })?;
                Ok(Inst::Load {
                    ty: self.parse_type(ln, ty_s.trim())?,
                    dst,
                    addr: self.parse_operand(ln, addr_s)?,
                })
            }
            "alloca" => {
                let mut ww = rest.split_whitespace();
                let size: u32 = ww.next().and_then(|s| s.parse().ok()).ok_or(ParseError {
                    line: ln,
                    message: "bad alloca size".into(),
                })?;
                let mut align = 8;
                if let Some("align") = ww.next() {
                    align = ww.next().and_then(|s| s.parse().ok()).ok_or(ParseError {
                        line: ln,
                        message: "bad align".into(),
                    })?;
                }
                Ok(Inst::Alloca { dst, size, align })
            }
            "ptradd" => {
                let (b, o) = rest.split_once(',').ok_or(ParseError {
                    line: ln,
                    message: "ptradd needs base, offset".into(),
                })?;
                Ok(Inst::PtrAdd {
                    dst,
                    base: self.parse_operand(ln, b)?,
                    offset: self.parse_operand(ln, o)?,
                })
            }
            "call" => {
                let (callee, args) = self.parse_call_like(ln, rest)?;
                Ok(Inst::Call {
                    dst: Some(dst),
                    callee,
                    args,
                })
            }
            "funcaddr" => {
                let name = rest.strip_prefix('@').ok_or(ParseError {
                    line: ln,
                    message: "expected @func".into(),
                })?;
                let func = *self.func_ids.get(name).ok_or_else(|| ParseError {
                    line: ln,
                    message: format!("unknown func `{name}`"),
                })?;
                Ok(Inst::FuncAddr { dst, func })
            }
            "globaladdr" => {
                let name = rest.strip_prefix('@').ok_or(ParseError {
                    line: ln,
                    message: "expected @global".into(),
                })?;
                let global = *self.global_ids.get(name).ok_or_else(|| ParseError {
                    line: ln,
                    message: format!("unknown global `{name}`"),
                })?;
                Ok(Inst::GlobalAddr { dst, global })
            }
            // casts: "%d = trunc %s : i64 -> i32"
            m => {
                let kinds = [
                    CastKind::Trunc,
                    CastKind::ZExt,
                    CastKind::SExt,
                    CastKind::FpToSi,
                    CastKind::SiToFp,
                    CastKind::FpTrunc,
                    CastKind::FpExt,
                    CastKind::PtrToInt,
                    CastKind::IntToPtr,
                ];
                if let Some(kind) = kinds.iter().find(|k| k.mnemonic() == m).copied() {
                    // Split at the LAST colon: the source operand may be a
                    // typed constant (`i64:0`) containing one itself.
                    let (src_s, tys) = rest.rsplit_once(':').ok_or(ParseError {
                        line: ln,
                        message: "cast needs `:`".into(),
                    })?;
                    let (from_s, to_s) = tys.split_once("->").ok_or(ParseError {
                        line: ln,
                        message: "cast needs `->`".into(),
                    })?;
                    return Ok(Inst::Cast {
                        kind,
                        dst,
                        src: self.parse_operand(ln, src_s)?,
                        from: self.parse_type(ln, from_s.trim())?,
                        to: self.parse_type(ln, to_s.trim())?,
                    });
                }
                self.err(ln, format!("unknown instruction `{m}`"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SAMPLE: &str = r#"
module sample
extern print_i64(i64) -> void
extern printf(ptr, ...) -> i32
global counter align 8 {
  int i64 0
}
global table align 8 exported {
  funcptr @helper + 12
  zero 8
}

func helper(1) -> i32 {
  prov original helper
  locals i32 i32
bb0:
  %1 = add i32 %0, i32:1
  ret %1
}

func main(0) -> i32 exported {
  prov original main
  annot vulnerable
  locals i32 ptr i32 i1 i64
bb0:
  %1 = globaladdr @counter
  %2 = call @helper(i32:41)
  %3 = cmp sgt i32 %2, i32:0
  br %3, bb1, bb2
bb1:
  %4 = load i64, %1
  call ext:print_i64(%4)
  ret %2
bb2:
  switch i32 %2 [0 -> bb1, 1 -> bb1] default bb3
bb3:
  ret i32:0
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse_module(SAMPLE).expect("sample parses");
        assert_eq!(m.name, "sample");
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.externals.len(), 2);
        assert!(m.externals[1].variadic);
        let (_, main) = m.function_by_name("main").unwrap();
        assert!(main.has_annotation("vulnerable"));
        assert_eq!(main.blocks.len(), 4);
        crate::verify::assert_valid(&m);
    }

    #[test]
    fn roundtrips_through_printer() {
        let m = parse_module(SAMPLE).expect("sample parses");
        let printed = print_module(&m);
        let m2 = parse_module(&printed).expect("printed output parses");
        assert_eq!(m, m2, "print -> parse must be the identity");
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "module m\nfunc f(0) -> void {\n  prov original f\n  locals\nbb0:\n  %0 = frob i32 %1\n  ret\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("frob"));
    }

    #[test]
    fn cast_of_typed_constant_parses() {
        // Regression: the operand's own `ty:value` colon must not be
        // mistaken for the cast's type separator.
        let src = "module m\nfunc f(0) -> i32 {\n  prov original f\n  locals i32\nbb0:\n  %0 = trunc i64:0 : i64 -> i32\n  ret %0\n}\n";
        let m = parse_module(src).expect("cast with constant source parses");
        let printed = print_module(&m);
        assert_eq!(parse_module(&printed).unwrap(), m);
    }

    #[test]
    fn rejects_unknown_callee() {
        let bad = "module m\nfunc f(0) -> void {\n  prov original f\n  locals\nbb0:\n  call @nope()\n  ret\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert!(err.message.contains("unknown func"));
    }
}
