//! Constant values.

use crate::types::Type;
use std::fmt;

/// A compile-time constant operand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Const {
    /// An integer constant of the given integer type. The value is stored
    /// sign-extended to `i64`; [`Const::normalized`] wraps it to the width.
    Int { value: i64, ty: Type },
    /// A float constant of the given float type.
    Float { value: f64, ty: Type },
    /// The null pointer.
    Null,
}

impl Const {
    /// Integer constant constructor.
    ///
    /// # Panics
    /// Panics if `ty` is not an integer type.
    pub fn int(ty: Type, value: i64) -> Self {
        assert!(ty.is_int(), "Const::int requires an integer type, got {ty}");
        Const::Int { value, ty }
    }

    /// Float constant constructor.
    ///
    /// # Panics
    /// Panics if `ty` is not a float type.
    pub fn float(ty: Type, value: f64) -> Self {
        assert!(
            ty.is_float(),
            "Const::float requires a float type, got {ty}"
        );
        Const::Float { value, ty }
    }

    /// The boolean constant of type `i1`.
    pub fn bool(value: bool) -> Self {
        Const::Int {
            value: value as i64,
            ty: Type::I1,
        }
    }

    /// The type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            Const::Int { ty, .. } => *ty,
            Const::Float { ty, .. } => *ty,
            Const::Null => Type::Ptr,
        }
    }

    /// The zero value of `ty`.
    ///
    /// # Panics
    /// Panics if `ty` is `Void`.
    pub fn zero(ty: Type) -> Self {
        match ty {
            Type::Void => panic!("no zero value of type void"),
            t if t.is_int() => Const::Int { value: 0, ty: t },
            t if t.is_float() => Const::Float { value: 0.0, ty: t },
            _ => Const::Null,
        }
    }

    /// Returns the integer value wrapped to the width of its type,
    /// sign-extended back to `i64`. Returns `None` for non-integers.
    pub fn normalized(&self) -> Option<i64> {
        match self {
            Const::Int { value, ty } => Some(normalize_int(*value, *ty)),
            _ => None,
        }
    }

    /// True if this is an integer or null constant equal to zero, or a float
    /// constant equal to `0.0`.
    pub fn is_zero(&self) -> bool {
        match self {
            Const::Int { value, ty } => normalize_int(*value, *ty) == 0,
            Const::Float { value, .. } => *value == 0.0,
            Const::Null => true,
        }
    }
}

/// Wraps `value` to the bit width of integer type `ty` (two's complement),
/// sign-extending the result back to `i64`.
pub fn normalize_int(value: i64, ty: Type) -> i64 {
    match ty {
        Type::I1 => value & 1,
        Type::I8 => value as i8 as i64,
        Type::I16 => value as i16 as i64,
        Type::I32 => value as i32 as i64,
        Type::I64 => value,
        _ => panic!("normalize_int on non-integer type {ty}"),
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int { value, ty } => write!(f, "{ty} {value}"),
            Const::Float { value, ty } => write!(f, "{ty} {value:?}"),
            Const::Null => write!(f, "ptr null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values() {
        assert!(Const::zero(Type::I32).is_zero());
        assert!(Const::zero(Type::F64).is_zero());
        assert!(Const::zero(Type::Ptr).is_zero());
        assert_eq!(Const::zero(Type::Ptr), Const::Null);
    }

    #[test]
    fn normalization_wraps_to_width() {
        assert_eq!(Const::int(Type::I8, 300).normalized(), Some(44));
        assert_eq!(Const::int(Type::I8, -1).normalized(), Some(-1));
        assert_eq!(Const::int(Type::I1, 3).normalized(), Some(1));
        assert_eq!(Const::int(Type::I32, i64::MAX).normalized(), Some(-1));
        assert_eq!(Const::float(Type::F32, 1.5).normalized(), None);
    }

    #[test]
    fn types_report_correctly() {
        assert_eq!(Const::bool(true).ty(), Type::I1);
        assert_eq!(Const::int(Type::I64, 7).ty(), Type::I64);
        assert_eq!(Const::float(Type::F32, 2.0).ty(), Type::F32);
        assert_eq!(Const::Null.ty(), Type::Ptr);
    }

    #[test]
    #[should_panic(expected = "integer type")]
    fn int_ctor_rejects_floats() {
        let _ = Const::int(Type::F32, 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Const::int(Type::I32, -5).to_string(), "i32 -5");
        assert_eq!(Const::Null.to_string(), "ptr null");
    }
}
