//! # khaos-pass — the unified build-pipeline API
//!
//! Every experiment in the paper is a cross-product of *build
//! pipelines*: Khaos fission/fusion/FuFi variants, the O-LLVM
//! Sub/Bog/Fla baselines, `-O0..-O3`+LTO sweeps, and BinTuner's searched
//! pass sequences. This crate makes those pipelines first-class data
//! instead of hand-wired code:
//!
//! * [`Pass`] — one trait for every transform: a name, a stable
//!   [`fingerprint`](Pass::fingerprint) contribution, and a
//!   [`run`](Pass::run) producing a timed [`PassReport`] with the IR
//!   delta (functions/blocks/instructions before → after).
//! * [`PassCtx`] — a single seeded context subsuming the legacy
//!   `KhaosContext`/`OllvmContext` pair: **one RNG stream** threaded
//!   through every pass (lent to each transform in turn, so a pipeline
//!   consumes randomness exactly as the monolithic entry points did),
//!   one stats sink, and a configurable [`VerifyPolicy`].
//! * [`Pipeline`] — an ordered pass sequence with a [builder]
//!   (`Pipeline::builder`), a stable [`Pipeline::fingerprint`] (the
//!   build-provenance key `khaos-diff`'s embedding cache uses), and a
//!   round-trippable textual spec grammar.
//!
//! ## The spec grammar
//!
//! A pipeline spec is `|`-separated atoms, each `name` or
//! `name(key=value,...)`:
//!
//! ```text
//! fission | fusion(arity=2,deep=false) | O2+lto
//! sub(ratio=0.5) | O2+lto
//! mem2reg | constprop | inline(threshold=96,exported=true) | dfe
//! ```
//!
//! Atoms: `fission`, `fusion` (`arity` 2–4, `deep`), `fusion_n`
//! (`arity`; the N-way driver at every arity, including 2), `fufi_sep`,
//! `fufi_ori`, `fufi_all`, `fufi_n` (`arity`), `sub`/`bog`/`fla`
//! (`ratio` 0–1), the scalar passes `mem2reg`/`constprop`/`cse`/`dce`/
//! `simplifycfg`, `inline` (`threshold`, `exported`), `dfe`, and the
//! macro-pipelines `O0`..`O3` with an optional `+lto` suffix (and an
//! `inline` threshold override). [`Pipeline::parse`] and the `Display`
//! impl round-trip: `parse(p.to_string()) == p`, with defaults omitted
//! from the canonical form.
//!
//! ```
//! use khaos_pass::{PassCtx, Pipeline};
//! use khaos_ir::{builder::FunctionBuilder, Module, Operand, Type};
//!
//! let mut m = Module::new("demo");
//! # let mut fb = FunctionBuilder::new("main", Type::I64);
//! # fb.ret(Some(Operand::const_int(Type::I64, 0)));
//! # m.push_function(fb.finish());
//! let pipeline = Pipeline::parse("fufi_all | O2+lto").unwrap();
//! let mut ctx = PassCtx::new(0xC60);
//! let report = pipeline.run(&mut m, &mut ctx).unwrap();
//! assert_eq!(report.passes.len(), 2);
//! assert_eq!(pipeline.to_string(), "fufi_all | O2+lto");
//! assert_eq!(Pipeline::parse(&pipeline.to_string()).unwrap(), pipeline);
//! ```
//!
//! Legacy entry points (`khaos_core::fission`, `khaos_ollvm::OllvmMode::
//! apply`, `khaos_opt::optimize`, …) remain as thin compatibility
//! wrappers; the adapter passes here are seed-equivalent to them —
//! byte-identical printed modules for the same seed, pinned by
//! `tests/seed_equivalence.rs`.

mod fingerprint;
mod passes;
mod spec;

pub use fingerprint::Fingerprint;
pub use passes::{
    DfePass, FissionPass, FufiKind, FufiNPass, FufiPass, FusionNPass, FusionPass, InlinePass,
    OllvmKind, OllvmPass, OptPass, ScalarKind, ScalarPass,
};
pub use spec::SpecError;

use khaos_core::{FissionStats, FusionStats, KhaosContext, KhaosOptions};
use khaos_ir::Module;
use khaos_ollvm::OllvmContext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::hash::Hasher;
use std::time::Duration;

/// When a pipeline re-verifies the module it is transforming.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyPolicy {
    /// Verify after every pass (the default): an invalid module is
    /// attributed to the pass that produced it.
    #[default]
    AfterEach,
    /// Verify once after the last pass — cheaper on long pipelines, at
    /// the cost of coarser attribution.
    AtEnd,
    /// Never verify (trusted pipelines in hot sweeps).
    Never,
    /// Verify *and* semantically audit after every pass: each pass's
    /// output is checked against the observable-behavior summary of its
    /// input ([`khaos_ir::ModuleSummary`]), so a structurally valid but
    /// semantically wrong transform (dropped store, retargeted call,
    /// orphaned effectful block) fails with [`PassError::Audit`].
    AuditAfterEach,
}

/// Failure modes of a pipeline run.
#[derive(Clone, Debug, PartialEq)]
pub enum PassError {
    /// The module failed verification; `pass` names the culprit (or the
    /// whole pipeline under [`VerifyPolicy::AtEnd`]).
    Verify {
        /// The pass after which verification failed.
        pass: String,
        /// The verifier report (first few errors).
        report: String,
    },
    /// A pass was configured outside its supported domain.
    Unsupported {
        /// The offending pass.
        pass: String,
        /// What was out of range.
        detail: String,
    },
    /// The module's audited observable behavior changed under
    /// [`VerifyPolicy::AuditAfterEach`]; `pass` names the culprit.
    Audit {
        /// The pass after which the audit failed.
        pass: String,
        /// Every violation the auditor found.
        diagnostics: Vec<khaos_ir::AuditDiagnostic>,
    },
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Verify { pass, report } => {
                write!(f, "pass `{pass}` produced invalid IR: {report}")
            }
            PassError::Unsupported { pass, detail } => {
                write!(f, "pass `{pass}` unsupported: {detail}")
            }
            PassError::Audit { pass, diagnostics } => {
                write!(
                    f,
                    "pass `{pass}` changed observable behavior ({} violation(s)):",
                    diagnostics.len()
                )?;
                for d in diagnostics.iter().take(8) {
                    write!(f, " {d};")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PassError {}

/// The one seeded context threaded through every pass of a pipeline.
///
/// Subsumes the legacy `KhaosContext` and `OllvmContext`: a single RNG
/// stream (lent to each transform via [`PassCtx::lend_khaos`] /
/// [`PassCtx::lend_ollvm`]), the Khaos tuning options, the Table-2
/// statistics sinks, and the verification policy.
#[derive(Debug)]
pub struct PassCtx {
    seed: u64,
    rng: StdRng,
    /// Khaos tuning knobs in effect (pass arguments override these
    /// per-pass without mutating the context).
    pub options: KhaosOptions,
    /// Accumulated fission counters (Table 2, upper half).
    pub fission_stats: FissionStats,
    /// Accumulated fusion counters (Table 2, lower half).
    pub fusion_stats: FusionStats,
    /// When the pipeline re-verifies the module.
    pub verify: VerifyPolicy,
}

impl PassCtx {
    /// A context with default options and [`VerifyPolicy::AfterEach`].
    pub fn new(seed: u64) -> Self {
        Self::with_options(seed, KhaosOptions::default())
    }

    /// A context with explicit Khaos options.
    pub fn with_options(seed: u64, options: KhaosOptions) -> Self {
        PassCtx {
            seed,
            rng: StdRng::seed_from_u64(seed),
            options,
            fission_stats: FissionStats::default(),
            fusion_stats: FusionStats::default(),
            verify: VerifyPolicy::default(),
        }
    }

    /// Sets the verification policy (builder style).
    pub fn with_verify(mut self, policy: VerifyPolicy) -> Self {
        self.verify = policy;
        self
    }

    /// The seed this context was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Direct access to the context's RNG stream (for custom passes).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Lends the RNG stream to a Khaos transform as a `KhaosContext`
    /// carrying `options` (or this context's options when `None`),
    /// then takes the stream back and merges the collected statistics.
    ///
    /// This is what keeps a pass sequence byte-identical to the legacy
    /// monolithic entry points: both consume the same single stream in
    /// the same order.
    pub fn lend_khaos<R>(
        &mut self,
        options: Option<KhaosOptions>,
        f: impl FnOnce(&mut KhaosContext) -> R,
    ) -> R {
        let rng = std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0));
        let options = options.unwrap_or_else(|| self.options.clone());
        let mut kctx = KhaosContext::from_rng(rng, options);
        let out = f(&mut kctx);
        let (rng, fission, fusion) = kctx.into_parts();
        self.rng = rng;
        self.fission_stats.merge(&fission);
        self.fusion_stats.merge(&fusion);
        out
    }

    /// Lends the RNG stream to an O-LLVM baseline transform as an
    /// `OllvmContext`, then takes it back.
    pub fn lend_ollvm<R>(&mut self, f: impl FnOnce(&mut OllvmContext) -> R) -> R {
        let rng = std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0));
        let mut octx = OllvmContext::from_rng(rng);
        let out = f(&mut octx);
        self.rng = octx.into_rng();
        out
    }
}

/// Module size snapshot for pass reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IrShape {
    /// Function definitions.
    pub functions: usize,
    /// Basic blocks across all functions.
    pub blocks: usize,
    /// Instructions across all functions.
    pub insts: usize,
}

impl IrShape {
    /// Measures `m`.
    pub fn of(m: &Module) -> Self {
        IrShape {
            functions: m.functions.len(),
            blocks: m.functions.iter().map(|f| f.blocks.len()).sum(),
            insts: m.inst_count(),
        }
    }
}

impl fmt::Display for IrShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f/{}b/{}i", self.functions, self.blocks, self.insts)
    }
}

/// What one pass did: wall-clock time and the IR delta.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// Canonical atom of the pass that ran (e.g. `fusion(arity=3)`).
    pub pass: String,
    /// Wall-clock duration of the pass.
    pub duration: Duration,
    /// Module shape before the pass.
    pub before: IrShape,
    /// Module shape after the pass.
    pub after: IrShape,
}

impl PassReport {
    /// Times `f` over `m` and snapshots the IR shape around it — the
    /// helper every adapter pass builds its report with.
    pub fn capture<E>(
        pass: impl Into<String>,
        m: &mut Module,
        f: impl FnOnce(&mut Module) -> Result<(), E>,
    ) -> Result<PassReport, E> {
        let pass = pass.into();
        let before = IrShape::of(m);
        let _span = khaos_obs::span_with(|| format!("pass:{pass}"));
        let (duration, res) = khaos_obs::timer::time(|| f(m));
        res?;
        Ok(PassReport {
            pass,
            duration,
            before,
            after: IrShape::of(m),
        })
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>9.3}ms  {} -> {}",
            self.pass,
            self.duration.as_secs_f64() * 1e3,
            self.before,
            self.after
        )
    }
}

/// Everything a [`Pipeline::run`] observed.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Canonical spec of the pipeline that ran.
    pub spec: String,
    /// The pipeline's stable fingerprint (build provenance).
    pub fingerprint: u64,
    /// The seed the context was created from.
    pub seed: u64,
    /// Per-pass reports in execution order.
    pub passes: Vec<PassReport>,
    /// Total wall-clock time including verification.
    pub total: Duration,
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline `{}` (fingerprint {:016x}, seed {:#x}) in {:.3}ms",
            self.spec,
            self.fingerprint,
            self.seed,
            self.total.as_secs_f64() * 1e3
        )?;
        for p in &self.passes {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

/// One build-pipeline transform.
///
/// Implementations must be deterministic given the [`PassCtx`] RNG
/// stream, must render their canonical spec atom via `Display`
/// (round-trippable through [`Pipeline::parse`]), and must feed every
/// behaviour-affecting knob into [`Pass::fingerprint`].
pub trait Pass: fmt::Display + Send + Sync {
    /// The pass's canonical spec atom (name plus non-default
    /// arguments). Defaults to the `Display` rendering.
    fn name(&self) -> String {
        self.to_string()
    }

    /// Feeds the pass identity and all knobs into a hasher.
    /// [`Pipeline::fingerprint`] folds these per-pass contributions, in
    /// order, through a stable [`Fingerprint`] hasher.
    fn fingerprint(&self, h: &mut dyn Hasher);

    /// Transforms `m`, returning the timed report (use
    /// [`PassReport::capture`]).
    ///
    /// # Errors
    /// [`PassError::Unsupported`] for out-of-domain configurations.
    /// Verification is the *pipeline's* job (per
    /// [`PassCtx::verify`]) — passes do not self-verify.
    fn run(&self, m: &mut Module, ctx: &mut PassCtx) -> Result<PassReport, PassError>;
}

fn verify_module(m: &Module) -> Result<(), String> {
    khaos_ir::verify::verify_module(m).map_err(|errs| {
        let mut s = String::new();
        for e in errs.iter().take(8) {
            s.push_str(&format!("{e}; "));
        }
        s
    })
}

/// An ordered sequence of passes — the first-class value the experiment
/// drivers, BinTuner and the cache provenance all share.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// The empty (identity) pipeline.
    pub fn new() -> Self {
        Pipeline { passes: Vec::new() }
    }

    /// A builder for programmatic construction.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder { passes: Vec::new() }
    }

    /// Parses a pipeline spec (see the crate docs for the grammar).
    /// Whitespace-only input is the empty pipeline.
    ///
    /// # Errors
    /// [`SpecError`] on unknown atoms, unknown or malformed arguments,
    /// or out-of-domain values.
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        Ok(Pipeline {
            passes: spec::parse_pipeline(spec)?,
        })
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The passes in execution order.
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True for the identity pipeline.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// A stable 64-bit fingerprint of the whole pipeline: pass count,
    /// then each pass's identity and knobs in order, through the fixed
    /// [`Fingerprint`] hasher. Equal pipelines (same passes, same
    /// knobs, same order) fingerprint equal on every platform and
    /// release; any knob change changes the value. This is the build
    /// provenance `khaos-diff`'s embedding cache keys on.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fingerprint::new();
        h.write_usize(self.passes.len());
        for p in &self.passes {
            p.fingerprint(&mut h);
        }
        h.finish()
    }

    /// Runs every pass in order over `m`, verifying per
    /// [`PassCtx::verify`].
    ///
    /// # Errors
    /// The first [`PassError`] encountered; `m` is left in its
    /// mid-pipeline state (clone first if you need rollback).
    pub fn run(&self, m: &mut Module, ctx: &mut PassCtx) -> Result<PipelineReport, PassError> {
        let _span = khaos_obs::span_with(|| format!("pipeline:{self}"));
        let start = khaos_obs::timer::Stopwatch::start();
        let mut reports = Vec::with_capacity(self.passes.len());
        // Under AuditAfterEach each pass's output summary becomes the next
        // pass's baseline, so the whole pipeline costs one summary per pass
        // plus the initial one.
        let mut summary = match ctx.verify {
            VerifyPolicy::AuditAfterEach => Some(khaos_ir::ModuleSummary::compute(m)),
            _ => None,
        };
        for pass in &self.passes {
            let report = pass.run(m, ctx)?;
            match ctx.verify {
                VerifyPolicy::AfterEach | VerifyPolicy::AuditAfterEach => {
                    let _v = khaos_obs::span("pass:verify");
                    verify_module(m).map_err(|report| PassError::Verify {
                        pass: pass.name(),
                        report,
                    })?;
                }
                VerifyPolicy::AtEnd | VerifyPolicy::Never => {}
            }
            if let Some(before) = summary.take() {
                let _a = khaos_obs::span("pass:audit");
                let (after, diagnostics) = khaos_ir::audit::audit_step(&before, m);
                if !diagnostics.is_empty() {
                    return Err(PassError::Audit {
                        pass: pass.name(),
                        diagnostics,
                    });
                }
                summary = Some(after);
            }
            reports.push(report);
        }
        if ctx.verify == VerifyPolicy::AtEnd && !self.passes.is_empty() {
            verify_module(m).map_err(|report| PassError::Verify {
                pass: self.to_string(),
                report,
            })?;
        }
        Ok(PipelineReport {
            spec: self.to_string(),
            fingerprint: self.fingerprint(),
            seed: ctx.seed(),
            passes: reports,
            total: start.elapsed(),
        })
    }

    /// Convenience: runs over a fresh default context seeded with
    /// `seed`, returning the report and the context (stats).
    ///
    /// # Errors
    /// As [`Pipeline::run`].
    pub fn run_seeded(
        &self,
        m: &mut Module,
        seed: u64,
    ) -> Result<(PipelineReport, PassCtx), PassError> {
        let mut ctx = PassCtx::new(seed);
        let report = self.run(m, &mut ctx)?;
        Ok((report, ctx))
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.passes {
            if !first {
                write!(f, " | ")?;
            }
            first = false;
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pipeline({self})")
    }
}

impl std::str::FromStr for Pipeline {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pipeline::parse(s)
    }
}

/// Pipelines compare by canonical spec: same passes, same knobs, same
/// order. (`Display` is injective over the pass set — every knob is
/// rendered — so this is structural equality.)
impl PartialEq for Pipeline {
    fn eq(&self, other: &Self) -> bool {
        self.passes.len() == other.passes.len()
            && self
                .passes
                .iter()
                .zip(&other.passes)
                .all(|(a, b)| a.to_string() == b.to_string())
    }
}

impl Eq for Pipeline {}

/// Incremental [`Pipeline`] construction.
pub struct PipelineBuilder {
    passes: Vec<Box<dyn Pass>>,
}

impl PipelineBuilder {
    /// Appends any pass.
    pub fn pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends the fission primitive.
    pub fn fission(self) -> Self {
        self.pass(FissionPass)
    }

    /// Appends pairwise fusion with default knobs.
    pub fn fusion(self) -> Self {
        self.pass(FusionPass::default())
    }

    /// Appends the `O2 + LTO` macro-pipeline (the paper's baseline).
    pub fn baseline_opt(self) -> Self {
        self.pass(OptPass::baseline())
    }

    /// Appends every atom of a parsed spec fragment.
    ///
    /// # Errors
    /// [`SpecError`] as in [`Pipeline::parse`].
    pub fn spec(mut self, fragment: &str) -> Result<Self, SpecError> {
        self.passes.extend(spec::parse_pipeline(fragment)?);
        Ok(self)
    }

    /// Finishes the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline {
            passes: self.passes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pipeline_is_identity_and_roundtrips() {
        let p = Pipeline::parse("  ").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "");
        assert_eq!(Pipeline::parse("").unwrap(), p);
        let mut m = Module::new("m");
        let report = p.run(&mut m, &mut PassCtx::new(1)).unwrap();
        assert!(report.passes.is_empty());
    }

    #[test]
    fn builder_matches_parse() {
        let built = Pipeline::builder()
            .fission()
            .fusion()
            .baseline_opt()
            .build();
        let parsed = Pipeline::parse("fission | fusion | O2+lto").unwrap();
        assert_eq!(built, parsed);
        assert_eq!(built.fingerprint(), parsed.fingerprint());
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let a = Pipeline::parse("fission | fusion").unwrap();
        let b = Pipeline::parse("fusion | fission").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a, b);
    }

    #[test]
    fn lend_without_draws_leaves_the_stream_untouched() {
        use rand::Rng;
        let mut ctx = PassCtx::new(9);
        assert_eq!(ctx.seed(), 9);
        let a: u64 = ctx.rng().gen();
        ctx.lend_khaos(None, |_k| ());
        ctx.lend_ollvm(|_o| ());
        let b: u64 = ctx.rng().gen();
        let mut twin = PassCtx::new(9);
        let ta: u64 = twin.rng().gen();
        let tb: u64 = twin.rng().gen();
        assert_eq!(
            (a, b),
            (ta, tb),
            "lends without draws must not perturb the stream"
        );
    }

    #[test]
    fn lend_khaos_merges_stats() {
        let mut ctx = PassCtx::new(9);
        ctx.lend_khaos(None, |k| {
            k.fission_stats.sep_funcs += 3;
            k.fusion_stats.fus_funcs += 2;
        });
        ctx.lend_khaos(None, |k| k.fission_stats.sep_funcs += 4);
        assert_eq!(ctx.fission_stats.sep_funcs, 7);
        assert_eq!(ctx.fusion_stats.fus_funcs, 2);
    }
}
