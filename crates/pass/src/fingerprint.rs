//! The stable hasher behind [`crate::Pipeline::fingerprint`].

use std::hash::Hasher;

/// A 64-bit FNV-1a hasher with an explicitly little-endian integer
/// encoding.
///
/// [`std::collections::hash_map::DefaultHasher`] is documented as
/// unstable across Rust releases and `Hasher`'s default integer methods
/// feed native-endian bytes, so neither can back a fingerprint that is
/// meant to key caches and label build artifacts reproducibly. This
/// hasher is fixed forever: FNV-1a over bytes, multi-byte integers
/// widened to `u64` and written little-endian.
#[derive(Clone, Debug)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    /// The digest so far (same value [`Hasher::finish`] returns).
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fingerprint {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 = (self.0 ^ u64::from(*b)).wrapping_mul(Self::PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&u64::from(i).to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&u64::from(i).to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }

    fn write_i64(&mut self, i: i64) {
        self.write(&i.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_digests() {
        // The encoding is part of the public fingerprint contract:
        // these exact values must never change.
        let mut h = Fingerprint::new();
        assert_eq!(h.finish(), 0xcbf29ce484222325, "offset basis");
        h.write(b"fission");
        assert_eq!(h.finish(), 0xd7aa2e77064cd9a0, "fnv1a(\"fission\")");
    }

    #[test]
    fn integers_widen_to_le_u64() {
        let mut a = Fingerprint::new();
        a.write_u32(7);
        let mut b = Fingerprint::new();
        b.write_u64(7);
        let mut c = Fingerprint::new();
        c.write_usize(7);
        assert_eq!(a.finish(), b.finish());
        assert_eq!(b.finish(), c.finish());
    }

    #[test]
    fn order_sensitive() {
        let mut a = Fingerprint::new();
        a.write(b"ab");
        let mut b = Fingerprint::new();
        b.write(b"ba");
        assert_ne!(a.finish(), b.finish());
    }
}
