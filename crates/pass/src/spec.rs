//! The textual pipeline spec grammar: `|`-separated atoms, each
//! `name` or `name(key=value,...)`. Parsing is the inverse of the
//! passes' canonical `Display` — `Pipeline::parse(p.to_string()) == p`.

use crate::passes::{
    DfePass, FissionPass, FufiKind, FufiNPass, FufiPass, FusionNPass, FusionPass, InlinePass,
    OllvmKind, OllvmPass, OptPass, ScalarKind, ScalarPass,
};
use crate::Pass;
use khaos_opt::OptLevel;
use std::fmt;

/// A pipeline spec failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong, mentioning the offending atom.
    pub message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

pub(crate) fn parse_pipeline(spec: &str) -> Result<Vec<Box<dyn Pass>>, SpecError> {
    if spec.trim().is_empty() {
        return Ok(Vec::new());
    }
    spec.split('|').map(parse_atom).collect()
}

/// One `key=value` argument.
struct Arg<'a> {
    key: &'a str,
    value: &'a str,
    used: bool,
}

fn parse_atom(atom: &str) -> Result<Box<dyn Pass>, SpecError> {
    let atom = atom.trim();
    let (head, mut args) = split_args(atom)?;
    if head.is_empty() {
        return Err(SpecError::new("empty atom (stray `|`?)"));
    }

    let pass: Box<dyn Pass> = match head {
        "fission" => Box::new(FissionPass),
        "fusion" => Box::new(FusionPass {
            arity: take_arity(&mut args, head)?,
            deep: take_bool(&mut args, "deep", head)?,
        }),
        "fusion_n" => Box::new(FusionNPass {
            arity: take_arity(&mut args, head)?,
        }),
        "fufi_sep" => Box::new(FufiPass {
            kind: FufiKind::Sep,
        }),
        "fufi_ori" => Box::new(FufiPass {
            kind: FufiKind::Ori,
        }),
        "fufi_all" => Box::new(FufiPass {
            kind: FufiKind::All,
        }),
        "fufi_n" => Box::new(FufiNPass {
            arity: take_arity(&mut args, head)?,
        }),
        "sub" | "bog" | "fla" => {
            let kind = match head {
                "sub" => OllvmKind::Sub,
                "bog" => OllvmKind::Bog,
                _ => OllvmKind::Fla,
            };
            let ratio = take_f64(&mut args, "ratio", head)?.unwrap_or(1.0);
            if !(0.0..=1.0).contains(&ratio) {
                return Err(SpecError::new(format!(
                    "`{head}`: ratio {ratio} outside [0, 1]"
                )));
            }
            Box::new(OllvmPass { kind, ratio })
        }
        "mem2reg" => scalar(ScalarKind::Mem2Reg),
        "constprop" => scalar(ScalarKind::ConstProp),
        "cse" => scalar(ScalarKind::Cse),
        "dce" => scalar(ScalarKind::Dce),
        "simplifycfg" => scalar(ScalarKind::SimplifyCfg),
        "inline" => Box::new(InlinePass {
            threshold: take_usize(&mut args, "threshold", head)?.unwrap_or(48),
            exported: take_bool(&mut args, "exported", head)?.unwrap_or(false),
        }),
        "dfe" => Box::new(DfePass),
        _ => parse_opt_level(head, &mut args)?,
    };

    if let Some(unused) = args.iter().find(|a| !a.used) {
        return Err(SpecError::new(format!(
            "`{head}` does not take an argument `{}`",
            unused.key
        )));
    }
    Ok(pass)
}

fn scalar(kind: ScalarKind) -> Box<dyn Pass> {
    Box::new(ScalarPass { kind })
}

fn parse_opt_level<'a>(head: &'a str, args: &mut [Arg<'a>]) -> Result<Box<dyn Pass>, SpecError> {
    let (level_str, lto) = match head.strip_suffix("+lto") {
        Some(l) => (l, true),
        None => (head, false),
    };
    let level = match level_str {
        "O0" => OptLevel::O0,
        "O1" => OptLevel::O1,
        "O2" => OptLevel::O2,
        "O3" => OptLevel::O3,
        _ => return Err(SpecError::new(format!("unknown pass `{head}`"))),
    };
    Ok(Box::new(OptPass {
        level,
        lto,
        inline_threshold: take_usize(args, "inline", head)?,
    }))
}

/// Fusion arity, validated against the §A.1 tag-bit domain at parse
/// time so a parsed pipeline never fails on ranges the grammar could
/// have caught.
fn take_arity(args: &mut [Arg<'_>], head: &str) -> Result<usize, SpecError> {
    let arity = take_usize(args, "arity", head)?.unwrap_or(2);
    if (2..=4).contains(&arity) {
        Ok(arity)
    } else {
        Err(SpecError::new(format!(
            "`{head}`: arity {arity} outside the supported range 2..=4"
        )))
    }
}

fn split_args(atom: &str) -> Result<(&str, Vec<Arg<'_>>), SpecError> {
    let Some(open) = atom.find('(') else {
        return Ok((atom, Vec::new()));
    };
    let Some(stripped) = atom[open..]
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
    else {
        return Err(SpecError::new(format!(
            "malformed argument list in `{atom}` (expected `name(key=value,...)`)"
        )));
    };
    let head = atom[..open].trim_end();
    let mut args = Vec::new();
    for part in stripped.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(SpecError::new(format!("empty argument in `{atom}`")));
        }
        let Some((key, value)) = part.split_once('=') else {
            return Err(SpecError::new(format!(
                "argument `{part}` in `{atom}` is not `key=value`"
            )));
        };
        args.push(Arg {
            key: key.trim(),
            value: value.trim(),
            used: false,
        });
    }
    Ok((head, args))
}

fn take<'a>(args: &mut [Arg<'a>], key: &str) -> Option<&'a str> {
    args.iter_mut().find(|a| a.key == key && !a.used).map(|a| {
        a.used = true;
        a.value
    })
}

fn take_usize(args: &mut [Arg<'_>], key: &str, head: &str) -> Result<Option<usize>, SpecError> {
    take(args, key)
        .map(|v| {
            v.parse()
                .map_err(|_| SpecError::new(format!("`{head}`: `{key}={v}` is not an integer")))
        })
        .transpose()
}

fn take_f64(args: &mut [Arg<'_>], key: &str, head: &str) -> Result<Option<f64>, SpecError> {
    take(args, key)
        .map(|v| {
            v.parse()
                .map_err(|_| SpecError::new(format!("`{head}`: `{key}={v}` is not a number")))
        })
        .transpose()
}

fn take_bool(args: &mut [Arg<'_>], key: &str, head: &str) -> Result<Option<bool>, SpecError> {
    take(args, key)
        .map(|v| match v {
            "true" => Ok(true),
            "false" => Ok(false),
            _ => Err(SpecError::new(format!(
                "`{head}`: `{key}={v}` is not `true`/`false`"
            ))),
        })
        .transpose()
}

#[cfg(test)]
mod tests {
    use crate::Pipeline;

    fn roundtrip(spec: &str) -> String {
        Pipeline::parse(spec).unwrap().to_string()
    }

    #[test]
    fn canonicalizes_whitespace_and_defaults() {
        assert_eq!(
            roundtrip("  fission |fusion( arity=2 , deep=false ) |  O2+lto "),
            "fission | fusion(deep=false) | O2+lto"
        );
        assert_eq!(roundtrip("sub(ratio=1)"), "sub");
        assert_eq!(roundtrip("fla(ratio=0.1)"), "fla(ratio=0.1)");
        assert_eq!(roundtrip("inline(threshold=48)"), "inline");
        assert_eq!(roundtrip("O3(inline=96)"), "O3(inline=96)");
    }

    #[test]
    fn every_atom_parses() {
        for atom in [
            "fission",
            "fusion",
            "fusion(arity=3)",
            "fusion(arity=4,deep=true)",
            "fusion_n",
            "fusion_n(arity=2)",
            "fusion_n(arity=4)",
            "fufi_sep",
            "fufi_ori",
            "fufi_all",
            "fufi_n",
            "fufi_n(arity=3)",
            "sub",
            "bog",
            "fla",
            "sub(ratio=0.25)",
            "mem2reg",
            "constprop",
            "cse",
            "dce",
            "simplifycfg",
            "inline",
            "inline(threshold=16,exported=true)",
            "dfe",
            "O0",
            "O1",
            "O2",
            "O3",
            "O2+lto",
            "O3+lto(inline=24)",
        ] {
            let p = Pipeline::parse(atom).unwrap_or_else(|e| panic!("{atom}: {e}"));
            assert_eq!(p.len(), 1, "{atom}");
            // Round-trip through the canonical form.
            let canon = p.to_string();
            assert_eq!(Pipeline::parse(&canon).unwrap(), p, "{atom} vs {canon}");
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "warp",
            "fission(x=1)",
            "fusion(arity=5)",
            "fusion(arity=two)",
            "fufi_n(arity=1)",
            "sub(ratio=1.5)",
            "sub(ratio=-0.1)",
            "fla(ratio)",
            "inline(exported=yes)",
            "O4",
            "O2+pgo",
            "fusion(arity=2",
            "fission | | fusion",
        ] {
            assert!(Pipeline::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }
}
