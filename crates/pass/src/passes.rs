//! Adapter passes wrapping every existing transform behind the one
//! [`Pass`] trait.
//!
//! Each adapter drives the *same* underlying implementation as the
//! legacy entry point it shadows (`khaos_core::fission`,
//! `khaos_ollvm::substitution`, `khaos_opt::optimize`, …) over the
//! [`PassCtx`]'s single RNG stream, so a one-atom pipeline is
//! byte-identical to the legacy call for the same seed (pinned by
//! `tests/seed_equivalence.rs`). Verification is left to the pipeline's
//! [`crate::VerifyPolicy`] — adapters never self-verify.

use crate::{Pass, PassCtx, PassError, PassReport};
use khaos_core::KhaosOptions;
use khaos_ir::{Function, Module, ProvKind};
use khaos_opt::{inline, OptLevel, OptOptions};
use std::fmt;
use std::hash::Hasher;

fn not_trampoline(f: &Function) -> bool {
    f.provenance.kind != ProvKind::Trampoline
}

fn sep_or_original(f: &Function) -> bool {
    matches!(f.provenance.kind, ProvKind::Sep | ProvKind::Original)
}

/// The fission primitive (paper §3.2): every eligible function is
/// separated into `sepFunc`s and a `remFunc`. Spec atom: `fission`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FissionPass;

impl fmt::Display for FissionPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fission")
    }
}

impl Pass for FissionPass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(b"fission");
    }

    fn run(&self, m: &mut Module, ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        PassReport::capture(self.name(), m, |m| {
            ctx.lend_khaos(None, |k| khaos_core::fission::run(m, k));
            Ok(())
        })
    }
}

/// The fusion primitive (paper §3.3): eligible functions are randomly
/// aggregated into `fusFunc`s. Spec atom: `fusion`, with `arity` (2–4,
/// default 2; >2 selects the N-way extension) and `deep` (deep fusion
/// of innocuous blocks; defaults to the context's option).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusionPass {
    /// Constituents per `fusFunc` (2–4; the §A.1 tag-bit budget).
    pub arity: usize,
    /// Per-pass override of [`KhaosOptions::deep_fusion`].
    pub deep: Option<bool>,
}

impl Default for FusionPass {
    fn default() -> Self {
        FusionPass {
            arity: 2,
            deep: None,
        }
    }
}

impl fmt::Display for FusionPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fusion")?;
        write_args(
            f,
            &[
                ("arity", (self.arity != 2).then(|| self.arity.to_string())),
                ("deep", self.deep.map(|d| d.to_string())),
            ],
        )
    }
}

impl Pass for FusionPass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(b"fusion");
        h.write_usize(self.arity);
        h.write_u8(match self.deep {
            None => 2,
            Some(false) => 0,
            Some(true) => 1,
        });
    }

    fn run(&self, m: &mut Module, ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        check_arity(self.arity, "fusion")?;
        let options = self.deep.map(|deep| KhaosOptions {
            deep_fusion: deep,
            ..ctx.options.clone()
        });
        let arity = self.arity;
        PassReport::capture(self.name(), m, |m| {
            ctx.lend_khaos(options, |k| {
                if arity == 2 {
                    khaos_core::fusion::run(m, k, not_trampoline);
                } else {
                    khaos_core::fusion::nway::run_n(m, k, arity, not_trampoline);
                }
            });
            Ok(())
        })
    }
}

fn check_arity(arity: usize, pass: &str) -> Result<(), PassError> {
    if (2..=khaos_core::fusion::MAX_ARITY).contains(&arity) {
        Ok(())
    } else {
        Err(PassError::Unsupported {
            pass: pass.into(),
            detail: format!("arity {arity} outside the supported range 2..=4"),
        })
    }
}

/// The N-way fusion extension driver at any arity, exactly the legacy
/// `khaos_core::fusion_n` entry point — including arity 2, where the
/// N-way group-building algorithm pairs differently than the pairwise
/// [`FusionPass`]. Spec atom: `fusion_n` with `arity` (2–4, default 2).
///
/// (`fusion(arity=k)` at `k >= 3` runs the same driver; this atom
/// exists so arity sweeps can hold the *driver* fixed across
/// `arity = 2..=4`, as the `ext-arity` experiment requires.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusionNPass {
    /// Constituents per `fusFunc` (2–4).
    pub arity: usize,
}

impl Default for FusionNPass {
    fn default() -> Self {
        FusionNPass { arity: 2 }
    }
}

impl fmt::Display for FusionNPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fusion_n")?;
        write_args(
            f,
            &[("arity", (self.arity != 2).then(|| self.arity.to_string()))],
        )
    }
}

impl Pass for FusionNPass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(b"fusion_n");
        h.write_usize(self.arity);
    }

    fn run(&self, m: &mut Module, ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        check_arity(self.arity, "fusion_n")?;
        let arity = self.arity;
        PassReport::capture(self.name(), m, |m| {
            ctx.lend_khaos(None, |k| {
                khaos_core::fusion::nway::run_n(m, k, arity, not_trampoline);
            });
            Ok(())
        })
    }
}

/// Which functions the fusion half of a FuFi combination may touch
/// (paper §3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FufiKind {
    /// Fuse only the `sepFunc`s fission created.
    Sep,
    /// Fuse only functions fission left untouched.
    Ori,
    /// Fuse `sepFunc`s and untouched originals uniformly.
    All,
}

impl FufiKind {
    fn atom(self) -> &'static str {
        match self {
            FufiKind::Sep => "fufi_sep",
            FufiKind::Ori => "fufi_ori",
            FufiKind::All => "fufi_all",
        }
    }
}

/// A FuFi combination: fission, then pairwise fusion over the
/// [`FufiKind`] selection. Spec atoms: `fufi_sep`, `fufi_ori`,
/// `fufi_all`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FufiPass {
    /// The fusion selection.
    pub kind: FufiKind,
}

impl fmt::Display for FufiPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.atom())
    }
}

impl Pass for FufiPass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(self.kind.atom().as_bytes());
    }

    fn run(&self, m: &mut Module, ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        let kind = self.kind;
        PassReport::capture(self.name(), m, |m| {
            ctx.lend_khaos(None, |k| {
                khaos_core::fission::run(m, k);
                match kind {
                    FufiKind::Sep => {
                        khaos_core::fusion::run(m, k, |f| f.provenance.kind == ProvKind::Sep)
                    }
                    FufiKind::Ori => {
                        khaos_core::fusion::run(m, k, |f| f.provenance.kind == ProvKind::Original)
                    }
                    FufiKind::All => khaos_core::fusion::run(m, k, sep_or_original),
                }
            });
            Ok(())
        })
    }
}

/// FuFi.all at a chosen N-way fusion arity (the `fufi_n` extension):
/// fission, then N-way fusion over `sepFunc`s and untouched originals.
/// Spec atom: `fufi_n` with `arity` (2–4, default 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FufiNPass {
    /// Constituents per `fusFunc` (2–4).
    pub arity: usize,
}

impl Default for FufiNPass {
    fn default() -> Self {
        FufiNPass { arity: 2 }
    }
}

impl fmt::Display for FufiNPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fufi_n")?;
        write_args(
            f,
            &[("arity", (self.arity != 2).then(|| self.arity.to_string()))],
        )
    }
}

impl Pass for FufiNPass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(b"fufi_n");
        h.write_usize(self.arity);
    }

    fn run(&self, m: &mut Module, ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        check_arity(self.arity, "fufi_n")?;
        let arity = self.arity;
        PassReport::capture(self.name(), m, |m| {
            ctx.lend_khaos(None, |k| {
                khaos_core::fission::run(m, k);
                khaos_core::fusion::nway::run_n(m, k, arity, sep_or_original);
            });
            Ok(())
        })
    }
}

/// Which O-LLVM baseline transform an [`OllvmPass`] applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OllvmKind {
    /// Instruction substitution (**Sub**).
    Sub,
    /// Bogus control flow (**Bog**).
    Bog,
    /// Control-flow flattening (**Fla**).
    Fla,
}

impl OllvmKind {
    fn atom(self) -> &'static str {
        match self {
            OllvmKind::Sub => "sub",
            OllvmKind::Bog => "bog",
            OllvmKind::Fla => "fla",
        }
    }
}

/// An O-LLVM baseline transform at a ratio of functions/instructions
/// (paper §2.2). Spec atoms: `sub`, `bog`, `fla`, each with `ratio`
/// (0–1, default 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OllvmPass {
    /// Which transform.
    pub kind: OllvmKind,
    /// Application ratio in `[0, 1]`.
    pub ratio: f64,
}

impl OllvmPass {
    /// A transform at full ratio.
    pub fn full(kind: OllvmKind) -> Self {
        OllvmPass { kind, ratio: 1.0 }
    }
}

impl fmt::Display for OllvmPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.atom())?;
        write_args(
            f,
            &[("ratio", (self.ratio < 1.0).then(|| self.ratio.to_string()))],
        )
    }
}

impl Pass for OllvmPass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(self.kind.atom().as_bytes());
        h.write_u64(self.ratio.to_bits());
    }

    fn run(&self, m: &mut Module, ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        if !(0.0..=1.0).contains(&self.ratio) {
            return Err(PassError::Unsupported {
                pass: self.kind.atom().into(),
                detail: format!("ratio {} outside [0, 1]", self.ratio),
            });
        }
        let (kind, ratio) = (self.kind, self.ratio);
        PassReport::capture(self.name(), m, |m| {
            ctx.lend_ollvm(|o| match kind {
                OllvmKind::Sub => khaos_ollvm::substitution(m, o, ratio),
                OllvmKind::Bog => khaos_ollvm::bogus_control_flow(m, o, ratio),
                OllvmKind::Fla => khaos_ollvm::flattening(m, o, ratio),
            });
            Ok(())
        })
    }
}

/// One scalar cleanup pass applied function-by-function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalarKind {
    /// Alloca promotion.
    Mem2Reg,
    /// Constant/copy propagation and folding.
    ConstProp,
    /// Local common-subexpression elimination.
    Cse,
    /// Liveness-based dead code elimination.
    Dce,
    /// CFG simplification.
    SimplifyCfg,
}

impl ScalarKind {
    fn atom(self) -> &'static str {
        match self {
            ScalarKind::Mem2Reg => "mem2reg",
            ScalarKind::ConstProp => "constprop",
            ScalarKind::Cse => "cse",
            ScalarKind::Dce => "dce",
            ScalarKind::SimplifyCfg => "simplifycfg",
        }
    }

    fn run_function(self, f: &mut Function) {
        match self {
            ScalarKind::Mem2Reg => {
                khaos_opt::mem2reg::run_function(f);
            }
            ScalarKind::ConstProp => {
                khaos_opt::constprop::run_function(f);
            }
            ScalarKind::Cse => {
                khaos_opt::cse::run_function(f);
            }
            ScalarKind::Dce => {
                khaos_opt::dce::run_function(f);
            }
            ScalarKind::SimplifyCfg => {
                khaos_opt::simplifycfg::run_function(f);
            }
        }
    }
}

/// A single `khaos-opt` scalar pass over every function. Spec atoms:
/// `mem2reg`, `constprop`, `cse`, `dce`, `simplifycfg`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScalarPass {
    /// Which scalar pass.
    pub kind: ScalarKind,
}

impl fmt::Display for ScalarPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.atom())
    }
}

impl Pass for ScalarPass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(self.kind.atom().as_bytes());
    }

    fn run(&self, m: &mut Module, _ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        let kind = self.kind;
        PassReport::capture(self.name(), m, |m| {
            for f in &mut m.functions {
                kind.run_function(f);
            }
            Ok(())
        })
    }
}

/// Bottom-up inlining. Spec atom: `inline` with `threshold`
/// (instruction count, default 48) and `exported` (inline across
/// module boundaries, default false).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InlinePass {
    /// Inliner cost threshold (instructions).
    pub threshold: usize,
    /// Allow inlining exported functions (the LTO effect).
    pub exported: bool,
}

impl Default for InlinePass {
    fn default() -> Self {
        InlinePass {
            threshold: 48,
            exported: false,
        }
    }
}

impl fmt::Display for InlinePass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inline")?;
        write_args(
            f,
            &[
                (
                    "threshold",
                    (self.threshold != 48).then(|| self.threshold.to_string()),
                ),
                ("exported", self.exported.then(|| "true".to_string())),
            ],
        )
    }
}

impl Pass for InlinePass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(b"inline");
        h.write_usize(self.threshold);
        h.write_u8(self.exported as u8);
    }

    fn run(&self, m: &mut Module, _ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        let opts = inline::InlineOptions {
            threshold: self.threshold,
            allow_exported: self.exported,
        };
        PassReport::capture(self.name(), m, |m| {
            inline::run_module(m, &opts);
            Ok(())
        })
    }
}

/// Dead internal function elimination (the LTO effect). Spec atom:
/// `dfe`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DfePass;

impl fmt::Display for DfePass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dfe")
    }
}

impl Pass for DfePass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(b"dfe");
    }

    fn run(&self, m: &mut Module, _ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        PassReport::capture(self.name(), m, |m| {
            khaos_opt::dfe::run_module(m);
            Ok(())
        })
    }
}

/// An `-O` macro-pipeline, exactly [`khaos_opt::optimize`]. Spec atoms:
/// `O0`..`O3`, with an optional `+lto` suffix and an `inline` threshold
/// override, e.g. `O2+lto`, `O3(inline=96)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptPass {
    /// Optimization level.
    pub level: OptLevel,
    /// Link-time optimization.
    pub lto: bool,
    /// Inliner threshold override.
    pub inline_threshold: Option<usize>,
}

impl OptPass {
    /// The paper's baseline: `O2+lto`.
    pub fn baseline() -> Self {
        OptPass {
            level: OptLevel::O2,
            lto: true,
            inline_threshold: None,
        }
    }

    /// A bare level without LTO.
    pub fn level(level: OptLevel) -> Self {
        OptPass {
            level,
            lto: false,
            inline_threshold: None,
        }
    }
}

impl fmt::Display for OptPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.level.name())?;
        if self.lto {
            write!(f, "+lto")?;
        }
        write_args(
            f,
            &[("inline", self.inline_threshold.map(|t| t.to_string()))],
        )
    }
}

impl Pass for OptPass {
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write(self.level.name().as_bytes());
        h.write_u8(self.lto as u8);
        match self.inline_threshold {
            None => h.write_u8(0),
            Some(t) => {
                h.write_u8(1);
                h.write_usize(t);
            }
        }
    }

    fn run(&self, m: &mut Module, _ctx: &mut PassCtx) -> Result<PassReport, PassError> {
        let opts = OptOptions {
            level: self.level,
            lto: self.lto,
            inline_threshold: self.inline_threshold,
        };
        PassReport::capture(self.name(), m, |m| {
            khaos_opt::optimize(m, &opts);
            Ok(())
        })
    }
}

/// Renders `(k=v,...)` for the `Some` arguments, or nothing when all
/// are `None` — the shared canonical-form helper.
fn write_args(f: &mut fmt::Formatter<'_>, args: &[(&str, Option<String>)]) -> fmt::Result {
    let mut open = false;
    for (key, value) in args {
        if let Some(v) = value {
            write!(f, "{}{key}={v}", if open { "," } else { "(" })?;
            open = true;
        }
    }
    if open {
        write!(f, ")")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;

    #[test]
    fn canonical_atoms_omit_defaults() {
        assert_eq!(FusionPass::default().to_string(), "fusion");
        assert_eq!(
            FusionPass {
                arity: 3,
                deep: Some(false)
            }
            .to_string(),
            "fusion(arity=3,deep=false)"
        );
        assert_eq!(FufiNPass { arity: 4 }.to_string(), "fufi_n(arity=4)");
        assert_eq!(OllvmPass::full(OllvmKind::Sub).to_string(), "sub");
        assert_eq!(
            OllvmPass {
                kind: OllvmKind::Fla,
                ratio: 0.1
            }
            .to_string(),
            "fla(ratio=0.1)"
        );
        assert_eq!(OptPass::baseline().to_string(), "O2+lto");
        assert_eq!(OptPass::level(OptLevel::O1).to_string(), "O1");
        assert_eq!(
            InlinePass {
                threshold: 96,
                exported: true
            }
            .to_string(),
            "inline(threshold=96,exported=true)"
        );
        assert_eq!(InlinePass::default().to_string(), "inline");
    }

    #[test]
    fn out_of_domain_knobs_error() {
        let mut m = Module::new("m");
        let mut ctx = PassCtx::new(1);
        let e = FusionPass {
            arity: 5,
            deep: None,
        }
        .run(&mut m, &mut ctx)
        .unwrap_err();
        assert!(matches!(e, PassError::Unsupported { .. }), "{e}");
        let e = OllvmPass {
            kind: OllvmKind::Bog,
            ratio: 1.5,
        }
        .run(&mut m, &mut ctx)
        .unwrap_err();
        assert!(matches!(e, PassError::Unsupported { .. }), "{e}");
    }

    #[test]
    fn distinct_knobs_distinct_fingerprints() {
        let fp = |spec: &str| Pipeline::parse(spec).unwrap().fingerprint();
        assert_ne!(fp("fla(ratio=0.1)"), fp("fla(ratio=1)"));
        assert_ne!(fp("fusion"), fp("fusion(deep=false)"));
        assert_ne!(fp("fusion"), fp("fusion(arity=3)"));
        assert_ne!(fp("O2"), fp("O2+lto"));
        assert_ne!(fp("sub"), fp("bog"));
        assert_ne!(fp("inline"), fp("inline(threshold=96)"));
    }
}
