//! Property test for the spec grammar: `parse(display(p)) == p` over
//! generated pipelines, with equal fingerprints and a stable canonical
//! form (display is a fixpoint of parse∘display).

use khaos_opt::OptLevel;
use khaos_pass::{
    DfePass, FissionPass, FufiKind, FufiNPass, FufiPass, FusionNPass, FusionPass, InlinePass,
    OllvmKind, OllvmPass, OptPass, Pipeline, ScalarKind, ScalarPass,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_pipeline(seed: u64, len: usize) -> Pipeline {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Pipeline::new();
    for _ in 0..len {
        match rng.gen_range(0..11u8) {
            0 => p.push(Box::new(FissionPass)),
            1 => p.push(Box::new(FusionPass {
                arity: rng.gen_range(2..=4),
                deep: [None, Some(true), Some(false)][rng.gen_range(0..3usize)],
            })),
            2 => p.push(Box::new(FufiPass {
                kind: [FufiKind::Sep, FufiKind::Ori, FufiKind::All][rng.gen_range(0..3usize)],
            })),
            3 => p.push(Box::new(FufiNPass {
                arity: rng.gen_range(2..=4),
            })),
            4 => p.push(Box::new(OllvmPass {
                kind: [OllvmKind::Sub, OllvmKind::Bog, OllvmKind::Fla][rng.gen_range(0..3usize)],
                // Any representable ratio in [0, 1]: Display renders the
                // shortest round-tripping decimal, so parse recovers the
                // exact bits.
                ratio: rng.gen_range(0..=1000u32) as f64 / 1000.0,
            })),
            5 => p.push(Box::new(ScalarPass {
                kind: [
                    ScalarKind::Mem2Reg,
                    ScalarKind::ConstProp,
                    ScalarKind::Cse,
                    ScalarKind::Dce,
                    ScalarKind::SimplifyCfg,
                ][rng.gen_range(0..5usize)],
            })),
            6 => p.push(Box::new(InlinePass {
                threshold: [0usize, 16, 48, 96, 160][rng.gen_range(0..5usize)],
                exported: rng.gen_bool(0.5),
            })),
            7 => p.push(Box::new(DfePass)),
            8 => p.push(Box::new(FusionNPass {
                arity: rng.gen_range(2..=4),
            })),
            _ => p.push(Box::new(OptPass {
                level: OptLevel::ALL[rng.gen_range(0..4usize)],
                lto: rng.gen_bool(0.5),
                inline_threshold: if rng.gen_bool(0.3) {
                    Some(rng.gen_range(1..200usize))
                } else {
                    None
                },
            })),
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn parse_display_roundtrip(seed in any::<u64>(), len in 0usize..7) {
        let p = random_pipeline(seed, len);
        let rendered = p.to_string();
        let reparsed = Pipeline::parse(&rendered)
            .unwrap_or_else(|e| panic!("`{rendered}` failed to reparse: {e}"));
        prop_assert_eq!(&reparsed, &p);
        prop_assert_eq!(reparsed.fingerprint(), p.fingerprint());
        // The canonical form is a fixpoint.
        prop_assert_eq!(reparsed.to_string(), rendered);
        prop_assert_eq!(reparsed.len(), len);
    }

    #[test]
    fn distinct_specs_distinct_fingerprints(seed in any::<u64>()) {
        // Two independently generated non-identical pipelines must not
        // collide (a smoke test of fingerprint injectivity over the
        // grammar; exact-collision probability is negligible).
        let a = random_pipeline(seed, 3);
        let b = random_pipeline(seed ^ 0x9E3779B97F4A7C15, 3);
        if a != b {
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        }
    }
}

#[test]
fn fingerprint_contract_is_pinned() {
    // The fingerprint keys persistent artifacts (cache keys, bench
    // provenance); a change here is a breaking change of that contract
    // and must be deliberate.
    let p = Pipeline::parse("fission | fusion(arity=2,deep=false) | O2+lto").unwrap();
    assert_eq!(p.to_string(), "fission | fusion(deep=false) | O2+lto");
    let again = Pipeline::parse(&p.to_string()).unwrap();
    assert_eq!(p.fingerprint(), again.fingerprint());
}
