//! Pins the compatibility contract of the pipeline redesign: every
//! adapter pass produces a **byte-identical printed module** to the
//! legacy entry point it wraps, for the same seed — including
//! multi-pass sequences (the legacy `obfuscate_ollvm`/`khaos_apply`
//! shapes) and the collected Table-2 statistics.

use khaos_core::{KhaosContext, KhaosMode};
use khaos_ir::printer::print_module;
use khaos_ir::Module;
use khaos_ollvm::OllvmMode;
use khaos_opt::{optimize, OptLevel, OptOptions};
use khaos_pass::{PassCtx, Pipeline};
use khaos_workloads::{coreutils_program, spec2006};

const SEED: u64 = 0xC60_2023;

fn programs() -> Vec<Module> {
    let mut v = vec![
        spec2006().swap_remove(3), // 429.mcf stand-in
        coreutils_program("cat", 6),
        coreutils_program("sort", 77),
    ];
    // The paper's pipeline position: obfuscation runs over the
    // already-optimized module.
    for m in &mut v {
        optimize(m, &OptOptions::baseline());
    }
    v
}

fn pipeline_build(base: &Module, spec: &str, seed: u64) -> (Module, PassCtx) {
    let mut m = base.clone();
    let pipeline = Pipeline::parse(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
    let (_, ctx) = pipeline
        .run_seeded(&mut m, seed)
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
    (m, ctx)
}

#[test]
fn khaos_entry_points_match_their_adapters() {
    type Legacy = fn(&mut Module, &mut KhaosContext) -> Result<(), khaos_core::KhaosError>;
    let cases: Vec<(&str, Legacy)> = vec![
        ("fission", khaos_core::fission),
        ("fusion", khaos_core::fusion),
        ("fufi_sep", khaos_core::fufi_sep),
        ("fufi_ori", khaos_core::fufi_ori),
        ("fufi_all", khaos_core::fufi_all),
    ];
    for base in programs() {
        for (spec, legacy) in &cases {
            let mut want = base.clone();
            let mut kctx = KhaosContext::new(SEED);
            legacy(&mut want, &mut kctx).unwrap();

            let (got, pctx) = pipeline_build(&base, spec, SEED);
            assert_eq!(
                print_module(&want),
                print_module(&got),
                "{}: `{spec}` diverged from the legacy entry point",
                base.name
            );
            assert_eq!(
                kctx.fission_stats, pctx.fission_stats,
                "{}: `{spec}` fission stats diverged",
                base.name
            );
            assert_eq!(
                kctx.fusion_stats, pctx.fusion_stats,
                "{}: `{spec}` fusion stats diverged",
                base.name
            );
        }
    }
}

#[test]
fn nway_entry_points_match_their_adapters() {
    for base in programs().into_iter().take(2) {
        // The `fusion_n` atom is the N-way driver at *every* arity —
        // including 2, where the pairwise `fusion` atom is a different
        // pairing algorithm.
        for arity in 2..=4usize {
            let mut want = base.clone();
            let mut kctx = KhaosContext::new(SEED);
            khaos_core::fusion_n(&mut want, &mut kctx, arity).unwrap();
            let (got, _) = pipeline_build(&base, &format!("fusion_n(arity={arity})"), SEED);
            assert_eq!(print_module(&want), print_module(&got), "fusion_n({arity})");
        }
        // `fusion(arity=k)` at k >= 3 runs the same N-way driver.
        for arity in 3..=4usize {
            let mut want = base.clone();
            let mut kctx = KhaosContext::new(SEED);
            khaos_core::fusion_n(&mut want, &mut kctx, arity).unwrap();
            let (got, _) = pipeline_build(&base, &format!("fusion(arity={arity})"), SEED);
            assert_eq!(
                print_module(&want),
                print_module(&got),
                "fusion(arity={arity})"
            );
        }
        for arity in 2..=4usize {
            let mut want = base.clone();
            let mut kctx = KhaosContext::new(SEED);
            khaos_core::fufi_n(&mut want, &mut kctx, arity).unwrap();
            let (got, _) = pipeline_build(&base, &format!("fufi_n(arity={arity})"), SEED);
            assert_eq!(print_module(&want), print_module(&got), "fufi_n({arity})");
        }
    }
}

#[test]
fn ollvm_modes_match_their_adapters() {
    let cases = [
        ("sub", OllvmMode::Sub(1.0)),
        ("bog", OllvmMode::Bog(1.0)),
        ("fla(ratio=0.1)", OllvmMode::Fla(0.1)),
        ("fla", OllvmMode::Fla(1.0)),
        ("sub(ratio=0.5)", OllvmMode::Sub(0.5)),
    ];
    for base in programs() {
        for (spec, mode) in cases {
            let mut want = base.clone();
            mode.apply(&mut want, SEED);
            let (got, _) = pipeline_build(&base, spec, SEED);
            assert_eq!(
                print_module(&want),
                print_module(&got),
                "{}: `{spec}` diverged from OllvmMode::apply",
                base.name
            );
        }
    }
}

#[test]
fn optimize_matches_the_opt_macro_pass() {
    for src in [spec2006().swap_remove(3), coreutils_program("wc", 7)] {
        for (spec, opts) in [
            ("O2+lto", OptOptions::baseline()),
            ("O0", OptOptions::level(OptLevel::O0)),
            ("O1", OptOptions::level(OptLevel::O1)),
            ("O2", OptOptions::level(OptLevel::O2)),
            ("O3", OptOptions::level(OptLevel::O3)),
            (
                "O3+lto(inline=24)",
                OptOptions {
                    level: OptLevel::O3,
                    lto: true,
                    inline_threshold: Some(24),
                },
            ),
        ] {
            let mut want = src.clone();
            optimize(&mut want, &opts);
            let (got, _) = pipeline_build(&src, spec, SEED);
            assert_eq!(
                print_module(&want),
                print_module(&got),
                "{}: `{spec}` diverged from optimize()",
                src.name
            );
        }
    }
}

#[test]
fn composite_pipelines_match_legacy_build_shapes() {
    // The two shapes every experiment driver used to hand-wire:
    // obfuscate-then-reoptimize for O-LLVM and Khaos builds.
    for base in programs() {
        // legacy `obfuscate_ollvm`
        let mut want = base.clone();
        OllvmMode::Sub(1.0).apply(&mut want, SEED);
        optimize(&mut want, &OptOptions::baseline());
        let (got, _) = pipeline_build(&base, "sub | O2+lto", SEED);
        assert_eq!(print_module(&want), print_module(&got), "{}", base.name);

        // legacy `khaos_apply_nway` — arity 2 must stay on the N-way
        // driver, not silently degrade to pairwise fusion.
        for arity in 2..=4usize {
            let mut want = base.clone();
            let mut kctx = KhaosContext::new(SEED);
            khaos_core::fusion_n(&mut want, &mut kctx, arity).unwrap();
            optimize(&mut want, &OptOptions::baseline());
            let (got, _) =
                pipeline_build(&base, &format!("fusion_n(arity={arity}) | O2+lto"), SEED);
            assert_eq!(
                print_module(&want),
                print_module(&got),
                "{}: fusion_n(arity={arity}) | O2+lto",
                base.name
            );
        }

        // legacy `khaos_apply`
        for mode in KhaosMode::ALL {
            let mut want = base.clone();
            let mut kctx = KhaosContext::new(SEED);
            mode.apply(&mut want, &mut kctx).unwrap();
            optimize(&mut want, &OptOptions::baseline());
            let atom = match mode {
                KhaosMode::Fission => "fission",
                KhaosMode::Fusion => "fusion",
                KhaosMode::FuFiSep => "fufi_sep",
                KhaosMode::FuFiOri => "fufi_ori",
                KhaosMode::FuFiAll => "fufi_all",
            };
            let (got, _) = pipeline_build(&base, &format!("{atom} | O2+lto"), SEED);
            assert_eq!(
                print_module(&want),
                print_module(&got),
                "{}: {atom} | O2+lto",
                base.name
            );
        }
    }
}

#[test]
fn pipelines_preserve_behaviour() {
    let base = &programs()[1];
    let want = khaos_vm::run_to_completion(base, &[3, 7]).unwrap();
    for spec in [
        "fufi_all | O2+lto",
        "sub | bog | O2",
        "fission | fla(ratio=0.1) | O2+lto",
    ] {
        let (m, _) = pipeline_build(base, spec, SEED);
        let got = khaos_vm::run_to_completion(&m, &[3, 7]).unwrap();
        assert_eq!(want.output, got.output, "{spec}");
        assert_eq!(want.exit_code, got.exit_code, "{spec}");
    }
}
