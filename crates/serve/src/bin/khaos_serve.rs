//! `khaos-serve` — run and exercise the corpus-search daemon.
//!
//! ```text
//! khaos-serve serve    --store DIR [--addr HOST:PORT] [--port-file PATH]
//! khaos-serve build    --store DIR [--tool NAME] [--config N] [--rows N]
//!                      [--dim N] [--seed N]
//! khaos-serve ping     (--addr HOST:PORT | --port-file PATH) [--token N]
//! khaos-serve query    (--addr | --port-file) --store DIR --tool NAME
//!                      [--as-tool NAME] [--config N] [--row I] [--k N]
//!                      [--nprobe N]
//! khaos-serve stats    (--addr | --port-file)
//! khaos-serve metrics  (--addr | --port-file)
//! khaos-serve shutdown (--addr | --port-file)
//! khaos-serve bad-frame (--addr | --port-file)
//!
//!   serve      load every index segment from the store, bind (port 0 =
//!              OS-assigned; the bound address goes to stdout and, with
//!              --port-file, to PATH), answer until a shutdown frame
//!   build      build a deterministic synthetic corpus index and persist
//!              it — the CI smoke corpus
//!   query      rank the top k corpus rows for row I of the tool's own
//!              indexed corpus (read client-side from the store), so the
//!              top hit must be the row itself; --as-tool sends the
//!              request under a different tool name (daemon-side miss
//!              smoke: expects the structured unknown-index error)
//!   metrics    print the daemon's rendered metrics registry (kind-25
//!              frame): request counters, per-request latency
//!              histograms, uptime, and the daemon process' global
//!              index/store telemetry
//!   bad-frame  send deliberate garbage and print the daemon's
//!              structured error reply (exits 0 only on an error frame)
//! ```

use khaos_index::{corpus_fingerprint, IndexParams, IvfIndex, RowMeta};
use khaos_serve::protocol::{Message, QueryReq, ERR_BAD_FRAME};
use khaos_serve::{Client, ServerHandle};
use khaos_store::Store;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    store: Option<String>,
    addr: Option<String>,
    port_file: Option<String>,
    tool: String,
    as_tool: Option<String>,
    config: u64,
    rows: usize,
    dim: usize,
    seed: u64,
    row: usize,
    k: usize,
    nprobe: usize,
    token: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        command: String::new(),
        store: std::env::var("KHAOS_STORE").ok(),
        addr: None,
        port_file: None,
        tool: "VulSeeker".to_string(),
        as_tool: None,
        config: 0,
        rows: 2000,
        dim: 64,
        seed: 0xC60_2023,
        row: 0,
        k: 10,
        nprobe: 0,
        token: 0xBEEF,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--store" => a.store = Some(val("--store")?),
            "--addr" => a.addr = Some(val("--addr")?),
            "--port-file" => a.port_file = Some(val("--port-file")?),
            "--tool" => a.tool = val("--tool")?,
            "--as-tool" => a.as_tool = Some(val("--as-tool")?),
            "--config" => a.config = num(&val("--config")?)?,
            "--rows" => a.rows = num(&val("--rows")?)? as usize,
            "--dim" => a.dim = num(&val("--dim")?)? as usize,
            "--seed" => a.seed = num(&val("--seed")?)?,
            "--row" => a.row = num(&val("--row")?)? as usize,
            "--k" => a.k = num(&val("--k")?)? as usize,
            "--nprobe" => a.nprobe = num(&val("--nprobe")?)? as usize,
            "--token" => a.token = num(&val("--token")?)?,
            _ if a.command.is_empty() => a.command = arg,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if a.command.is_empty() {
        return Err(
            "missing command (serve, build, ping, query, stats, metrics, shutdown, bad-frame)"
                .into(),
        );
    }
    Ok(a)
}

fn num(s: &str) -> Result<u64, String> {
    let (digits, radix) = match s.strip_prefix("0x") {
        Some(hex) => (hex, 16),
        None => (s, 10),
    };
    u64::from_str_radix(digits, radix).map_err(|e| format!("bad number {s:?}: {e}"))
}

fn addr_of(a: &Args) -> Result<String, String> {
    if let Some(addr) = &a.addr {
        return Ok(addr.clone());
    }
    if let Some(path) = &a.port_file {
        return std::fs::read_to_string(path)
            .map(|s| s.trim().to_string())
            .map_err(|e| format!("cannot read --port-file {path}: {e}"));
    }
    Err("need --addr or --port-file".into())
}

fn store_of(a: &Args) -> Result<Store, String> {
    let dir = a.store.as_ref().ok_or("need --store (or $KHAOS_STORE)")?;
    Store::open(dir).map_err(|e| format!("cannot open store {dir}: {e}"))
}

/// Deterministic clustered synthetic corpus: `rows` unit vectors in
/// 32 loose clusters — enough structure for IVF cells to mean
/// something, no RNG stream to drift between hosts.
fn synth_corpus(rows: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<RowMeta>) {
    let data = (0..rows)
        .map(|i| {
            let cluster = i % 32;
            (0..dim)
                .map(|d| {
                    let base = (((cluster * 131 + d * 17) % 255) as f64 / 127.5) - 1.0;
                    let h = (i as u64 ^ seed)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left((d % 61) as u32);
                    base + ((h as f64 / u64::MAX as f64) - 0.5) * 0.25
                })
                .collect()
        })
        .collect();
    let meta = (0..rows)
        .map(|i| RowMeta {
            binary: 0x5EED_0000 + (i / 64) as u64,
            function: (i % 64) as u32,
            name: format!("synth_{i}"),
        })
        .collect();
    (data, meta)
}

fn run(a: &Args) -> Result<(), String> {
    match a.command.as_str() {
        "serve" => {
            let store = store_of(a)?;
            let bind = a.addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_string());
            let handle = ServerHandle::serve_store(&store, &bind)
                .map_err(|e| format!("cannot serve: {e}"))?;
            println!("{}", handle.addr());
            if let Some(path) = &a.port_file {
                // Atomic write: a polling client must never read half
                // an address.
                let tmp = format!("{path}.tmp");
                std::fs::write(&tmp, format!("{}\n", handle.addr()))
                    .and_then(|()| std::fs::rename(&tmp, path))
                    .map_err(|e| format!("cannot write --port-file {path}: {e}"))?;
            }
            handle.wait();
            Ok(())
        }
        "build" => {
            let store = store_of(a)?;
            let (data, meta) = synth_corpus(a.rows, a.dim, a.seed);
            let emb = Arc::new(khaos_diff::engine::FunctionEmbeddings::from_rows(data));
            let fp = corpus_fingerprint(&a.tool, a.config, a.dim, &meta);
            let idx = IvfIndex::build(
                &a.tool,
                a.config,
                emb,
                meta,
                &IndexParams {
                    seed: a.seed,
                    ..IndexParams::default()
                },
            );
            idx.save(&store)
                .map_err(|e| format!("cannot save index: {e}"))?;
            println!(
                "built {} rows={} dim={} nlist={} nprobe={} corpus={fp:016x}",
                a.tool,
                idx.len(),
                idx.dim(),
                idx.nlist(),
                idx.default_nprobe()
            );
            Ok(())
        }
        "ping" => {
            let mut c = client(a)?;
            let t = c.ping(a.token).map_err(|e| format!("ping failed: {e}"))?;
            if t != a.token {
                return Err(format!("pong token {t:#x} != sent {:#x}", a.token));
            }
            println!("pong {t:#x}");
            Ok(())
        }
        "query" => {
            let store = store_of(a)?;
            let segments =
                IvfIndex::load_all(&store).map_err(|e| format!("cannot load segments: {e}"))?;
            let local = segments
                .iter()
                .find(|i| i.tool() == a.tool && (a.config == 0 || i.config() == a.config))
                .ok_or(format!("store has no index for tool {:?}", a.tool))?;
            if a.row >= local.len() {
                return Err(format!(
                    "--row {} out of range ({} corpus rows)",
                    a.row,
                    local.len()
                ));
            }
            let q = local.exact_rows().row(a.row).to_vec();
            let wire_tool = a.as_tool.clone().unwrap_or_else(|| a.tool.clone());
            let expect_miss = wire_tool != a.tool;
            let mut c = client(a)?;
            let result = c.query(QueryReq {
                tool: wire_tool,
                config: a.config,
                k: a.k as u32,
                nprobe: a.nprobe as u32,
                q,
            });
            if expect_miss {
                return match result {
                    Err(e) if e.to_string().contains("daemon error 2") => {
                        println!("daemon diagnosed: {e}");
                        Ok(())
                    }
                    Err(e) => Err(format!("expected the unknown-index error, got: {e}")),
                    Ok(_) => Err("expected the unknown-index error, got hits".into()),
                };
            }
            let hits = result.map_err(|e| format!("query failed: {e}"))?;
            for h in &hits {
                println!(
                    "row={} score={:.6} bin={:016x} fn={} {}",
                    h.row, h.score, h.binary, h.function, h.name
                );
            }
            let top = hits.first().ok_or("daemon returned no hits")?;
            if top.row != a.row as u64 {
                return Err(format!(
                    "self-query top hit is row {} (expected {})",
                    top.row, a.row
                ));
            }
            Ok(())
        }
        "stats" => {
            let mut c = client(a)?;
            let s = c.stats().map_err(|e| format!("stats failed: {e}"))?;
            println!("uptime_secs {}", s.uptime_secs);
            println!("queries {}", s.queries);
            println!("pings {}", s.pings);
            println!("stats_reqs {}", s.stats_reqs);
            println!("metrics_reqs {}", s.metrics_reqs);
            println!("errors {}", s.errors);
            for i in &s.indexes {
                println!(
                    "index {} cfg={:016x} corpus={:016x} rows={} dim={} nlist={} nprobe={}",
                    i.tool, i.config, i.corpus, i.rows, i.dim, i.nlist, i.nprobe
                );
            }
            Ok(())
        }
        "metrics" => {
            let mut c = client(a)?;
            let text = c.metrics().map_err(|e| format!("metrics failed: {e}"))?;
            print!("{text}");
            Ok(())
        }
        "shutdown" => {
            let mut c = client(a)?;
            c.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
            println!("daemon acknowledged shutdown");
            Ok(())
        }
        "bad-frame" => {
            let mut c = client(a)?;
            let reply = c
                .send_raw(b"this is not a KHST frame at all................")
                .map_err(|e| format!("no structured reply to garbage: {e}"))?;
            match reply {
                Message::Error { code, message } if code == ERR_BAD_FRAME => {
                    println!("daemon diagnosed: {message}");
                    Ok(())
                }
                other => Err(format!("expected a kind-18 error frame, got {other:?}")),
            }
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn client(a: &Args) -> Result<Client, String> {
    let addr = addr_of(a)?;
    Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("khaos-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let code = match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("khaos-serve: {e}");
            ExitCode::FAILURE
        }
    };
    khaos_obs::metrics::maybe_dump();
    code
}
