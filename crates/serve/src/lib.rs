//! # khaos-serve — the corpus-search daemon
//!
//! A long-lived process that loads every [`khaos_index::IvfIndex`]
//! segment from a `khaos-store` and answers ranked corpus queries over
//! a TCP socket. The wire protocol **is** the store record format:
//! each message is one `KHST` frame (magic, version, kind, length,
//! payload, FNV-1a checksum) with a wire-only kind in `16..=23` — see
//! [`protocol`] for the full frame grammar. Reusing the record codec
//! means scores cross the wire as raw f64 bits: a remote query is
//! bit-identical to a local [`khaos_index::IvfIndex::query_with`].
//!
//! ## Concurrency model
//!
//! One reader thread per connection parses frames and answers cheap
//! requests (ping, stats) inline. Queries are forwarded to a single
//! dispatcher thread that drains every request waiting in its channel
//! and executes the burst as **one batch** through
//! `khaos_par::par_map` — concurrent clients share a blocked scan
//! instead of contending thread-per-query. Each query's answer depends
//! only on its own request (the index is immutable and `query_with`
//! is deterministic), so batching cannot change any response: N
//! concurrent clients receive byte-identical frames to N serial ones,
//! at any `KHAOS_THREADS` — the concurrency suite pins this.
//!
//! ## Failure behavior
//!
//! Malformed input never panics or hangs the daemon: every frame
//! violation (bad magic, bad version, unknown kind, oversized length
//! prefix, checksum damage, unparseable payload) is answered with a
//! structured kind-18 error naming the violation, after which the
//! connection closes (framing may be lost). Other connections — and
//! new ones — are unaffected.
//!
//! A client that *stalls* mid-frame is a violation too: once the first
//! byte of a frame arrives, the whole frame must complete within the
//! per-frame deadline ([`ServeOptions::frame_deadline`], ten seconds
//! by default) or the daemon answers a structured `ERR_TIMEOUT` error
//! and disconnects — a half-sent header must never pin a reader
//! thread forever. Idle connections are legal at any duration: the
//! deadline clock only starts on a frame's first byte.

pub mod protocol;

use khaos_index::IvfIndex;
use protocol::{
    validate_header, FrameError, Hit, IndexInfo, Message, QueryReq, ServerStats, ERR_BAD_DIMS,
    ERR_BAD_FRAME, ERR_BAD_REQUEST, ERR_TIMEOUT, ERR_UNKNOWN_INDEX, ERR_UNSUPPORTED,
    FRAME_CHECKSUM_LEN, FRAME_HEADER_LEN, KIND_ERROR,
};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long blocking socket reads wait before re-checking the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Per-server tunables. Today that is one knob: the per-frame
/// deadline. An options struct (rather than an environment variable)
/// because several daemons with different deadlines coexist in one
/// test process, and a global env read would race between them.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Once a frame's first byte arrives, the rest of the frame must
    /// arrive within this window or the connection is answered with
    /// `ERR_TIMEOUT` and closed. Does not limit idle time between
    /// frames.
    pub frame_deadline: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            // Generous against slow networks, tiny against the threat
            // model (a stalled client pinning a reader thread for the
            // daemon's lifetime).
            frame_deadline: Duration::from_secs(10),
        }
    }
}

/// Hard cap on results per query (a hostile `k` must not make the
/// daemon heap-select the whole corpus).
pub const MAX_K: u32 = 4096;

/// Per-server daemon state. Request counters and latency histograms
/// live in a **per-server** `khaos_obs::Registry` (not the process
/// global): several daemons in one test process must not bleed counts
/// into each other. Both the kind-22 stats frame and the kind-25
/// metrics frame read these same atomics, so they cannot drift apart.
struct Shared {
    indexes: Vec<Arc<IvfIndex>>,
    registry: khaos_obs::Registry,
    started: Instant,
    req_queries: Arc<khaos_obs::Counter>,
    req_pings: Arc<khaos_obs::Counter>,
    req_stats: Arc<khaos_obs::Counter>,
    req_metrics: Arc<khaos_obs::Counter>,
    errors_sent: Arc<khaos_obs::Counter>,
    stalled_disconnects: Arc<khaos_obs::Counter>,
    query_ns: Arc<khaos_obs::Histogram>,
    shutdown: AtomicBool,
    options: ServeOptions,
}

impl Shared {
    fn new(indexes: Vec<IvfIndex>, options: ServeOptions) -> Shared {
        let registry = khaos_obs::Registry::new();
        Shared {
            indexes: indexes.into_iter().map(Arc::new).collect(),
            started: Instant::now(),
            req_queries: registry.counter("serve.requests.query"),
            req_pings: registry.counter("serve.requests.ping"),
            req_stats: registry.counter("serve.requests.stats"),
            req_metrics: registry.counter("serve.requests.metrics"),
            errors_sent: registry.counter("serve.errors_sent"),
            stalled_disconnects: registry.counter("serve.stalled_disconnects"),
            query_ns: registry.histogram("serve.query_ns"),
            registry,
            shutdown: AtomicBool::new(false),
            options,
        }
    }

    /// Resolves a query's index: exact `(tool, config)` match, or the
    /// first index of the tool when `config == 0`.
    fn resolve(&self, tool: &str, config: u64) -> Option<&Arc<IvfIndex>> {
        self.indexes
            .iter()
            .find(|i| i.tool() == tool && (config == 0 || i.config() == config))
    }

    fn answer_query(&self, req: &QueryReq) -> Message {
        let Some(idx) = self.resolve(&req.tool, req.config) else {
            return Message::Error {
                code: ERR_UNKNOWN_INDEX,
                message: format!(
                    "no index for tool {:?} cfg={:016x} (loaded: {})",
                    req.tool,
                    req.config,
                    self.indexes.len()
                ),
            };
        };
        if req.q.len() != idx.dim() {
            return Message::Error {
                code: ERR_BAD_DIMS,
                message: format!(
                    "query has {} dims, index {:?} has {}",
                    req.q.len(),
                    req.tool,
                    idx.dim()
                ),
            };
        }
        if req.k > MAX_K {
            return Message::Error {
                code: ERR_BAD_REQUEST,
                message: format!("k={} exceeds the {MAX_K} cap", req.k),
            };
        }
        let ranked = idx.query_with(&req.q, req.k as usize, req.nprobe as usize);
        Message::Hits(
            ranked
                .into_iter()
                .map(|(row, score)| {
                    let m = idx.meta(row);
                    Hit {
                        row: row as u64,
                        score,
                        binary: m.binary,
                        function: m.function,
                        name: m.name.clone(),
                    }
                })
                .collect(),
        )
    }

    /// Whole seconds since the daemon started, mirrored into the
    /// registry so the metrics frame reports it too.
    fn uptime_secs(&self) -> u64 {
        let secs = self.started.elapsed().as_secs();
        self.registry
            .gauge("serve.uptime_secs")
            .set(secs.min(i64::MAX as u64) as i64);
        secs
    }

    /// The kind-25 payload: this daemon's registry first, then the
    /// process-global one (index/store/diff telemetry) — names are
    /// namespaced per crate, so the sections cannot collide.
    fn metrics_text(&self) -> String {
        self.uptime_secs();
        let mut text = self.registry.render_text();
        text.push_str(&khaos_obs::Registry::global().render_text());
        text
    }

    fn stats(&self) -> Message {
        Message::Stats(ServerStats {
            queries: self.req_queries.get(),
            uptime_secs: self.uptime_secs(),
            pings: self.req_pings.get(),
            stats_reqs: self.req_stats.get(),
            metrics_reqs: self.req_metrics.get(),
            errors: self.errors_sent.get(),
            indexes: self
                .indexes
                .iter()
                .map(|i| IndexInfo {
                    tool: i.tool().to_string(),
                    config: i.config(),
                    corpus: i.corpus(),
                    rows: i.len() as u64,
                    dim: i.dim() as u64,
                    nlist: i.nlist() as u64,
                    nprobe: i.default_nprobe() as u32,
                })
                .collect(),
        })
    }
}

/// One forwarded query: the request, the reader's `serve:query` span
/// id (so the dispatcher's span can parent under it across threads),
/// and the reply channel.
type QueryJob = (QueryReq, Option<u64>, mpsc::Sender<Message>);

/// A running daemon: accept loop, per-connection readers, one
/// batching dispatcher. Stops on [`ServerHandle::stop`], on drop, or
/// when a client sends a kind-23 shutdown frame.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Loads every index segment from the store and serves on `addr`
    /// (use port 0 to let the OS pick; the bound port is in
    /// [`ServerHandle::addr`]).
    pub fn serve_store(store: &khaos_store::Store, addr: &str) -> io::Result<ServerHandle> {
        let indexes = IvfIndex::load_all(store)?;
        Self::serve(indexes, addr)
    }

    /// Serves the given indexes on `addr` with default [`ServeOptions`].
    pub fn serve(indexes: Vec<IvfIndex>, addr: &str) -> io::Result<ServerHandle> {
        Self::serve_with(indexes, addr, ServeOptions::default())
    }

    /// Serves the given indexes on `addr` with explicit options.
    pub fn serve_with(
        indexes: Vec<IvfIndex>,
        addr: &str,
        options: ServeOptions,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(indexes, options));
        let (dispatch_tx, dispatch_rx) = mpsc::channel::<QueryJob>();

        let mut threads = Vec::new();
        {
            // Dispatcher: drain whatever queries are waiting and run
            // the burst as one khaos-par batch.
            let shared = Arc::clone(&shared);
            threads.push(thread::spawn(move || loop {
                let first = match dispatch_rx.recv_timeout(POLL_INTERVAL) {
                    Ok(job) => job,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                };
                let mut batch = vec![first];
                while let Ok(job) = dispatch_rx.try_recv() {
                    batch.push(job);
                }
                let answers = khaos_par::par_map(batch.len(), |i| {
                    let (req, parent, _) = &batch[i];
                    let _span = khaos_obs::span_child_of("dispatch:answer", *parent);
                    let (ns, answer) = khaos_obs::timer::time_ns(|| shared.answer_query(req));
                    shared.query_ns.record(ns);
                    answer
                });
                for ((_, _, reply), answer) in batch.into_iter().zip(answers) {
                    // A reader that already hung up just drops its
                    // answer.
                    let _ = reply.send(answer);
                }
            }));
        }
        {
            // Accept loop. Connection readers are tracked so stop()
            // can join them.
            let shared = Arc::clone(&shared);
            let conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
            threads.push(thread::spawn(move || {
                loop {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shared = Arc::clone(&shared);
                            let tx = dispatch_tx.clone();
                            let h = thread::spawn(move || {
                                let _ = serve_connection(stream, &shared, &tx);
                            });
                            conns.lock().unwrap().push(h);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
                drop(dispatch_tx);
                let handles = std::mem::take(&mut *conns.lock().unwrap());
                for h in handles {
                    let _ = h.join();
                }
            }));
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown has been requested (by a client frame or
    /// [`ServerHandle::stop`]).
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon shuts down (a client kind-23 frame).
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Requests shutdown and joins every thread.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// How one `read_full` call ended.
enum ReadStatus {
    /// The buffer was filled.
    Complete,
    /// Clean end: the peer closed before the frame started, or
    /// shutdown was requested.
    Closed,
    /// The per-frame deadline expired with the frame incomplete — a
    /// stalled client. The caller answers `ERR_TIMEOUT` and
    /// disconnects.
    Stalled,
}

/// Reads exactly `buf.len()` bytes, tolerating read timeouts (the
/// shutdown flag is re-checked each poll) — but only until the
/// per-frame deadline: `frame_started` is stamped when the first byte
/// of the frame arrives (the header and body reads of one frame share
/// it), and once set, the read loop refuses to out-wait
/// `options.frame_deadline` past it. Without that bound a client
/// sending a partial frame and stalling would pin this reader thread
/// for the daemon's lifetime.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    frame_started: &mut Option<Instant>,
) -> io::Result<ReadStatus> {
    let mut got = 0;
    while got < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(ReadStatus::Closed);
        }
        if let Some(t0) = *frame_started {
            if t0.elapsed() > shared.options.frame_deadline {
                return Ok(ReadStatus::Stalled);
            }
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && frame_started.is_none() {
                    return Ok(ReadStatus::Closed);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => {
                got += n;
                frame_started.get_or_insert_with(Instant::now);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadStatus::Complete)
}

/// Writes one reply frame, counting kind-18 errors in the daemon's
/// registry — every error path funnels through here, so the error
/// count cannot under-report.
fn send(stream: &mut TcpStream, msg: &Message, shared: &Shared) -> io::Result<()> {
    if msg.kind() == KIND_ERROR {
        shared.errors_sent.inc();
    }
    stream.write_all(&msg.encode())
}

/// One connection: read frames until EOF, shutdown, or a frame
/// violation. Returns after sending a structured error on malformed
/// input (the stream's framing can no longer be trusted).
fn serve_connection(
    mut stream: TcpStream,
    shared: &Shared,
    dispatch: &mpsc::Sender<QueryJob>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    loop {
        // One deadline clock per frame, started by the frame's first
        // byte and shared by the header and body reads.
        let mut frame_started = None;
        let mut header = [0u8; FRAME_HEADER_LEN];
        match read_full(&mut stream, &mut header, shared, &mut frame_started)? {
            ReadStatus::Complete => {}
            ReadStatus::Closed => return Ok(()),
            ReadStatus::Stalled => return disconnect_stalled(&mut stream, shared),
        }
        let (kind, len) = match validate_header(&header) {
            Ok(v) => v,
            Err(e) => {
                send(&mut stream, &frame_error(&e), shared)?;
                return Ok(());
            }
        };
        let mut body = vec![0u8; len as usize + FRAME_CHECKSUM_LEN];
        match read_full(&mut stream, &mut body, shared, &mut frame_started)? {
            ReadStatus::Complete => {}
            ReadStatus::Closed => return Ok(()),
            ReadStatus::Stalled => return disconnect_stalled(&mut stream, shared),
        }
        let (payload, sum) = body.split_at(len as usize);
        let mut whole = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        whole.extend_from_slice(&header);
        whole.extend_from_slice(payload);
        if khaos_store::fnv1a(&whole) != u64::from_le_bytes(sum.try_into().unwrap()) {
            send(&mut stream, &frame_error(&FrameError::Checksum), shared)?;
            return Ok(());
        }
        let msg = match Message::decode(kind, payload) {
            Ok(m) => m,
            Err(e) => {
                send(&mut stream, &frame_error(&e), shared)?;
                return Ok(());
            }
        };
        match msg {
            Message::Ping(t) => {
                shared.req_pings.inc();
                send(&mut stream, &Message::Pong(t), shared)?
            }
            Message::StatsReq => {
                shared.req_stats.inc();
                let stats = shared.stats();
                send(&mut stream, &stats, shared)?
            }
            Message::MetricsReq => {
                shared.req_metrics.inc();
                let metrics = Message::Metrics(shared.metrics_text());
                send(&mut stream, &metrics, shared)?
            }
            Message::Query(req) => {
                shared.req_queries.inc();
                // The span covers read→dispatch→reply; its id crosses
                // to the dispatcher so `dispatch:answer` (and the
                // index spans under it) parent here.
                let span = khaos_obs::span("serve:query");
                let (tx, rx) = mpsc::channel();
                if dispatch.send((req, span.id(), tx)).is_err() {
                    return Ok(()); // daemon is shutting down
                }
                match rx.recv() {
                    Ok(answer) => send(&mut stream, &answer, shared)?,
                    Err(_) => return Ok(()),
                }
            }
            Message::Shutdown => {
                send(&mut stream, &Message::Shutdown, shared)?;
                shared.shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            }
            other => {
                send(
                    &mut stream,
                    &Message::Error {
                        code: ERR_UNSUPPORTED,
                        message: format!("frame kind {} is a reply, not a request", other.kind()),
                    },
                    shared,
                )?;
            }
        }
    }
}

fn frame_error(e: &FrameError) -> Message {
    Message::Error {
        code: ERR_BAD_FRAME,
        message: e.to_string(),
    }
}

/// Answers a stalled client with a structured `ERR_TIMEOUT` frame and
/// lets the connection close (the reader returns, dropping the
/// stream). A best-effort send: the client may already be gone.
fn disconnect_stalled(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    shared.stalled_disconnects.inc();
    let _ = send(
        stream,
        &Message::Error {
            code: ERR_TIMEOUT,
            message: format!(
                "frame incomplete after {}ms — closing the stalled connection \
                 (frames must arrive whole within the per-frame deadline)",
                shared.options.frame_deadline.as_millis()
            ),
        },
        shared,
    );
    Ok(())
}

/// A blocking client over one connection. Each request method writes a
/// frame and reads exactly one reply frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends a message and reads the reply.
    pub fn roundtrip(&mut self, msg: &Message) -> io::Result<Message> {
        self.stream.write_all(&msg.encode())?;
        self.read_reply()
    }

    /// Writes raw bytes (deliberately malformed frames included) and
    /// reads whatever single frame comes back.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<Message> {
        self.stream.write_all(bytes)?;
        self.read_reply()
    }

    /// Liveness probe; returns the echoed token.
    pub fn ping(&mut self, token: u64) -> io::Result<u64> {
        match self.roundtrip(&Message::Ping(token))? {
            Message::Pong(t) => Ok(t),
            other => Err(unexpected(&other)),
        }
    }

    /// Ranked corpus query. Returns the hit list, or the daemon's
    /// structured error as `Err(InvalidInput)` with the diagnosis.
    pub fn query(&mut self, req: QueryReq) -> io::Result<Vec<Hit>> {
        match self.roundtrip(&Message::Query(req))? {
            Message::Hits(hits) => Ok(hits),
            Message::Error { code, message } => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("daemon error {code}: {message}"),
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Daemon statistics.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.roundtrip(&Message::StatsReq)? {
            Message::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// The daemon's rendered metrics registry (kind-25 frame): one
    /// metric per line, `khaos_obs::Registry::render_text` format.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.roundtrip(&Message::MetricsReq)? {
            Message::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Orderly shutdown; resolves once the daemon acks.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.roundtrip(&Message::Shutdown)? {
            Message::Shutdown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn read_reply(&mut self) -> io::Result<Message> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let (kind, len) = validate_header(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut body = vec![0u8; len as usize + FRAME_CHECKSUM_LEN];
        self.stream.read_exact(&mut body)?;
        let (payload, sum) = body.split_at(len as usize);
        let mut whole = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        whole.extend_from_slice(&header);
        whole.extend_from_slice(payload);
        if khaos_store::fnv1a(&whole) != u64::from_le_bytes(sum.try_into().unwrap()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                FrameError::Checksum.to_string(),
            ));
        }
        Message::decode(kind, payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn unexpected(msg: &Message) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply frame kind {}", msg.kind()),
    )
}
