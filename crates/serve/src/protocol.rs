//! KHST wire frames: the store record grammar reused as a socket
//! protocol.
//!
//! A frame **is** a `khaos-store` record with an empty key block and a
//! wire-only kind:
//!
//! ```text
//! frame     := header payload checksum
//! header    := magic version kind payload_len     ; 17 bytes
//! magic     := "KHST"                             ; 4 bytes
//! version   := u32 = 2                            ; store FORMAT_VERSION
//! kind      := u8 in 16..=23                      ; wire kinds (disk kinds are 1..=5)
//! payload_len := u64 ≤ MAX_FRAME_PAYLOAD
//! checksum  := u64 FNV-1a over header ‖ payload
//! ```
//!
//! All integers little-endian, floats as raw IEEE-754 bits — the same
//! `Enc`/`Dec` pair the store uses, so scores round-trip bit-exactly.
//!
//! Wire kinds: 16 query, 17 hits, 18 error, 19 ping, 20 pong,
//! 21 stats request, 22 stats, 23 shutdown, 24 metrics request,
//! 25 metrics. Every validation failure is a typed [`FrameError`]; the
//! daemon answers kind-18 frames and never panics on malformed input.
//! Kinds 24/25 were added **additively** (no version bump): a client
//! that never sends kind 24 sees a byte-identical protocol.

use khaos_store::codec::{Dec, Enc};
use khaos_store::{fnv1a, FORMAT_VERSION, MAGIC};
use std::fmt;

/// Bytes before the payload: magic (4) + version (4) + kind (1) +
/// payload length (8).
pub const FRAME_HEADER_LEN: usize = 17;

/// Trailing FNV-1a checksum width.
pub const FRAME_CHECKSUM_LEN: usize = 8;

/// Hard cap on a frame payload; anything larger is rejected before a
/// single payload byte is read (a hostile length prefix must not make
/// the daemon allocate).
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 24;

/// Hard cap on query dimensionality (far above any real embedding).
pub const MAX_QUERY_DIM: u64 = 1 << 16;

/// Wire frame kinds. Disk records use 1..=5; the wire starts at 16 so
/// the two ranges can never be confused.
pub const KIND_QUERY: u8 = 16;
/// Ranked hits answering a query.
pub const KIND_HITS: u8 = 17;
/// Structured error reply.
pub const KIND_ERROR: u8 = 18;
/// Liveness probe carrying a token.
pub const KIND_PING: u8 = 19;
/// Ping reply echoing the token.
pub const KIND_PONG: u8 = 20;
/// Request for daemon statistics.
pub const KIND_STATS_REQ: u8 = 21;
/// Statistics reply.
pub const KIND_STATS: u8 = 22;
/// Orderly shutdown request (acked with another kind-23 frame).
pub const KIND_SHUTDOWN: u8 = 23;
/// Request for the daemon's metrics-registry rendering.
pub const KIND_METRICS_REQ: u8 = 24;
/// Metrics reply: the rendered `khaos_obs` registry text.
pub const KIND_METRICS: u8 = 25;

/// The valid wire kind range.
pub const WIRE_KINDS: std::ops::RangeInclusive<u8> = KIND_QUERY..=KIND_METRICS;

/// Error codes carried by kind-18 frames.
pub const ERR_BAD_FRAME: u32 = 1;
/// No index matches the requested tool/config.
pub const ERR_UNKNOWN_INDEX: u32 = 2;
/// Query dimensionality disagrees with the index.
pub const ERR_BAD_DIMS: u32 = 3;
/// Request parameters out of range.
pub const ERR_BAD_REQUEST: u32 = 4;
/// Valid frame kind that is not a request (e.g. a client sent hits).
pub const ERR_UNSUPPORTED: u32 = 5;
/// Daemon-side failure.
pub const ERR_INTERNAL: u32 = 6;
/// A frame was started but not completed within the per-frame
/// deadline — the daemon answers this and disconnects the stalled
/// client rather than pin a reader thread forever.
pub const ERR_TIMEOUT: u32 = 7;

/// Everything that can be wrong with a frame, as a typed value — the
/// daemon maps these onto [`ERR_BAD_FRAME`] replies and the fuzz suite
/// asserts the mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a header + checksum need.
    Truncated,
    /// First four bytes are not `KHST`.
    BadMagic([u8; 4]),
    /// Version field disagrees with the store format version.
    BadVersion(u32),
    /// Kind outside [`WIRE_KINDS`].
    UnknownKind(u8),
    /// Payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u64),
    /// FNV-1a checksum mismatch.
    Checksum,
    /// Structurally valid frame whose payload does not parse.
    BadPayload(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?} (want \"KHST\")"),
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported frame version {v} (this build speaks {FORMAT_VERSION})"
                )
            }
            FrameError::UnknownKind(k) => write!(
                f,
                "unknown frame kind {k} (wire kinds are {}..={})",
                *WIRE_KINDS.start(),
                *WIRE_KINDS.end()
            ),
            FrameError::Oversized(n) => {
                write!(
                    f,
                    "payload length {n} exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap"
                )
            }
            FrameError::Checksum => write!(f, "frame checksum mismatch"),
            FrameError::BadPayload(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl From<String> for FrameError {
    fn from(why: String) -> FrameError {
        FrameError::BadPayload(why)
    }
}

/// One corpus hit: the ranked row, its exact clamped score (raw-bit
/// round-tripped), and the row's provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Hit {
    /// Corpus row index inside the answering index.
    pub row: u64,
    /// Exact re-ranked score (bit-identical to a local scan).
    pub score: f64,
    /// Source binary fingerprint.
    pub binary: u64,
    /// Function index inside that binary.
    pub function: u32,
    /// Function symbol name (may be empty).
    pub name: String,
}

/// A corpus query: rank the top `k` rows of the `(tool, config)` index
/// for one L2-normalized embedding row. `config = 0` matches any
/// config of the tool; `nprobe = 0` uses the index default.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryReq {
    /// Differ name the corpus was embedded with.
    pub tool: String,
    /// Differ config fingerprint (`0` = any).
    pub config: u64,
    /// Result count.
    pub k: u32,
    /// Probe width (`0` = index default).
    pub nprobe: u32,
    /// The L2-normalized query row.
    pub q: Vec<f64>,
}

/// One loaded index, as reported by stats.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexInfo {
    /// Differ name.
    pub tool: String,
    /// Differ config fingerprint.
    pub config: u64,
    /// Corpus fingerprint.
    pub corpus: u64,
    /// Corpus rows.
    pub rows: u64,
    /// Embedding dimensionality.
    pub dim: u64,
    /// Coarse cells.
    pub nlist: u64,
    /// Default probe width.
    pub nprobe: u32,
}

/// Daemon statistics. Every count is sourced from the daemon's
/// `khaos_obs` metrics registry — the same atomics the kind-25 metrics
/// frame renders — so the two frames cannot drift apart.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Query frames received since startup (including ones answered
    /// with an error — request counts never under-report).
    pub queries: u64,
    /// Whole seconds since the daemon started serving.
    pub uptime_secs: u64,
    /// Ping frames received.
    pub pings: u64,
    /// Stats-request frames received.
    pub stats_reqs: u64,
    /// Metrics-request frames received.
    pub metrics_reqs: u64,
    /// Error frames sent (frame violations and request errors alike).
    pub errors: u64,
    /// Loaded index segments.
    pub indexes: Vec<IndexInfo>,
}

/// A decoded wire message (one per frame kind).
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Kind 16.
    Query(QueryReq),
    /// Kind 17.
    Hits(Vec<Hit>),
    /// Kind 18.
    Error {
        /// One of the `ERR_*` codes.
        code: u32,
        /// Human-readable diagnosis.
        message: String,
    },
    /// Kind 19.
    Ping(u64),
    /// Kind 20.
    Pong(u64),
    /// Kind 21.
    StatsReq,
    /// Kind 22.
    Stats(ServerStats),
    /// Kind 23.
    Shutdown,
    /// Kind 24.
    MetricsReq,
    /// Kind 25: the daemon's rendered metrics registry (one metric per
    /// line, `khaos_obs::Registry::render_text` format).
    Metrics(String),
}

impl Message {
    /// The frame kind this message travels as.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Query(_) => KIND_QUERY,
            Message::Hits(_) => KIND_HITS,
            Message::Error { .. } => KIND_ERROR,
            Message::Ping(_) => KIND_PING,
            Message::Pong(_) => KIND_PONG,
            Message::StatsReq => KIND_STATS_REQ,
            Message::Stats(_) => KIND_STATS,
            Message::Shutdown => KIND_SHUTDOWN,
            Message::MetricsReq => KIND_METRICS_REQ,
            Message::Metrics(_) => KIND_METRICS,
        }
    }

    /// Encodes the payload bytes (no header, no checksum).
    pub fn payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Message::Query(q) => {
                e.str(&q.tool);
                e.u64(q.config);
                e.u32(q.k);
                e.u32(q.nprobe);
                e.u64(q.q.len() as u64);
                for &v in &q.q {
                    e.f64(v);
                }
            }
            Message::Hits(hits) => {
                e.u64(hits.len() as u64);
                for h in hits {
                    e.u64(h.row);
                    e.f64(h.score);
                    e.u64(h.binary);
                    e.u32(h.function);
                    e.str(&h.name);
                }
            }
            Message::Error { code, message } => {
                e.u32(*code);
                e.str(message);
            }
            Message::Ping(t) | Message::Pong(t) => e.u64(*t),
            Message::StatsReq | Message::Shutdown | Message::MetricsReq => {}
            Message::Metrics(text) => e.str(text),
            Message::Stats(s) => {
                e.u64(s.queries);
                e.u64(s.uptime_secs);
                e.u64(s.pings);
                e.u64(s.stats_reqs);
                e.u64(s.metrics_reqs);
                e.u64(s.errors);
                e.u64(s.indexes.len() as u64);
                for i in &s.indexes {
                    e.str(&i.tool);
                    e.u64(i.config);
                    e.u64(i.corpus);
                    e.u64(i.rows);
                    e.u64(i.dim);
                    e.u64(i.nlist);
                    e.u32(i.nprobe);
                }
            }
        }
        e.into_bytes()
    }

    /// Encodes the complete frame: header, payload, checksum.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.kind(), &self.payload())
    }

    /// Decodes a validated `(kind, payload)` pair into a message.
    /// Trailing payload bytes are an error — a frame says exactly what
    /// its grammar says, nothing more.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Message, FrameError> {
        let mut d = Dec::new(payload);
        let msg = match kind {
            KIND_QUERY => {
                let tool = d.str()?;
                let config = d.u64()?;
                let k = d.u32()?;
                let nprobe = d.u32()?;
                let dim = d.u64()?;
                if dim > MAX_QUERY_DIM {
                    return Err(FrameError::BadPayload(format!(
                        "query dimensionality {dim} exceeds the {MAX_QUERY_DIM} cap"
                    )));
                }
                if (dim as usize).saturating_mul(8) > d.remaining() {
                    return Err(FrameError::BadPayload(format!(
                        "query claims {dim} dims but only {} payload bytes remain",
                        d.remaining()
                    )));
                }
                let mut q = Vec::with_capacity(dim as usize);
                for _ in 0..dim {
                    q.push(d.f64()?);
                }
                Message::Query(QueryReq {
                    tool,
                    config,
                    k,
                    nprobe,
                    q,
                })
            }
            KIND_HITS => {
                let n = d.u64()?;
                // Minimum encoded hit: row + score + binary + function
                // + empty-name length = 8 + 8 + 8 + 4 + 4 = 32 bytes.
                if (n as usize).saturating_mul(32) > d.remaining() {
                    return Err(FrameError::BadPayload(format!(
                        "hit list claims {n} entries but only {} payload bytes remain",
                        d.remaining()
                    )));
                }
                let mut hits = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    hits.push(Hit {
                        row: d.u64()?,
                        score: d.f64()?,
                        binary: d.u64()?,
                        function: d.u32()?,
                        name: d.str()?,
                    });
                }
                Message::Hits(hits)
            }
            KIND_ERROR => Message::Error {
                code: d.u32()?,
                message: d.str()?,
            },
            KIND_PING => Message::Ping(d.u64()?),
            KIND_PONG => Message::Pong(d.u64()?),
            KIND_STATS_REQ => Message::StatsReq,
            KIND_STATS => {
                let queries = d.u64()?;
                let uptime_secs = d.u64()?;
                let pings = d.u64()?;
                let stats_reqs = d.u64()?;
                let metrics_reqs = d.u64()?;
                let errors = d.u64()?;
                let n = d.u64()?;
                // Minimum encoded index entry: empty-tool length + five
                // u64 fields + nprobe = 4 + 5*8 + 4 = 48 bytes.
                if (n as usize).saturating_mul(48) > d.remaining() {
                    return Err(FrameError::BadPayload(format!(
                        "stats claim {n} indexes but only {} payload bytes remain",
                        d.remaining()
                    )));
                }
                let mut indexes = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    indexes.push(IndexInfo {
                        tool: d.str()?,
                        config: d.u64()?,
                        corpus: d.u64()?,
                        rows: d.u64()?,
                        dim: d.u64()?,
                        nlist: d.u64()?,
                        nprobe: d.u32()?,
                    });
                }
                Message::Stats(ServerStats {
                    queries,
                    uptime_secs,
                    pings,
                    stats_reqs,
                    metrics_reqs,
                    errors,
                    indexes,
                })
            }
            KIND_SHUTDOWN => Message::Shutdown,
            KIND_METRICS_REQ => Message::MetricsReq,
            KIND_METRICS => Message::Metrics(d.str()?),
            k => return Err(FrameError::UnknownKind(k)),
        };
        if d.remaining() != 0 {
            return Err(FrameError::BadPayload(format!(
                "{} trailing payload bytes",
                d.remaining()
            )));
        }
        Ok(msg)
    }
}

/// Builds the raw frame bytes for a kind and payload.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.bytes(&MAGIC);
    e.u32(FORMAT_VERSION);
    e.u8(kind);
    e.u64(payload.len() as u64);
    e.bytes(payload);
    let mut out = e.into_bytes();
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a 17-byte header, returning `(kind, payload_len)`.
/// Checks run in declaration order — magic, version, kind, length — so
/// the most diagnostic failure wins (a frame with bad magic is "not
/// ours", not "oversized").
pub fn validate_header(header: &[u8; FRAME_HEADER_LEN]) -> Result<(u8, u64), FrameError> {
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let kind = header[8];
    if !WIRE_KINDS.contains(&kind) {
        return Err(FrameError::UnknownKind(kind));
    }
    let len = u64::from_le_bytes(header[9..17].try_into().unwrap());
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    Ok((kind, len))
}

/// Decodes one complete frame from a byte buffer (the non-streaming
/// path: property tests and tools). Returns the message and the bytes
/// consumed.
pub fn decode_frame(bytes: &[u8]) -> Result<(Message, usize), FrameError> {
    if bytes.len() < FRAME_HEADER_LEN + FRAME_CHECKSUM_LEN {
        return Err(FrameError::Truncated);
    }
    let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
    let (kind, len) = validate_header(&header)?;
    let total = FRAME_HEADER_LEN + len as usize + FRAME_CHECKSUM_LEN;
    if bytes.len() < total {
        return Err(FrameError::Truncated);
    }
    let body = &bytes[..FRAME_HEADER_LEN + len as usize];
    let want = u64::from_le_bytes(
        bytes[FRAME_HEADER_LEN + len as usize..total]
            .try_into()
            .unwrap(),
    );
    if fnv1a(body) != want {
        return Err(FrameError::Checksum);
    }
    let msg = Message::decode(
        kind,
        &bytes[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize],
    )?;
    Ok((msg, total))
}
