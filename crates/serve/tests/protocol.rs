//! Wire-protocol battery: codec round-trips, hostile-input fuzzing,
//! and a live daemon that must answer structured errors — never
//! panic, never hang — whatever bytes arrive.

use khaos_diff::engine::FunctionEmbeddings;
use khaos_index::{IndexParams, IvfIndex, RowMeta};
use khaos_serve::protocol::{
    decode_frame, encode_frame, FrameError, Hit, IndexInfo, Message, QueryReq, ServerStats,
    ERR_BAD_FRAME, ERR_BAD_REQUEST, ERR_UNKNOWN_INDEX, ERR_UNSUPPORTED, FRAME_CHECKSUM_LEN,
    KIND_PONG, KIND_QUERY, MAX_FRAME_PAYLOAD,
};
use khaos_serve::{Client, ServerHandle, MAX_K};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random f64 in [-1, 1] from a seed and lane.
fn lane(seed: u64, d: usize) -> f64 {
    let h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left((d % 63) as u32)
        .wrapping_add(d as u64);
    (h as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn sample_messages(seed: u64) -> Vec<Message> {
    vec![
        Message::Ping(seed),
        Message::Pong(!seed),
        Message::StatsReq,
        Message::Shutdown,
        Message::Error {
            code: (seed % 7) as u32,
            message: format!("diag {seed:#x} with unicode ✓ and\nnewline"),
        },
        Message::Query(QueryReq {
            tool: format!("tool-{}", seed % 5),
            config: seed.rotate_left(9),
            k: (seed % 100) as u32,
            nprobe: (seed % 17) as u32,
            q: (0..(seed % 48) as usize).map(|d| lane(seed, d)).collect(),
        }),
        Message::Hits(
            (0..(seed % 6))
                .map(|i| Hit {
                    row: seed ^ i,
                    score: lane(seed, i as usize).abs(),
                    binary: seed.wrapping_add(i),
                    function: (i as u32) * 3,
                    name: if i % 2 == 0 {
                        format!("fn_{i}")
                    } else {
                        String::new()
                    },
                })
                .collect(),
        ),
        Message::MetricsReq,
        Message::Metrics(format!(
            "serve.requests.query counter {seed}\nserve.query_ns histogram count={seed} ✓\n"
        )),
        Message::Stats(ServerStats {
            queries: seed,
            uptime_secs: seed % 100_000,
            pings: seed.rotate_left(3),
            stats_reqs: seed % 7,
            metrics_reqs: seed % 3,
            errors: seed % 11,
            indexes: (0..(seed % 4))
                .map(|i| IndexInfo {
                    tool: format!("t{i}"),
                    config: seed ^ i,
                    corpus: seed.rotate_right(i as u32),
                    rows: 100 + i,
                    dim: 32,
                    nlist: 10,
                    nprobe: 5,
                })
                .collect(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// encode → decode is the identity for every message kind,
    /// including raw score bits.
    #[test]
    fn frames_round_trip(seed in any::<u64>()) {
        for msg in sample_messages(seed) {
            let bytes = msg.encode();
            let (back, consumed) = decode_frame(&bytes)
                .unwrap_or_else(|e| panic!("round trip of {msg:?}: {e}"));
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(&back, &msg);
            // Scores must cross the wire bit-exactly.
            if let (Message::Hits(a), Message::Hits(b)) = (&msg, &back) {
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
    }

    /// Every strict prefix of a valid frame is diagnosed as truncated
    /// — a partial read can never decode as something else.
    #[test]
    fn truncated_frames_are_diagnosed(seed in any::<u64>(), cut_salt in any::<u64>()) {
        for msg in sample_messages(seed) {
            let bytes = msg.encode();
            let cut = (cut_salt as usize) % bytes.len();
            prop_assert_eq!(
                decode_frame(&bytes[..cut]),
                Err(FrameError::Truncated),
                "cut at {} of {}", cut, bytes.len()
            );
        }
    }

    /// Any single-byte flip anywhere in a frame makes it undecodable
    /// (the checksum covers the header and payload; flips in the
    /// checksum itself mismatch it).
    #[test]
    fn single_byte_damage_never_decodes(seed in any::<u64>(), pos_salt in any::<u64>(), flip in 1u8..=255) {
        for msg in sample_messages(seed) {
            let mut bytes = msg.encode();
            let pos = (pos_salt as usize) % bytes.len();
            bytes[pos] ^= flip;
            prop_assert!(
                decode_frame(&bytes).is_err(),
                "flip {flip:#04x} at {pos} of {} decoded", bytes.len()
            );
        }
    }
}

#[test]
fn hostile_headers_are_typed() {
    // Wrong magic.
    let mut bytes = Message::Ping(7).encode();
    bytes[0] = b'X';
    assert_eq!(decode_frame(&bytes), Err(FrameError::BadMagic(*b"XHST")));

    // Wrong version.
    let mut bytes = Message::Ping(7).encode();
    bytes[4..8].copy_from_slice(&999u32.to_le_bytes());
    assert_eq!(decode_frame(&bytes), Err(FrameError::BadVersion(999)));

    // Disk record kind on the wire.
    let mut bytes = Message::Ping(7).encode();
    bytes[8] = 1; // KIND_EMBEDDINGS
    assert_eq!(decode_frame(&bytes), Err(FrameError::UnknownKind(1)));

    // Oversized length prefix: rejected before any allocation, even
    // though the buffer is tiny.
    let mut header = Vec::new();
    header.extend_from_slice(&khaos_store::MAGIC);
    header.extend_from_slice(&khaos_store::FORMAT_VERSION.to_le_bytes());
    header.push(KIND_PONG);
    header.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    header.extend_from_slice(&[0u8; FRAME_CHECKSUM_LEN]);
    assert_eq!(
        decode_frame(&header),
        Err(FrameError::Oversized(MAX_FRAME_PAYLOAD + 1))
    );

    // Checksum damage.
    let mut bytes = Message::Ping(7).encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    assert_eq!(decode_frame(&bytes), Err(FrameError::Checksum));

    // Structurally valid frame, nonsense payload: a query claiming
    // more dimensions than bytes.
    let mut p = Vec::new();
    p.extend_from_slice(&4u32.to_le_bytes()); // tool string length
    p.extend_from_slice(b"tool");
    p.extend_from_slice(&0u64.to_le_bytes()); // config
    p.extend_from_slice(&1u32.to_le_bytes()); // k
    p.extend_from_slice(&0u32.to_le_bytes()); // nprobe
    p.extend_from_slice(&u64::MAX.to_le_bytes()); // dim = 2^64-1
    let bytes = encode_frame(KIND_QUERY, &p);
    assert!(matches!(
        decode_frame(&bytes),
        Err(FrameError::BadPayload(_))
    ));

    // Trailing garbage after a valid payload.
    let mut p = 7u64.to_le_bytes().to_vec();
    p.push(0xAB);
    let bytes = encode_frame(KIND_PONG, &p);
    assert!(matches!(
        decode_frame(&bytes),
        Err(FrameError::BadPayload(_))
    ));
}

/// A tiny in-memory index for daemon tests.
fn tiny_index(tool: &str) -> IvfIndex {
    let rows: Vec<Vec<f64>> = (0..96)
        .map(|i| {
            (0..16)
                .map(|d| lane(i as u64, d) + ((i % 4) as f64))
                .collect()
        })
        .collect();
    let meta = (0..96)
        .map(|i| RowMeta {
            binary: 1,
            function: i as u32,
            name: format!("f{i}"),
        })
        .collect();
    IvfIndex::build(
        tool,
        9,
        Arc::new(FunctionEmbeddings::from_rows(rows)),
        meta,
        &IndexParams::default(),
    )
}

#[test]
fn daemon_answers_structured_errors_and_survives() {
    let server = ServerHandle::serve(vec![tiny_index("T")], "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Raw garbage → kind-18 error naming the violation; the daemon
    // then closes that connection but keeps serving new ones.
    let hostile: &[&[u8]] = &[
        b"GET / HTTP/1.1\r\n\r\n lots of bytes that are not KHST frames",
        &[0u8; 64],
        b"KHS", // shorter than a header: connection just closes on our side after timeout-free write; skip read
    ];
    for (i, bytes) in hostile.iter().enumerate().take(2) {
        let mut c = Client::connect(addr).unwrap();
        let reply = c.send_raw(bytes).unwrap();
        match reply {
            Message::Error { code, .. } => assert_eq!(code, ERR_BAD_FRAME, "case {i}"),
            other => panic!("case {i}: expected error frame, got {other:?}"),
        }
        let mut fresh = Client::connect(addr).unwrap();
        assert_eq!(fresh.ping(42 + i as u64).unwrap(), 42 + i as u64);
    }

    // Valid header, damaged checksum, over the wire.
    let mut bytes = Message::Ping(1).encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let mut c = Client::connect(addr).unwrap();
    match c.send_raw(&bytes).unwrap() {
        Message::Error { code, message } => {
            assert_eq!(code, ERR_BAD_FRAME);
            assert!(message.contains("checksum"), "{message}");
        }
        other => panic!("expected checksum error, got {other:?}"),
    }

    // Oversized length prefix over the wire: refused, not allocated.
    let mut header = Vec::new();
    header.extend_from_slice(&khaos_store::MAGIC);
    header.extend_from_slice(&khaos_store::FORMAT_VERSION.to_le_bytes());
    header.push(KIND_PONG);
    header.extend_from_slice(&(u64::MAX).to_le_bytes());
    let mut c = Client::connect(addr).unwrap();
    match c.send_raw(&header).unwrap() {
        Message::Error { code, message } => {
            assert_eq!(code, ERR_BAD_FRAME);
            assert!(message.contains("exceeds"), "{message}");
        }
        other => panic!("expected oversize error, got {other:?}"),
    }

    // Protocol-level errors are typed too.
    let mut c = Client::connect(addr).unwrap();
    let err = c
        .query(QueryReq {
            tool: "NoSuchTool".into(),
            config: 0,
            k: 5,
            nprobe: 0,
            q: vec![0.0; 16],
        })
        .unwrap_err();
    assert!(err
        .to_string()
        .contains(&format!("daemon error {ERR_UNKNOWN_INDEX}")));

    let err = c
        .query(QueryReq {
            tool: "T".into(),
            config: 0,
            k: 5,
            nprobe: 0,
            q: vec![0.5; 3], // wrong dimensionality
        })
        .unwrap_err();
    assert!(err.to_string().contains("daemon error 3"), "{err}");

    let err = c
        .query(QueryReq {
            tool: "T".into(),
            config: 0,
            k: MAX_K + 1,
            nprobe: 0,
            q: vec![0.5; 16],
        })
        .unwrap_err();
    assert!(
        err.to_string()
            .contains(&format!("daemon error {ERR_BAD_REQUEST}")),
        "{err}"
    );

    // A reply kind sent as a request.
    match c.roundtrip(&Message::Pong(3)).unwrap() {
        Message::Error { code, .. } => assert_eq!(code, ERR_UNSUPPORTED),
        other => panic!("expected unsupported error, got {other:?}"),
    }

    // After all that abuse the daemon still answers real queries.
    let hits = c
        .query(QueryReq {
            tool: "T".into(),
            config: 9,
            k: 3,
            nprobe: 0,
            q: tiny_index("T").exact_rows().row(5).to_vec(),
        })
        .unwrap();
    assert_eq!(hits[0].row, 5);
    assert_eq!(hits[0].name, "f5");
}

/// The kind-22 stats frame and the kind-25 metrics frame read the
/// same registry atomics: request counts never under-report (error
/// answers included) and the two frames cannot drift apart.
#[test]
fn stats_and_metrics_frames_agree() {
    let server = ServerHandle::serve(vec![tiny_index("T")], "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();

    c.ping(1).unwrap();
    c.ping(2).unwrap();
    let q = tiny_index("T").exact_rows().row(7).to_vec();
    c.query(QueryReq {
        tool: "T".into(),
        config: 0,
        k: 3,
        nprobe: 0,
        q: q.clone(),
    })
    .unwrap();
    // A query answered with an error still counts as a query request
    // *and* as a sent error frame.
    c.query(QueryReq {
        tool: "NoSuchTool".into(),
        config: 0,
        k: 3,
        nprobe: 0,
        q,
    })
    .unwrap_err();

    let stats = c.stats().unwrap();
    assert_eq!(stats.pings, 2, "ping count");
    assert_eq!(stats.queries, 2, "query count includes error answers");
    assert_eq!(stats.errors, 1, "error-frame count");
    assert_eq!(stats.stats_reqs, 1, "stats request count");
    assert_eq!(stats.metrics_reqs, 0);

    let text = c.metrics().unwrap();
    assert!(
        text.contains("serve.requests.ping counter 2"),
        "metrics text:\n{text}"
    );
    assert!(
        text.contains("serve.requests.query counter 2"),
        "metrics text:\n{text}"
    );
    assert!(
        text.contains("serve.errors_sent counter 1"),
        "metrics text:\n{text}"
    );
    assert!(
        text.contains("serve.query_ns histogram count=2"),
        "metrics text:\n{text}"
    );

    // The metrics request itself is counted, visible to the next
    // stats frame — same atomics, no drift.
    let stats = c.stats().unwrap();
    assert_eq!(stats.metrics_reqs, 1);
    assert_eq!(stats.stats_reqs, 2);
}

#[test]
fn shutdown_frame_stops_the_daemon() {
    let server = ServerHandle::serve(vec![tiny_index("T")], "127.0.0.1:0").unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    c.shutdown().unwrap();
    server.wait();
    // The port is released: a fresh connect must fail (or be refused
    // on first use).
    std::thread::sleep(std::time::Duration::from_millis(50));
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.ping(1).is_err(), "daemon still answering after shutdown");
        }
    }
}

#[test]
fn stalled_client_gets_timeout_error_and_disconnect() {
    use khaos_serve::protocol::ERR_TIMEOUT;
    use khaos_serve::ServeOptions;
    use std::io::{Read, Write};
    use std::time::{Duration, Instant};

    // A short deadline so the test is fast; POLL_INTERVAL inside the
    // daemon is 100ms, so 300ms spans several polls.
    let server = ServerHandle::serve_with(
        vec![tiny_index("T")],
        "127.0.0.1:0",
        ServeOptions {
            frame_deadline: Duration::from_millis(300),
        },
    )
    .unwrap();
    let addr = server.addr();

    // The stalled client: three bytes of magic, then silence. Without
    // the per-frame deadline this reader thread would be pinned
    // forever (the regression this test covers).
    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(b"KHS").unwrap();

    // An idle connection that never starts a frame is legal at any
    // duration — the deadline clock starts on a frame's first byte —
    // and a well-behaved client keeps getting answers while the
    // stalled one waits out its deadline.
    let idle = std::net::TcpStream::connect(addr).unwrap();
    let mut polite = Client::connect(addr).unwrap();
    assert_eq!(polite.ping(7).unwrap(), 7);

    // The stalled connection receives a structured ERR_TIMEOUT frame,
    // then EOF.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let t0 = Instant::now();
    stalled.read_to_end(&mut buf).unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "daemon must disconnect the stalled client, not out-wait it"
    );
    let (msg, _) = decode_frame(&buf).expect("a complete error frame before EOF");
    match msg {
        Message::Error { code, message } => {
            assert_eq!(code, ERR_TIMEOUT);
            assert!(message.contains("stalled"), "{message}");
        }
        other => panic!("expected ERR_TIMEOUT frame, got {other:?}"),
    }

    // The daemon survives: the idle connection is still usable and
    // fresh clients are served.
    drop(idle);
    assert_eq!(polite.ping(8).unwrap(), 8);
    let mut fresh = Client::connect(addr).unwrap();
    assert_eq!(fresh.ping(9).unwrap(), 9);
}
