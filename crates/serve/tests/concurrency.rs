//! Concurrency determinism: N clients hammering the daemon in
//! parallel must each receive byte-identical replies to the same
//! queries issued serially. The dispatcher may batch any interleaving
//! of in-flight requests into one blocked scan, so this pins the
//! contract that batching never changes an answer. The CI tier-1
//! matrix re-runs this under `KHAOS_THREADS=1` and both SIMD legs,
//! which pins the serial-equals-parallel half at every worker count.

use khaos_diff::engine::FunctionEmbeddings;
use khaos_index::{IndexParams, IvfIndex, RowMeta};
use khaos_serve::protocol::{Message, QueryReq};
use khaos_serve::{Client, ServerHandle};
use std::sync::Arc;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 25;

fn lane(seed: u64, d: usize) -> f64 {
    let h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left((d % 63) as u32)
        .wrapping_add(d as u64);
    (h as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn corpus_index() -> IvfIndex {
    let rows: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            (0..24)
                .map(|d| lane(i as u64, d) + ((i % 8) as f64) * 0.5)
                .collect()
        })
        .collect();
    let meta = (0..400)
        .map(|i| RowMeta {
            binary: (i / 50) as u64,
            function: (i % 50) as u32,
            name: format!("f{i}"),
        })
        .collect();
    IvfIndex::build(
        "Conc",
        1,
        Arc::new(FunctionEmbeddings::from_rows(rows)),
        meta,
        &IndexParams::default(),
    )
}

/// The query set for one client, derived only from the client id —
/// both phases issue exactly these requests.
fn client_queries(idx: &IvfIndex, client: usize) -> Vec<QueryReq> {
    (0..QUERIES_PER_CLIENT)
        .map(|qi| {
            let row = (client * 37 + qi * 13) % idx.len();
            let mut q = idx.exact_rows().row(row).to_vec();
            // Perturb half of them so not every query is a self-hit.
            if qi % 2 == 1 {
                for (d, v) in q.iter_mut().enumerate() {
                    *v += lane((client * 1000 + qi) as u64, d) * 0.05;
                }
            }
            QueryReq {
                tool: "Conc".into(),
                config: 1,
                k: 1 + (qi % 16) as u32,
                nprobe: 0,
                q,
            }
        })
        .collect()
}

/// Encoded reply frames for one client's query set, issued on one
/// connection in order.
fn run_client(addr: &str, queries: &[QueryReq]) -> Vec<Vec<u8>> {
    let mut c = Client::connect(addr).unwrap();
    queries
        .iter()
        .map(|q| {
            let reply = c.roundtrip(&Message::Query(q.clone())).unwrap();
            assert!(
                matches!(reply, Message::Hits(_)),
                "query got non-hits reply {reply:?}"
            );
            // Compare replies as encoded frames: any drift in indices,
            // score bits, or metadata changes the bytes.
            reply.encode()
        })
        .collect()
}

#[test]
fn concurrent_replies_are_byte_identical_to_serial() {
    let idx = corpus_index();
    let server = ServerHandle::serve(vec![idx], "127.0.0.1:0").unwrap();
    let addr = server.addr().to_string();
    let plans: Vec<Vec<QueryReq>> = {
        let probe = corpus_index();
        (0..CLIENTS).map(|c| client_queries(&probe, c)).collect()
    };

    // Serial baseline: one client at a time, in order.
    let serial: Vec<Vec<Vec<u8>>> = plans.iter().map(|qs| run_client(&addr, qs)).collect();

    // Concurrent run: all clients at once, so the dispatcher sees
    // arbitrarily interleaved bursts and batches them.
    let handles: Vec<_> = plans
        .iter()
        .cloned()
        .map(|qs| {
            let addr = addr.clone();
            std::thread::spawn(move || run_client(&addr, &qs))
        })
        .collect();
    let concurrent: Vec<Vec<Vec<u8>>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();

    for (c, (s, p)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(s.len(), p.len(), "client {c} reply count");
        for (qi, (a, b)) in s.iter().zip(p).enumerate() {
            assert_eq!(a, b, "client {c} query {qi}: reply bytes differ");
        }
    }

    // And a repeat concurrent run agrees with the first — no
    // run-to-run nondeterminism either.
    let handles: Vec<_> = plans
        .iter()
        .cloned()
        .map(|qs| {
            let addr = addr.clone();
            std::thread::spawn(move || run_client(&addr, &qs))
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        let again = h.join().expect("client thread panicked");
        assert_eq!(again, concurrent[c], "client {c}: second run drifted");
    }

    // The daemon counted every query exactly once.
    let mut probe = Client::connect(&addr).unwrap();
    let stats = probe.stats().unwrap();
    assert_eq!(
        stats.queries as usize,
        3 * CLIENTS * QUERIES_PER_CLIENT,
        "query counter"
    );
}
