//! Instruction substitution (O-LLVM's `Sub`).
//!
//! Each integer arithmetic/logic instruction is, with probability
//! `ratio`, replaced by an equivalent multi-instruction sequence chosen
//! at random. All identities hold for two's-complement wrapping
//! arithmetic at any width.

use crate::OllvmContext;
use khaos_ir::{BinOp, Function, Inst, LocalId, Module, Operand, Type, UnOp};
use rand::Rng;

/// Applies substitution to every function of `m`.
pub fn substitution(m: &mut Module, ctx: &mut OllvmContext, ratio: f64) {
    for f in &mut m.functions {
        run_function(f, ctx, ratio);
    }
}

fn run_function(f: &mut Function, ctx: &mut OllvmContext, ratio: f64) {
    for bi in 0..f.blocks.len() {
        let old = std::mem::take(&mut f.blocks[bi].insts);
        let mut out = Vec::with_capacity(old.len());
        for inst in old {
            match &inst {
                Inst::Bin { op, ty, dst, lhs, rhs }
                    if ty.is_int() && *ty != Type::I1 && ctx.rng.gen_bool(ratio) =>
                {
                    if !substitute_one(&mut f.locals, &mut out, *op, *ty, *dst, *lhs, *rhs, ctx) {
                        out.push(inst);
                    }
                }
                _ => out.push(inst),
            }
        }
        f.blocks[bi].insts = out;
    }
}

fn new_local(locals: &mut Vec<Type>, ty: Type) -> LocalId {
    let id = LocalId::new(locals.len());
    locals.push(ty);
    id
}

/// Emits a substituted sequence; returns false when no strategy applies
/// (the caller keeps the original instruction).
#[allow(clippy::too_many_arguments)]
fn substitute_one(
    locals: &mut Vec<Type>,
    out: &mut Vec<Inst>,
    op: BinOp,
    ty: Type,
    dst: LocalId,
    lhs: Operand,
    rhs: Operand,
    ctx: &mut OllvmContext,
) -> bool {
    let l = |locals: &mut Vec<Type>| new_local(locals, ty);
    match op {
        BinOp::Add => match ctx.rng.gen_range(0..3u8) {
            0 => {
                // a + b == a - (0 - b)
                let t = l(locals);
                out.push(Inst::Bin { op: BinOp::Sub, ty, dst: t, lhs: Operand::zero(ty), rhs });
                out.push(Inst::Bin { op: BinOp::Sub, ty, dst, lhs, rhs: Operand::local(t) });
                true
            }
            1 => {
                // a + b == (a ^ b) + 2*(a & b)
                let x = l(locals);
                let a = l(locals);
                let a2 = l(locals);
                out.push(Inst::Bin { op: BinOp::Xor, ty, dst: x, lhs, rhs });
                out.push(Inst::Bin { op: BinOp::And, ty, dst: a, lhs, rhs });
                out.push(Inst::Bin {
                    op: BinOp::Shl,
                    ty,
                    dst: a2,
                    lhs: Operand::local(a),
                    rhs: Operand::Const(khaos_ir::Const::int(ty, 1)),
                });
                out.push(Inst::Bin {
                    op: BinOp::Add,
                    ty,
                    dst,
                    lhs: Operand::local(x),
                    rhs: Operand::local(a2),
                });
                true
            }
            _ => {
                // a + b == -(-a - b)
                let na = l(locals);
                let s = l(locals);
                out.push(Inst::Un { op: UnOp::Neg, ty, dst: na, src: lhs });
                out.push(Inst::Bin { op: BinOp::Sub, ty, dst: s, lhs: Operand::local(na), rhs });
                out.push(Inst::Un { op: UnOp::Neg, ty, dst, src: Operand::local(s) });
                true
            }
        },
        BinOp::Sub => {
            // a - b == a + (0 - b)
            let t = l(locals);
            out.push(Inst::Bin { op: BinOp::Sub, ty, dst: t, lhs: Operand::zero(ty), rhs });
            out.push(Inst::Bin { op: BinOp::Add, ty, dst, lhs, rhs: Operand::local(t) });
            true
        }
        BinOp::Xor => {
            // a ^ b == (a | b) & ~(a & b)
            let o = l(locals);
            let a = l(locals);
            let na = l(locals);
            out.push(Inst::Bin { op: BinOp::Or, ty, dst: o, lhs, rhs });
            out.push(Inst::Bin { op: BinOp::And, ty, dst: a, lhs, rhs });
            out.push(Inst::Un { op: UnOp::Not, ty, dst: na, src: Operand::local(a) });
            out.push(Inst::Bin {
                op: BinOp::And,
                ty,
                dst,
                lhs: Operand::local(o),
                rhs: Operand::local(na),
            });
            true
        }
        BinOp::And => {
            // a & b == (a | b) ^ (a ^ b)
            let o = l(locals);
            let x = l(locals);
            out.push(Inst::Bin { op: BinOp::Or, ty, dst: o, lhs, rhs });
            out.push(Inst::Bin { op: BinOp::Xor, ty, dst: x, lhs, rhs });
            out.push(Inst::Bin {
                op: BinOp::Xor,
                ty,
                dst,
                lhs: Operand::local(o),
                rhs: Operand::local(x),
            });
            true
        }
        BinOp::Or => {
            // a | b == (a & b) ^ (a ^ b)
            let a = l(locals);
            let x = l(locals);
            out.push(Inst::Bin { op: BinOp::And, ty, dst: a, lhs, rhs });
            out.push(Inst::Bin { op: BinOp::Xor, ty, dst: x, lhs, rhs });
            out.push(Inst::Bin {
                op: BinOp::Xor,
                ty,
                dst,
                lhs: Operand::local(a),
                rhs: Operand::local(x),
            });
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_vm::run_function as vm_run;

    fn arith_module() -> Module {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let mut acc = fb.iconst(Type::I64, 1);
        for (op, k) in [
            (BinOp::Add, 12345),
            (BinOp::Sub, 777),
            (BinOp::Xor, 0x5aa5),
            (BinOp::And, 0xff0f),
            (BinOp::Or, 0x1010),
            (BinOp::Add, -99),
        ] {
            acc = fb.bin(op, Type::I64, Operand::local(acc), Operand::const_int(Type::I64, k));
        }
        fb.ret(Some(Operand::local(acc)));
        m.push_function(fb.finish());
        m
    }

    #[test]
    fn substitution_preserves_semantics() {
        let base = arith_module();
        let expected = vm_run(&base, "main", &[]).unwrap().exit_code;
        for seed in 0..10 {
            let mut m = base.clone();
            let mut ctx = OllvmContext::new(seed);
            substitution(&mut m, &mut ctx, 1.0);
            khaos_ir::verify::assert_valid(&m);
            assert_eq!(vm_run(&m, "main", &[]).unwrap().exit_code, expected, "seed {seed}");
        }
    }

    #[test]
    fn full_ratio_grows_code() {
        let base = arith_module();
        let mut m = base.clone();
        let mut ctx = OllvmContext::new(1);
        substitution(&mut m, &mut ctx, 1.0);
        assert!(m.inst_count() > base.inst_count(), "substitution expands instructions");
    }

    #[test]
    fn zero_ratio_is_identity() {
        let base = arith_module();
        let mut m = base.clone();
        let mut ctx = OllvmContext::new(1);
        substitution(&mut m, &mut ctx, 0.0);
        assert_eq!(m, base);
    }

    #[test]
    fn float_and_bool_ops_untouched() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::F64);
        let a = fb.bin(
            BinOp::FAdd,
            Type::F64,
            Operand::const_float(Type::F64, 1.5),
            Operand::const_float(Type::F64, 2.5),
        );
        fb.ret(Some(Operand::local(a)));
        m.push_function(fb.finish());
        let before = m.clone();
        let mut ctx = OllvmContext::new(9);
        substitution(&mut m, &mut ctx, 1.0);
        assert_eq!(m, before, "float ops are not substituted");
    }
}
