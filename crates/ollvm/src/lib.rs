//! # khaos-ollvm — O-LLVM-style intra-procedural obfuscation baselines
//!
//! The three comparison transforms the paper evaluates Khaos against
//! (§2.2, §4):
//!
//! * [`substitution`] (**Sub**) — instruction substitution: arithmetic and
//!   logic operations replaced with equivalent multi-instruction
//!   sequences.
//! * [`bogus_control_flow`] (**Bog**) — opaque-predicate-guarded junk
//!   clones of real blocks spliced into the CFG.
//! * [`flattening`] (**Fla**) — control-flow flattening through an
//!   encrypted-state dispatch switch. Like O-LLVM, it skips
//!   exception-relevant functions (a limitation the paper calls out
//!   in §5).
//!
//! All three are *intra*-procedural: they never change a function's
//! boundary, call graph position or parameter list — which is exactly why
//! modern binary diffing sees through them and why Khaos doesn't work
//! this way.
//!
//! The primary interface is the `khaos-pass` pipeline API: the spec
//! atoms `sub`, `bog` and `fla` (each with a `ratio` argument, e.g.
//! `fla(ratio=0.1)`) wrap these transforms behind the one `Pass` trait
//! and draw from the pipeline's single seeded RNG stream.
//! [`OllvmMode::apply`] remains as a compatibility wrapper and is
//! seed-equivalent to the one-atom pipeline.

mod bogus;
mod flatten;
mod substitute;

pub use bogus::bogus_control_flow;
pub use flatten::{flattening, looks_flattened};
pub use substitute::substitution;

use khaos_ir::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeded context for the baseline transforms.
#[derive(Debug)]
pub struct OllvmContext {
    pub(crate) rng: StdRng,
}

impl OllvmContext {
    /// Creates a deterministic context.
    pub fn new(seed: u64) -> Self {
        Self::from_rng(StdRng::seed_from_u64(seed))
    }

    /// A context over an externally-owned RNG stream — the hook the
    /// `khaos-pass` pipeline adapters use to lend their single seeded
    /// stream to each baseline transform in turn.
    pub fn from_rng(rng: StdRng) -> Self {
        OllvmContext { rng }
    }

    /// Hands the RNG stream back (counterpart of
    /// [`OllvmContext::from_rng`]).
    pub fn into_rng(self) -> StdRng {
        self.rng
    }
}

/// The baseline configurations used across the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OllvmMode {
    /// Instruction substitution at the given ratio (0.0–1.0).
    Sub(f64),
    /// Bogus control flow at the given ratio.
    Bog(f64),
    /// Control-flow flattening at the given ratio of functions.
    Fla(f64),
}

impl OllvmMode {
    /// The paper's standard configurations: Sub/Bog at 100%, Fla at 10%
    /// (Fla-100 is used only in the vulnerable-code experiment).
    pub const STANDARD: [OllvmMode; 3] =
        [OllvmMode::Sub(1.0), OllvmMode::Bog(1.0), OllvmMode::Fla(0.1)];

    /// Display name matching the paper's legends.
    pub fn name(self) -> String {
        match self {
            OllvmMode::Sub(r) if r >= 1.0 => "Sub".into(),
            OllvmMode::Bog(r) if r >= 1.0 => "Bog".into(),
            OllvmMode::Fla(r) if r >= 1.0 => "Fla".into(),
            OllvmMode::Sub(r) => format!("Sub-{}", (r * 100.0) as u32),
            OllvmMode::Bog(r) => format!("Bog-{}", (r * 100.0) as u32),
            OllvmMode::Fla(r) => format!("Fla-{}", (r * 100.0) as u32),
        }
    }

    /// Applies the transform to `m` with the given seed.
    pub fn apply(self, m: &mut Module, seed: u64) {
        let mut ctx = OllvmContext::new(seed);
        match self {
            OllvmMode::Sub(r) => substitution(m, &mut ctx, r),
            OllvmMode::Bog(r) => bogus_control_flow(m, &mut ctx, r),
            OllvmMode::Fla(r) => flattening(m, &mut ctx, r),
        }
        debug_assert!(
            khaos_ir::verify::verify_module(m).is_ok(),
            "{} produced invalid IR: {:?}",
            self.name(),
            khaos_ir::verify::verify_module(m).err()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(OllvmMode::Sub(1.0).name(), "Sub");
        assert_eq!(OllvmMode::Fla(0.1).name(), "Fla-10");
        assert_eq!(OllvmMode::Fla(1.0).name(), "Fla");
    }
}
