//! Bogus control flow (O-LLVM's `Bog`).
//!
//! Each selected block is guarded by an opaque predicate
//! `x * (x + 1) % 2 == 0` (always true) whose `x` is loaded from a global,
//! so constant propagation cannot remove it. The false arm jumps to a
//! mutated clone of the block — dead code that changes every CFG feature
//! a differ extracts.

use crate::OllvmContext;
use khaos_ir::{
    BinOp, Block, BlockId, CmpPred, Const, GInit, Global, Inst, Module, Operand, Term, Type,
};
use rand::Rng;

/// Applies bogus control flow to every function of `m`.
pub fn bogus_control_flow(m: &mut Module, ctx: &mut OllvmContext, ratio: f64) {
    // One opaque-state global for the whole module.
    let opaque = m.push_global(Global {
        name: format!("__opq_state_{}", m.globals.len()),
        init: vec![GInit::Int { value: ctx.rng.gen_range(1..1000), ty: Type::I64 }],
        align: 8,
        exported: false,
    });

    for fi in 0..m.functions.len() {
        let f = &mut m.functions[fi];
        let original_blocks = f.blocks.len();
        // The opaque value is computed once per function (O-LLVM reuses
        // its opaque predicates); each guarded block then costs a single
        // conditional branch at run time.
        let mut opaque_cond: Option<khaos_ir::LocalId> = None;
        for bi in 0..original_blocks {
            let bid = BlockId::new(bi);
            if f.block(bid).is_pad() || !ctx.rng.gen_bool(ratio) {
                continue;
            }
            // Move the real body out.
            let body = std::mem::replace(
                f.block_mut(bid),
                Block::with_term(Term::Unreachable),
            );
            let pad = body.pad;
            let real = f.push_block(Block { insts: body.insts.clone(), term: body.term.clone(), pad: None });

            // Junk clone: perturb constants and swap add/sub, then fall
            // into the real block (never executed).
            let mut junk_insts = body.insts.clone();
            for inst in &mut junk_insts {
                if let Inst::Bin { op, .. } = inst {
                    *op = match *op {
                        BinOp::Add => BinOp::Sub,
                        BinOp::Sub => BinOp::Add,
                        other => other,
                    };
                }
                inst.for_each_use_mut(|o| {
                    if let Operand::Const(Const::Int { value, ty }) = o {
                        if *ty != Type::I1 {
                            *o = Operand::Const(Const::int(*ty, value.wrapping_add(1)));
                        }
                    }
                });
            }
            // Anchor the junk with a (never executed) store to the opaque
            // global: memory side effects keep dead-code elimination from
            // dissolving the clone, mirroring how O-LLVM's altered blocks
            // survive in real binaries.
            let jga = f.new_local(Type::Ptr);
            junk_insts.push(Inst::GlobalAddr { dst: jga, global: opaque });
            junk_insts.push(Inst::Store {
                ty: Type::I64,
                addr: Operand::local(jga),
                value: Operand::const_int(Type::I64, ctx.rng.gen_range(1..1 << 20)),
            });
            let junk = f.push_block(Block { insts: junk_insts, term: Term::Jump(real), pad: None });

            // Guard: x = load opaque; x*(x+1) % 2 == 0  (always true).
            // Computed once per function, in the entry block.
            let cond = match opaque_cond {
                Some(c) => c,
                None => {
                    let x = f.new_local(Type::I64);
                    let ga = f.new_local(Type::Ptr);
                    let x1 = f.new_local(Type::I64);
                    let prod = f.new_local(Type::I64);
                    let rem = f.new_local(Type::I64);
                    let cond = f.new_local(Type::I1);
                    let pred_insts = vec![
                        Inst::GlobalAddr { dst: ga, global: opaque },
                        Inst::Load { ty: Type::I64, dst: x, addr: Operand::local(ga) },
                        Inst::Bin {
                            op: BinOp::Add,
                            ty: Type::I64,
                            dst: x1,
                            lhs: Operand::local(x),
                            rhs: Operand::const_int(Type::I64, 1),
                        },
                        Inst::Bin {
                            op: BinOp::Mul,
                            ty: Type::I64,
                            dst: prod,
                            lhs: Operand::local(x),
                            rhs: Operand::local(x1),
                        },
                        Inst::Bin {
                            op: BinOp::SRem,
                            ty: Type::I64,
                            dst: rem,
                            lhs: Operand::local(prod),
                            rhs: Operand::const_int(Type::I64, 2),
                        },
                        Inst::Cmp {
                            pred: CmpPred::Eq,
                            ty: Type::I64,
                            dst: cond,
                            lhs: Operand::local(rem),
                            rhs: Operand::const_int(Type::I64, 0),
                        },
                    ];
                    // Entry may itself be the block being guarded (bi==0):
                    // when so the predicate lands in the guard block below;
                    // otherwise prepend to the entry block.
                    if bi == 0 {
                        let guard = f.block_mut(bid);
                        guard.insts = pred_insts.clone();
                    } else {
                        let entry = f.block_mut(BlockId::new(0));
                        let old = std::mem::take(&mut entry.insts);
                        entry.insts = pred_insts.iter().cloned().chain(old).collect();
                    }
                    opaque_cond = Some(cond);
                    cond
                }
            };
            let guard = f.block_mut(bid);
            guard.pad = pad;
            if bi != 0 {
                // Non-entry guards are empty: body moved to `real`, the
                // opaque condition already lives in the entry block.
                guard.insts = Vec::new();
            }
            guard.term = Term::Branch { cond: Operand::local(cond), then_bb: real, else_bb: junk };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_vm::run_function as vm_run;

    fn sample() -> Module {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let t = fb.new_block();
        let e = fb.new_block();
        let c = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 0));
        fb.branch(Operand::local(c), t, e);
        fb.switch_to(t);
        let a = fb.bin(BinOp::Mul, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 3));
        fb.ret(Some(Operand::local(a)));
        fb.switch_to(e);
        fb.ret(Some(Operand::const_int(Type::I64, -1)));
        m.push_function(fb.finish());
        m
    }

    #[test]
    fn behaviour_preserved_at_full_ratio() {
        let base = sample();
        for seed in 0..5 {
            let mut m = base.clone();
            let mut ctx = OllvmContext::new(seed);
            bogus_control_flow(&mut m, &mut ctx, 1.0);
            khaos_ir::verify::assert_valid(&m);
            for arg in [-2i64, 0, 7] {
                let want = vm_run(&base, "main", &[khaos_vm::Value::Int(arg)]).unwrap().exit_code;
                let got = vm_run(&m, "main", &[khaos_vm::Value::Int(arg)]).unwrap().exit_code;
                assert_eq!(want, got, "seed {seed} arg {arg}");
            }
        }
    }

    #[test]
    fn blocks_multiply() {
        let base = sample();
        let mut m = base.clone();
        let mut ctx = OllvmContext::new(3);
        bogus_control_flow(&mut m, &mut ctx, 1.0);
        let fb = &base.functions[0];
        let fm = &m.functions[0];
        assert!(
            fm.blocks.len() >= fb.blocks.len() * 2,
            "each guarded block adds a real and a junk clone"
        );
    }

    #[test]
    fn opaque_predicate_survives_o2() {
        // The junk must not be removable by our optimizer at O2 — the
        // paper chose O2 as baseline because O3 broke Sub.
        let mut m = sample();
        let mut ctx = OllvmContext::new(4);
        bogus_control_flow(&mut m, &mut ctx, 1.0);
        let guarded = 3; // sample() has three blocks, all guarded
        khaos_opt::optimize(&mut m, &khaos_opt::OptOptions::baseline());
        let after_blocks: usize = m.functions[0].blocks.len();
        assert!(
            after_blocks >= 3 * guarded,
            "guard+real+junk triples survive O2 (got {after_blocks})"
        );
        // And the program still works.
        assert_eq!(
            vm_run(&m, "main", &[khaos_vm::Value::Int(4)]).unwrap().exit_code,
            12
        );
    }
}
