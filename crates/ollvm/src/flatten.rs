//! Control-flow flattening (O-LLVM's `Fla`).
//!
//! Selected functions are rewritten into dispatch form: every block ends
//! by storing an *encoded* successor id into a state register and jumping
//! back to a central `switch`. The encoding (multiplication by a random
//! odd key mod 2^31) hides the case relationship, as the paper describes.
//!
//! Like O-LLVM, functions containing exception control flow (invokes or
//! landing pads) are skipped — the limitation the paper notes in §5.

use crate::OllvmContext;
use khaos_ir::{Block, BlockId, Function, Inst, Module, Operand, Term, Type};
use rand::Rng;

/// Applies flattening to each function of `m` with probability `ratio`.
pub fn flattening(m: &mut Module, ctx: &mut OllvmContext, ratio: f64) {
    for f in &mut m.functions {
        let has_eh = f
            .blocks
            .iter()
            .any(|b| b.is_pad() || matches!(b.term, Term::Invoke { .. }));
        if has_eh || f.blocks.len() < 3 {
            continue;
        }
        if !ctx.rng.gen_bool(ratio) {
            continue;
        }
        flatten_function(f, ctx);
    }
}

fn flatten_function(f: &mut Function, ctx: &mut OllvmContext) {
    let n = f.blocks.len();
    let key: i64 = (ctx.rng.gen_range(0..1i64 << 30) << 1) | 1; // odd
    let enc = |i: usize| -> i64 { ((i as i64 + 1).wrapping_mul(key)) & 0x7fff_ffff };

    let state = f.new_local(Type::I32);

    // Ids after the rewrite:
    //   0 .. n-1   original blocks (code kept, terminators rewritten)
    //   n          dispatch
    //   n+1        unreachable default
    //   n+2        new entry (old entry body moved to slot `n+2`? no —
    // The entry block must remain BlockId(0), so we move the original
    // entry body into a fresh block at the end and turn block 0 into the
    // state initialisation.
    let dispatch = BlockId::new(n);
    let default = BlockId::new(n + 1);
    let moved_entry = BlockId::new(n + 2);

    // Rewrite every original terminator into state updates + jump to the
    // dispatch block.
    for bi in 0..n {
        let term = f.blocks[bi].term.clone();
        let new_term = match term {
            Term::Jump(t) => {
                f.blocks[bi].insts.push(Inst::Copy {
                    ty: Type::I32,
                    dst: state,
                    src: Operand::const_int(Type::I32, enc(t.index())),
                });
                Term::Jump(dispatch)
            }
            Term::Branch { cond, then_bb, else_bb } => {
                f.blocks[bi].insts.push(Inst::Select {
                    ty: Type::I32,
                    dst: state,
                    cond,
                    on_true: Operand::const_int(Type::I32, enc(then_bb.index())),
                    on_false: Operand::const_int(Type::I32, enc(else_bb.index())),
                });
                Term::Jump(dispatch)
            }
            Term::Switch { ty, value, cases, default: d } => {
                // Encode through a small chain of selects.
                f.blocks[bi].insts.push(Inst::Copy {
                    ty: Type::I32,
                    dst: state,
                    src: Operand::const_int(Type::I32, enc(d.index())),
                });
                for (cv, target) in cases {
                    let c = f.new_local(Type::I1);
                    f.blocks[bi].insts.push(Inst::Cmp {
                        pred: khaos_ir::CmpPred::Eq,
                        ty,
                        dst: c,
                        lhs: value,
                        rhs: Operand::Const(khaos_ir::Const::int(ty, cv)),
                    });
                    f.blocks[bi].insts.push(Inst::Select {
                        ty: Type::I32,
                        dst: state,
                        cond: Operand::local(c),
                        on_true: Operand::const_int(Type::I32, enc(target.index())),
                        on_false: Operand::local(state),
                    });
                }
                Term::Jump(dispatch)
            }
            t @ (Term::Ret(_) | Term::Unreachable) => t,
            Term::Invoke { .. } => unreachable!("EH functions are skipped"),
        };
        f.blocks[bi].term = new_term;
    }

    // Dispatch switch over encoded states.
    let cases: Vec<(i64, BlockId)> = (0..n)
        .map(|i| (enc(i), if i == 0 { moved_entry } else { BlockId::new(i) }))
        .collect();
    f.blocks.push(Block {
        insts: Vec::new(),
        term: Term::Switch { ty: Type::I32, value: Operand::local(state), cases, default },
        pad: None,
    });
    debug_assert_eq!(f.blocks.len() - 1, dispatch.index());
    f.blocks.push(Block::with_term(Term::Unreachable));
    debug_assert_eq!(f.blocks.len() - 1, default.index());

    // Move the original entry body to the end; block 0 becomes the
    // initialiser that enters the dispatch loop.
    let entry_body = std::mem::replace(
        &mut f.blocks[0],
        Block {
            insts: vec![Inst::Copy {
                ty: Type::I32,
                dst: state,
                src: Operand::const_int(Type::I32, enc(0)),
            }],
            term: Term::Jump(dispatch),
            pad: None,
        },
    );
    f.blocks.push(entry_body);
    debug_assert_eq!(f.blocks.len() - 1, moved_entry.index());
}

/// True if `f` is in flattened (dispatch) form — used by tests and stats.
pub fn looks_flattened(f: &Function) -> bool {
    f.blocks.iter().any(|b| {
        matches!(&b.term, Term::Switch { cases, .. } if cases.len() >= 3)
            && b.insts.is_empty()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{BinOp, CmpPred};
    use khaos_vm::run_function as vm_run;

    fn loopy() -> Module {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let i = fb.new_local(Type::I64);
        let acc = fb.new_local(Type::I64);
        let h = fb.new_block();
        let body = fb.new_block();
        let odd = fb.new_block();
        let even = fb.new_block();
        let next = fb.new_block();
        let exit = fb.new_block();
        fb.copy_to(i, Operand::const_int(Type::I64, 0));
        fb.copy_to(acc, Operand::const_int(Type::I64, 0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp(CmpPred::Slt, Type::I64, Operand::local(i), Operand::local(p));
        fb.branch(Operand::local(c), body, exit);
        fb.switch_to(body);
        let bit = fb.bin(BinOp::And, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
        let isodd = fb.cmp(CmpPred::Eq, Type::I64, Operand::local(bit), Operand::const_int(Type::I64, 1));
        fb.branch(Operand::local(isodd), odd, even);
        fb.switch_to(odd);
        let a1 = fb.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(i));
        fb.copy_to(acc, Operand::local(a1));
        fb.jump(next);
        fb.switch_to(even);
        let a2 = fb.bin(BinOp::Sub, Type::I64, Operand::local(acc), Operand::local(i));
        fb.copy_to(acc, Operand::local(a2));
        fb.jump(next);
        fb.switch_to(next);
        let ni = fb.bin(BinOp::Add, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
        fb.copy_to(i, Operand::local(ni));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(Operand::local(acc)));
        m.push_function(fb.finish());
        m
    }

    #[test]
    fn flattening_preserves_semantics() {
        let base = loopy();
        for seed in 0..5 {
            let mut m = base.clone();
            let mut ctx = OllvmContext::new(seed);
            flattening(&mut m, &mut ctx, 1.0);
            khaos_ir::verify::assert_valid(&m);
            assert!(looks_flattened(&m.functions[0]), "seed {seed}");
            for arg in [0i64, 1, 9, 20] {
                let want = vm_run(&base, "main", &[khaos_vm::Value::Int(arg)]).unwrap();
                let got = vm_run(&m, "main", &[khaos_vm::Value::Int(arg)]).unwrap();
                assert_eq!(want.exit_code, got.exit_code, "seed {seed} arg {arg}");
            }
        }
    }

    #[test]
    fn switch_terminators_survive_flattening() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let a = fb.new_block();
        let b = fb.new_block();
        let d = fb.new_block();
        fb.switch(Type::I64, Operand::local(p), vec![(0, a), (5, b)], d);
        fb.switch_to(a);
        fb.ret(Some(Operand::const_int(Type::I64, 10)));
        fb.switch_to(b);
        fb.ret(Some(Operand::const_int(Type::I64, 20)));
        fb.switch_to(d);
        fb.ret(Some(Operand::const_int(Type::I64, 30)));
        m.push_function(fb.finish());

        let base = m.clone();
        let mut ctx = OllvmContext::new(7);
        flattening(&mut m, &mut ctx, 1.0);
        khaos_ir::verify::assert_valid(&m);
        for arg in [0i64, 5, 99] {
            assert_eq!(
                vm_run(&base, "main", &[khaos_vm::Value::Int(arg)]).unwrap().exit_code,
                vm_run(&m, "main", &[khaos_vm::Value::Int(arg)]).unwrap().exit_code,
            );
        }
    }

    #[test]
    fn eh_functions_skipped() {
        let mut m = Module::new("t");
        let te = m.declare_external(khaos_ir::ExtFunc {
            name: "throw_exc".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
            variadic: false,
        });
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let normal = fb.new_block();
        let pad = fb.new_pad_block(None);
        let extra = fb.new_block();
        fb.invoke(
            khaos_ir::Callee::Ext(te),
            Type::Void,
            vec![Operand::const_int(Type::I64, 1)],
            normal,
            pad,
        );
        fb.switch_to(normal);
        fb.jump(extra);
        fb.switch_to(extra);
        fb.ret(Some(Operand::const_int(Type::I64, 0)));
        fb.switch_to(pad);
        fb.ret(Some(Operand::const_int(Type::I64, 1)));
        m.push_function(fb.finish());
        let before = m.clone();
        let mut ctx = OllvmContext::new(8);
        flattening(&mut m, &mut ctx, 1.0);
        assert_eq!(m, before, "EH function must be skipped (O-LLVM limitation)");
    }

    #[test]
    fn ratio_zero_is_identity() {
        let base = loopy();
        let mut m = base.clone();
        let mut ctx = OllvmContext::new(9);
        flattening(&mut m, &mut ctx, 0.0);
        assert_eq!(m, base);
    }
}
