//! Liveness-based dead code elimination for pure instructions.

use khaos_ir::analysis::liveness::LocalSet;
use khaos_ir::{Cfg, Function, Liveness};

/// Removes pure instructions whose results are dead. Returns the number of
/// removed instructions.
pub fn run_function(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let cfg = Cfg::compute(f);
        let lv = Liveness::compute(f, &cfg);
        let mut round = 0;
        for (b, block) in f.blocks.iter_mut().enumerate() {
            let bid = khaos_ir::BlockId::new(b);
            // Walk backwards keeping a running live set.
            let mut live: LocalSet = lv.live_out(bid).clone();
            // Collect uses of the terminator first.
            block.term.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    live.insert(l);
                }
            });
            let mut keep = vec![true; block.insts.len()];
            for (i, inst) in block.insts.iter().enumerate().rev() {
                let dead = match inst.def() {
                    Some(d) => !live.contains(d),
                    None => false,
                };
                if dead && inst.is_pure() {
                    keep[i] = false;
                    round += 1;
                    continue;
                }
                if let Some(d) = inst.def() {
                    live.remove(d);
                }
                inst.for_each_use(|o| {
                    if let Some(l) = o.as_local() {
                        live.insert(l);
                    }
                });
            }
            if round > 0 {
                let mut it = keep.iter();
                block.insts.retain(|_| *it.next().expect("keep mask aligned"));
            }
        }
        if round == 0 {
            return removed;
        }
        removed += round;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{BinOp, Inst, Module, Operand, Type};

    #[test]
    fn removes_unused_chain() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let a = fb.bin(BinOp::Add, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 1));
        let _b = fb.bin(BinOp::Mul, Type::I64, Operand::local(a), Operand::const_int(Type::I64, 2));
        fb.ret(Some(Operand::local(p)));
        m.push_function(fb.finish());
        let removed = run_function(&mut m.functions[0]);
        assert_eq!(removed, 2, "whole dead chain removed");
        assert!(m.functions[0].blocks[0].insts.is_empty());
    }

    #[test]
    fn keeps_impure_instructions() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.alloca(8); // impure (frame effect), result unused below
        fb.store(Type::I64, Operand::const_int(Type::I64, 1), Operand::local(p));
        fb.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(fb.finish());
        let removed = run_function(&mut m.functions[0]);
        assert_eq!(removed, 0);
        assert_eq!(m.functions[0].blocks[0].insts.len(), 2);
    }

    #[test]
    fn keeps_dead_looking_but_live_across_blocks() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let x = fb.new_local(Type::I64);
        let nxt = fb.new_block();
        fb.copy_to(x, Operand::local(p)); // only used in the next block
        fb.jump(nxt);
        fb.switch_to(nxt);
        fb.ret(Some(Operand::local(x)));
        m.push_function(fb.finish());
        assert_eq!(run_function(&mut m.functions[0]), 0);
    }

    #[test]
    fn removes_dead_store_to_register_but_not_memory() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let x = fb.new_local(Type::I64);
        fb.copy_to(x, Operand::const_int(Type::I64, 1)); // overwritten below
        fb.copy_to(x, Operand::const_int(Type::I64, 2));
        fb.ret(Some(Operand::local(x)));
        m.push_function(fb.finish());
        let removed = run_function(&mut m.functions[0]);
        assert_eq!(removed, 1, "first copy is a dead register write");
        assert!(matches!(
            &m.functions[0].blocks[0].insts[0],
            Inst::Copy { src: Operand::Const(c), .. } if c.normalized() == Some(2)
        ));
    }
}
