//! Block-local constant/copy propagation, constant folding and branch
//! simplification, iterated to a fixed point.
//!
//! The analysis is deliberately block-local (facts die at block
//! boundaries): this is what lets O-LLVM-style opaque predicates that load
//! from globals survive — matching the behaviour the paper relies on when
//! it measures `Sub`/`Bog`/`Fla` under `O2`.

use khaos_ir::constant::normalize_int;
use khaos_ir::{BinOp, CastKind, CmpPred, Const, Function, Inst, LocalId, Operand, Term, Type, UnOp};
use std::collections::HashMap;

/// What a local is currently known to hold within the block.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Known {
    Const(Const),
    CopyOf(LocalId),
}

/// Runs propagation/folding on one function. Returns true if changed.
pub fn run_function(f: &mut Function) -> bool {
    let mut changed = false;
    while run_once(f) {
        changed = true;
    }
    changed
}

fn run_once(f: &mut Function) -> bool {
    let mut changed = false;
    for b in 0..f.blocks.len() {
        let mut known: HashMap<LocalId, Known> = HashMap::new();

        // Substitute an operand through the known-values map.
        let subst = |known: &HashMap<LocalId, Known>, o: &mut Operand| -> bool {
            if let Some(l) = o.as_local() {
                match known.get(&l) {
                    Some(Known::Const(c)) => {
                        *o = Operand::Const(*c);
                        return true;
                    }
                    Some(Known::CopyOf(src)) => {
                        *o = Operand::Local(*src);
                        return true;
                    }
                    None => {}
                }
            }
            false
        };
        let kill = |known: &mut HashMap<LocalId, Known>, d: LocalId| {
            known.remove(&d);
            known.retain(|_, v| *v != Known::CopyOf(d));
        };

        let block = &mut f.blocks[b];
        for inst in &mut block.insts {
            inst.for_each_use_mut(|o| {
                if subst(&known, o) {
                    changed = true;
                }
            });
            if let Some(folded) = fold_inst(inst) {
                *inst = folded;
                changed = true;
            }
            if let Some(d) = inst.def() {
                kill(&mut known, d);
                match inst {
                    Inst::Copy { src: Operand::Const(c), .. } => {
                        known.insert(d, Known::Const(*c));
                    }
                    Inst::Copy { src: Operand::Local(s), .. } if *s != d => {
                        known.insert(d, Known::CopyOf(*s));
                    }
                    _ => {}
                }
            }
        }
        block.term.for_each_use_mut(|o| {
            if subst(&known, o) {
                changed = true;
            }
        });
        if let Some(t) = fold_term(&block.term) {
            block.term = t;
            changed = true;
        }
    }
    changed
}

fn const_int(o: &Operand) -> Option<(i64, Type)> {
    match o.as_const()? {
        Const::Int { value, ty } => Some((normalize_int(value, ty), ty)),
        _ => None,
    }
}

fn const_float(o: &Operand) -> Option<f64> {
    match o.as_const()? {
        Const::Float { value, .. } => Some(value),
        _ => None,
    }
}

/// Folds an instruction with constant operands into a `Copy` of the result.
/// Returns `None` when not foldable (including would-trap divisions).
fn fold_inst(inst: &Inst) -> Option<Inst> {
    match inst {
        Inst::Bin { op, ty, dst, lhs, rhs } => {
            if op.is_float_op() {
                let (x, y) = (const_float(lhs)?, const_float(rhs)?);
                let r = match op {
                    BinOp::FAdd => x + y,
                    BinOp::FSub => x - y,
                    BinOp::FMul => x * y,
                    BinOp::FDiv => x / y,
                    _ => return None,
                };
                let r = if *ty == Type::F32 { r as f32 as f64 } else { r };
                return Some(Inst::Copy { ty: *ty, dst: *dst, src: Operand::const_float(*ty, r) });
            }
            // Algebraic identities with one constant side.
            if let Some((c, _)) = const_int(rhs) {
                match (op, c) {
                    (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::LShr | BinOp::AShr, 0)
                    | (BinOp::Mul | BinOp::SDiv | BinOp::UDiv, 1) => {
                        return Some(Inst::Copy { ty: *ty, dst: *dst, src: *lhs });
                    }
                    (BinOp::Mul | BinOp::And, 0) => {
                        return Some(Inst::Copy { ty: *ty, dst: *dst, src: Operand::zero(*ty) });
                    }
                    _ => {}
                }
            }
            let (x, xt) = const_int(lhs)?;
            let (y, _) = const_int(rhs)?;
            let bits = xt.bits().unwrap_or(64);
            let ux = if bits >= 64 { x as u64 } else { (x as u64) & ((1 << bits) - 1) };
            let uy = if bits >= 64 { y as u64 } else { (y as u64) & ((1 << bits) - 1) };
            let shift = (y & (bits.max(8) as i64 - 1)) as u32;
            let r = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::SDiv if y != 0 => x.wrapping_div(y),
                BinOp::SRem if y != 0 => x.wrapping_rem(y),
                BinOp::UDiv if y != 0 => (ux / uy) as i64,
                BinOp::URem if y != 0 => (ux % uy) as i64,
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(shift),
                BinOp::LShr => (ux >> shift) as i64,
                BinOp::AShr => x >> shift,
                _ => return None, // division by zero: preserve the trap
            };
            Some(Inst::Copy { ty: *ty, dst: *dst, src: Operand::const_int(*ty, normalize_int(r, *ty)) })
        }
        Inst::Un { op, ty, dst, src } => {
            match op {
                UnOp::FNeg => {
                    let x = const_float(src)?;
                    Some(Inst::Copy { ty: *ty, dst: *dst, src: Operand::const_float(*ty, -x) })
                }
                UnOp::Neg => {
                    let (x, _) = const_int(src)?;
                    Some(Inst::Copy {
                        ty: *ty,
                        dst: *dst,
                        src: Operand::const_int(*ty, normalize_int(x.wrapping_neg(), *ty)),
                    })
                }
                UnOp::Not => {
                    let (x, _) = const_int(src)?;
                    Some(Inst::Copy {
                        ty: *ty,
                        dst: *dst,
                        src: Operand::const_int(*ty, normalize_int(!x, *ty)),
                    })
                }
            }
        }
        Inst::Cmp { pred, ty, dst, lhs, rhs } => {
            let r = if pred.is_float_pred() {
                let (x, y) = (const_float(lhs)?, const_float(rhs)?);
                match pred {
                    CmpPred::FEq => x == y,
                    CmpPred::FNe => x != y,
                    CmpPred::FLt => x < y,
                    CmpPred::FLe => x <= y,
                    CmpPred::FGt => x > y,
                    CmpPred::FGe => x >= y,
                    _ => return None,
                }
            } else {
                let (x, xt) = const_int(lhs)?;
                let (y, _) = const_int(rhs)?;
                let bits = xt.bits().unwrap_or(64);
                let ux = if bits >= 64 { x as u64 } else { (x as u64) & ((1 << bits) - 1) };
                let uy = if bits >= 64 { y as u64 } else { (y as u64) & ((1 << bits) - 1) };
                match pred {
                    CmpPred::Eq => x == y,
                    CmpPred::Ne => x != y,
                    CmpPred::Slt => x < y,
                    CmpPred::Sle => x <= y,
                    CmpPred::Sgt => x > y,
                    CmpPred::Sge => x >= y,
                    CmpPred::Ult => ux < uy,
                    CmpPred::Ule => ux <= uy,
                    CmpPred::Ugt => ux > uy,
                    CmpPred::Uge => ux >= uy,
                    _ => return None,
                }
            };
            let _ = ty;
            Some(Inst::Copy { ty: Type::I1, dst: *dst, src: Operand::const_bool(r) })
        }
        Inst::Select { ty, dst, cond, on_true, on_false } => {
            let (c, _) = const_int(cond)?;
            let src = if c & 1 == 1 { *on_true } else { *on_false };
            Some(Inst::Copy { ty: *ty, dst: *dst, src })
        }
        Inst::Cast { kind, dst, src, from, to } => {
            match kind {
                CastKind::Trunc | CastKind::SExt => {
                    let (x, _) = const_int(src)?;
                    Some(Inst::Copy {
                        ty: *to,
                        dst: *dst,
                        src: Operand::const_int(*to, normalize_int(x, *to)),
                    })
                }
                CastKind::ZExt => {
                    let (x, _) = const_int(src)?;
                    let bits = from.bits()?;
                    let ux = if bits >= 64 { x as u64 } else { (x as u64) & ((1 << bits) - 1) };
                    Some(Inst::Copy {
                        ty: *to,
                        dst: *dst,
                        src: Operand::const_int(*to, normalize_int(ux as i64, *to)),
                    })
                }
                CastKind::SiToFp => {
                    let (x, _) = const_int(src)?;
                    let v = if *to == Type::F32 { x as f64 as f32 as f64 } else { x as f64 };
                    Some(Inst::Copy { ty: *to, dst: *dst, src: Operand::const_float(*to, v) })
                }
                CastKind::FpTrunc | CastKind::FpExt => {
                    let x = const_float(src)?;
                    let v = if *to == Type::F32 { x as f32 as f64 } else { x };
                    Some(Inst::Copy { ty: *to, dst: *dst, src: Operand::const_float(*to, v) })
                }
                // Pointer casts and fptosi on constants are rare; skip.
                _ => None,
            }
        }
        _ => None,
    }
}

fn fold_term(term: &Term) -> Option<Term> {
    match term {
        Term::Branch { cond, then_bb, else_bb } => {
            if then_bb == else_bb {
                return Some(Term::Jump(*then_bb));
            }
            let (c, _) = const_int(cond)?;
            Some(Term::Jump(if c & 1 == 1 { *then_bb } else { *else_bb }))
        }
        Term::Switch { value, cases, default, .. } => {
            let (v, _) = const_int(value)?;
            let target = cases.iter().find(|(c, _)| *c == v).map(|(_, t)| *t).unwrap_or(*default);
            Some(Term::Jump(target))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::Module;

    #[test]
    fn folds_constant_chain() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let a = fb.bin(BinOp::Add, Type::I64, Operand::const_int(Type::I64, 2), Operand::const_int(Type::I64, 3));
        let b = fb.bin(BinOp::Mul, Type::I64, Operand::local(a), Operand::const_int(Type::I64, 4));
        fb.ret(Some(Operand::local(b)));
        m.push_function(fb.finish());
        run_function(&mut m.functions[0]);
        // After folding + propagation the ret reads a constant 20.
        match &m.functions[0].blocks[0].term {
            Term::Ret(Some(Operand::Const(c))) => assert_eq!(c.normalized(), Some(20)),
            other => panic!("expected constant return, got {other:?}"),
        }
    }

    #[test]
    fn preserves_division_by_zero() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let a = fb.bin(BinOp::SDiv, Type::I64, Operand::const_int(Type::I64, 1), Operand::const_int(Type::I64, 0));
        fb.ret(Some(Operand::local(a)));
        m.push_function(fb.finish());
        run_function(&mut m.functions[0]);
        assert!(
            matches!(&m.functions[0].blocks[0].insts[0], Inst::Bin { op: BinOp::SDiv, .. }),
            "div-by-zero must not be folded away"
        );
    }

    #[test]
    fn folds_constant_branch() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let t = fb.new_block();
        let e = fb.new_block();
        let c = fb.cmp(CmpPred::Sgt, Type::I64, Operand::const_int(Type::I64, 5), Operand::const_int(Type::I64, 3));
        fb.branch(Operand::local(c), t, e);
        fb.switch_to(t);
        fb.ret(Some(Operand::const_int(Type::I64, 1)));
        fb.switch_to(e);
        fb.ret(Some(Operand::const_int(Type::I64, 2)));
        m.push_function(fb.finish());
        run_function(&mut m.functions[0]);
        assert!(matches!(m.functions[0].blocks[0].term, Term::Jump(b) if b.index() == 1));
    }

    #[test]
    fn copy_propagation_within_block() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let a = fb.copy(Type::I64, Operand::local(p));
        let b = fb.copy(Type::I64, Operand::local(a));
        let r = fb.bin(BinOp::Add, Type::I64, Operand::local(b), Operand::local(b));
        fb.ret(Some(Operand::local(r)));
        m.push_function(fb.finish());
        run_function(&mut m.functions[0]);
        match &m.functions[0].blocks[0].insts[2] {
            Inst::Bin { lhs, rhs, .. } => {
                assert_eq!(lhs.as_local(), Some(p), "uses chase copies back to the param");
                assert_eq!(rhs.as_local(), Some(p));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn identity_simplification() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let a = fb.bin(BinOp::Add, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 0));
        let b = fb.bin(BinOp::Mul, Type::I64, Operand::local(a), Operand::const_int(Type::I64, 1));
        fb.ret(Some(Operand::local(b)));
        m.push_function(fb.finish());
        run_function(&mut m.functions[0]);
        let f = &m.functions[0];
        assert!(f.blocks[0].insts.iter().all(|i| matches!(i, Inst::Copy { .. })));
        assert!(matches!(f.blocks[0].term, Term::Ret(Some(Operand::Local(l))) if l == p));
    }

    #[test]
    fn facts_die_at_block_boundary() {
        // Loads from globals can't be folded; and a constant set in one
        // block isn't propagated into the next (block-local analysis).
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let x = fb.new_local(Type::I64);
        let nxt = fb.new_block();
        fb.copy_to(x, Operand::const_int(Type::I64, 7));
        fb.jump(nxt);
        fb.switch_to(nxt);
        let r = fb.bin(BinOp::Add, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 1));
        fb.ret(Some(Operand::local(r)));
        m.push_function(fb.finish());
        run_function(&mut m.functions[0]);
        assert!(
            matches!(&m.functions[0].blocks[1].insts[0], Inst::Bin { .. }),
            "cross-block facts must not propagate"
        );
    }
}
