//! CFG cleanups: unreachable-block removal, jump threading and linear
//! block merging.

use khaos_ir::rewrite::{remove_blocks, retarget_edges};
use khaos_ir::{BlockId, Cfg, Function, Term};

/// Runs CFG simplification to a fixed point. Returns true if anything
/// changed.
pub fn run_function(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut round = false;

        // 1. Drop unreachable blocks.
        let cfg = Cfg::compute(f);
        let dead: Vec<BlockId> =
            f.iter_blocks().map(|(b, _)| b).filter(|b| !cfg.is_reachable(*b)).collect();
        if !dead.is_empty() {
            remove_blocks(f, &dead);
            round = true;
        }

        // 2. Thread empty forwarding blocks (non-entry, no insts, plain
        //    jump, not a landing pad, does not jump to itself).
        for b in 1..f.blocks.len() {
            let bid = BlockId::new(b);
            let block = f.block(bid);
            if block.insts.is_empty() && !block.is_pad() {
                if let Term::Jump(t) = block.term {
                    if t != bid && !f.block(t).is_pad() {
                        retarget_edges(f, bid, t);
                        round = true;
                    }
                }
            }
        }

        // 3. Merge a block into its unique jump-successor when that
        //    successor has exactly one predecessor (and is not a pad).
        let cfg = Cfg::compute(f);
        for b in 0..f.blocks.len() {
            let bid = BlockId::new(b);
            if !cfg.is_reachable(bid) {
                continue;
            }
            let Term::Jump(t) = f.block(bid).term else { continue };
            if t == bid || t == f.entry() || f.block(t).is_pad() || cfg.preds(t).len() != 1 {
                continue;
            }
            // Splice t's body into b.
            let succ_block = f.block(t).clone();
            let this = f.block_mut(bid);
            this.insts.extend(succ_block.insts);
            this.term = succ_block.term;
            round = true;
            break; // block ids shifted logically; recompute
        }

        if !round {
            return changed;
        }
        changed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{CmpPred, Module, Operand, Type};

    #[test]
    fn removes_unreachable() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let dead = fb.new_block();
        fb.ret(Some(Operand::const_int(Type::I64, 0)));
        fb.switch_to(dead);
        fb.ret(Some(Operand::const_int(Type::I64, 1)));
        m.push_function(fb.finish());
        assert!(run_function(&mut m.functions[0]));
        assert_eq!(m.functions[0].blocks.len(), 1);
    }

    #[test]
    fn threads_empty_jump_blocks() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let hop1 = fb.new_block();
        let hop2 = fb.new_block();
        let end = fb.new_block();
        let c = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 0));
        fb.branch(Operand::local(c), hop1, hop2);
        fb.switch_to(hop1);
        fb.jump(end);
        fb.switch_to(hop2);
        fb.jump(end);
        fb.switch_to(end);
        fb.ret(Some(Operand::local(p)));
        m.push_function(fb.finish());
        assert!(run_function(&mut m.functions[0]));
        // Both hops threaded away and removed as unreachable.
        assert_eq!(m.functions[0].blocks.len(), 2);
        khaos_ir::verify::assert_valid(&m);
    }

    #[test]
    fn merges_linear_chain() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let x = fb.iconst(Type::I64, 1);
        fb.jump(b1);
        fb.switch_to(b1);
        let y = fb.bin(khaos_ir::BinOp::Add, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 1));
        fb.jump(b2);
        fb.switch_to(b2);
        fb.ret(Some(Operand::local(y)));
        m.push_function(fb.finish());
        assert!(run_function(&mut m.functions[0]));
        assert_eq!(m.functions[0].blocks.len(), 1, "whole chain merges into entry");
        khaos_ir::verify::assert_valid(&m);
    }

    #[test]
    fn keeps_loops_intact() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let h = fb.new_block();
        let exit = fb.new_block();
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 0));
        fb.branch(Operand::local(c), h, exit);
        fb.switch_to(exit);
        fb.ret(Some(Operand::local(p)));
        m.push_function(fb.finish());
        run_function(&mut m.functions[0]);
        khaos_ir::verify::assert_valid(&m);
        // The loop header must still exist (self edge prevents merging).
        let f = &m.functions[0];
        assert!(f.blocks.iter().any(|b| matches!(b.term, Term::Branch { .. })));
    }
}
