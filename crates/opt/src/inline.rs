//! Bottom-up function inlining with a size-based cost model.
//!
//! This is the optimization the paper leans on twice: the baseline build
//! inlines small functions (`O2 + LTO`), and after fission the thinned
//! `remFunc`s become inlinable into their callers — the source of the
//! negative-overhead cases in Figure 6.

use khaos_ir::rewrite::{remap_block, import_locals};
use khaos_ir::{
    Block, BlockId, Callee, CallGraph, FuncId, Inst, Linkage, Module, Term,
};
use std::collections::HashMap;

/// Inliner configuration.
#[derive(Clone, Copy, Debug)]
pub struct InlineOptions {
    /// Maximum callee size (instruction count) to inline.
    pub threshold: usize,
    /// Allow inlining bodies of exported functions into callers (the LTO
    /// whole-program assumption).
    pub allow_exported: bool,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions { threshold: 48, allow_exported: true }
    }
}

/// Runs the inliner over the module. Returns the number of call sites
/// inlined.
pub fn run_module(m: &mut Module, opts: &InlineOptions) -> usize {
    let cg = CallGraph::compute(m);
    // Process callers in an order that tends to visit leaves first:
    // ascending by callee count.
    let mut order: Vec<FuncId> = m.iter_functions().map(|(id, _)| id).collect();
    order.sort_by_key(|f| cg.callees(*f).len());

    let mut inlined = 0;
    for caller in order {
        // Budget: don't let a function more than triple.
        let base_size = m.function(caller).inst_count();
        let budget = base_size * 2 + opts.threshold * 2;
        let mut grown = 0usize;
        // Repeatedly look for an inlinable call site in the caller.
        while let Some((bb, idx, callee)) = find_candidate(m, caller, opts) {
            let callee_size = m.function(callee).inst_count();
            if grown + callee_size > budget {
                break;
            }
            inline_site(m, caller, bb, idx, callee);
            grown += callee_size;
            inlined += 1;
        }
    }
    inlined
}

fn find_candidate(m: &Module, caller: FuncId, opts: &InlineOptions) -> Option<(BlockId, usize, FuncId)> {
    let f = m.function(caller);
    for (b, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            let Inst::Call { callee: Callee::Direct(t), args, .. } = inst else { continue };
            if *t == caller {
                continue; // no self-inline
            }
            let g = m.function(*t);
            if g.variadic
                || args.len() != g.param_count as usize
                || g.inst_count() > opts.threshold
                || (g.linkage == Linkage::Exported && !opts.allow_exported)
                || g.has_annotation("noinline")
            {
                continue;
            }
            return Some((b, i, *t));
        }
    }
    None
}

/// Splices `callee`'s body in place of the call at `(bb, idx)` in `caller`.
fn inline_site(m: &mut Module, caller: FuncId, bb: BlockId, idx: usize, callee: FuncId) {
    let g = m.function(callee).clone();
    let f = m.function_mut(caller);

    let Inst::Call { dst, args, .. } = f.block(bb).insts[idx].clone() else {
        panic!("inline_site target is not a call");
    };

    // Fresh locals for the callee body.
    let lmap = import_locals(f, &g);

    // Split the call block: `bb` keeps insts[..idx] and jumps into the
    // inlined entry; `join` receives insts[idx+1..] and the old terminator.
    let tail_insts: Vec<Inst> = f.block(bb).insts[idx + 1..].to_vec();
    let old_term = f.block(bb).term.clone();
    let join = f.push_block(Block { insts: tail_insts, term: old_term, pad: None });

    // Copy callee blocks, remapping locals and block ids.
    let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
    for (i, _) in g.blocks.iter().enumerate() {
        let placeholder = f.push_block(Block::with_term(Term::Unreachable));
        bmap.insert(BlockId::new(i), placeholder);
    }
    for (i, gb) in g.blocks.iter().enumerate() {
        let mut nb = gb.clone();
        remap_block(&mut nb, &lmap, &bmap);
        // Rewrite returns into copies + jump to the join block.
        if let Term::Ret(v) = nb.term.clone() {
            if let (Some(d), Some(val)) = (dst, v) {
                let ty = f.local_ty(d);
                nb.insts.push(Inst::Copy { ty, dst: d, src: val });
            }
            nb.term = Term::Jump(join);
        }
        *f.block_mut(bmap[&BlockId::new(i)]) = nb;
    }

    // Rewire the call block: arg copies then jump to the inlined entry.
    f.block_mut(bb).insts.truncate(idx);
    for (i, a) in args.iter().enumerate() {
        let param = lmap[&khaos_ir::LocalId::new(i)];
        let pty = f.local_ty(param);
        f.block_mut(bb).insts.push(Inst::Copy { ty: pty, dst: param, src: *a });
    }
    // A call gives the callee a frame of zeroed locals; an inlined body
    // reuses the caller's locals, which would otherwise carry stale
    // values when the call site sits in a loop. Re-establish the
    // fresh-frame semantics explicitly (DCE removes the dead ones).
    for i in g.param_count as usize..g.locals.len() {
        let mapped = lmap[&khaos_ir::LocalId::new(i)];
        let ty = f.local_ty(mapped);
        f.block_mut(bb).insts.push(Inst::Copy { ty, dst: mapped, src: khaos_ir::Operand::zero(ty) });
    }
    f.block_mut(bb).term = Term::Jump(bmap[&g.entry()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{BinOp, CmpPred, Operand, Type};
    use khaos_vm::run_function;

    fn module_with_helper() -> (Module, FuncId) {
        let mut m = Module::new("t");
        let mut h = FunctionBuilder::new("helper", Type::I64);
        let p = h.add_param(Type::I64);
        let t = h.new_block();
        let e = h.new_block();
        let c = h.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 0));
        h.branch(Operand::local(c), t, e);
        h.switch_to(t);
        let r1 = h.bin(BinOp::Mul, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 2));
        h.ret(Some(Operand::local(r1)));
        h.switch_to(e);
        h.ret(Some(Operand::const_int(Type::I64, -1)));
        let hid = m.push_function(h.finish());
        (m, hid)
    }

    #[test]
    fn inlines_and_preserves_behaviour() {
        let (mut m, hid) = module_with_helper();
        let mut main = FunctionBuilder::new("main", Type::I64);
        let a = main.call(hid, Type::I64, vec![Operand::const_int(Type::I64, 21)]).unwrap();
        let b = main.call(hid, Type::I64, vec![Operand::const_int(Type::I64, -5)]).unwrap();
        let r = main.bin(BinOp::Add, Type::I64, Operand::local(a), Operand::local(b));
        main.ret(Some(Operand::local(r)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);
        let before = run_function(&m, "main", &[]).unwrap();

        let n = run_module(&mut m, &InlineOptions::default());
        assert_eq!(n, 2);
        khaos_ir::verify::assert_valid(&m);
        let after = run_function(&m, "main", &[]).unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(after.exit_code, 42 - 1);
        // No calls remain in main.
        let (_, mainf) = m.function_by_name("main").unwrap();
        assert!(!mainf
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. }))));
        assert!(after.cycles < before.cycles, "call overhead should disappear");
    }

    #[test]
    fn respects_threshold() {
        let (mut m, hid) = module_with_helper();
        let mut main = FunctionBuilder::new("main", Type::I64);
        let a = main.call(hid, Type::I64, vec![Operand::const_int(Type::I64, 21)]).unwrap();
        main.ret(Some(Operand::local(a)));
        m.push_function(main.finish());
        let n = run_module(&mut m, &InlineOptions { threshold: 2, allow_exported: true });
        assert_eq!(n, 0, "helper exceeds tiny threshold");
    }

    #[test]
    fn inlined_locals_are_fresh_per_execution() {
        // Regression: a callee local read-before-written on one path must
        // see zero on EVERY execution, exactly as a fresh frame would —
        // not a stale value from the previous loop iteration.
        let mut m = Module::new("t");
        let mut h = FunctionBuilder::new("latch", Type::I64);
        let p = h.add_param(Type::I64);
        let x = h.new_local(Type::I64); // zero-init unless the branch writes it
        let setit = h.new_block();
        let out = h.new_block();
        let c = h.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 0));
        h.branch(Operand::local(c), setit, out);
        h.switch_to(setit);
        h.copy_to(x, Operand::const_int(Type::I64, 99));
        h.jump(out);
        h.switch_to(out);
        h.ret(Some(Operand::local(x)));
        let hid = m.push_function(h.finish());

        // main: call latch(1) then latch(0); second must return 0, not 99.
        let mut main = FunctionBuilder::new("main", Type::I64);
        let _first = main.call(hid, Type::I64, vec![Operand::const_int(Type::I64, 1)]).unwrap();
        let second = main.call(hid, Type::I64, vec![Operand::const_int(Type::I64, 0)]).unwrap();
        main.ret(Some(Operand::local(second)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);
        assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 0);

        run_module(&mut m, &InlineOptions::default());
        khaos_ir::verify::assert_valid(&m);
        assert_eq!(
            run_function(&m, "main", &[]).unwrap().exit_code,
            0,
            "inlined locals must behave like a fresh frame"
        );
    }

    #[test]
    fn no_self_inline() {
        let mut m = Module::new("t");
        let mut f = FunctionBuilder::new("rec", Type::I64);
        let p = f.add_param(Type::I64);
        f.ret(Some(Operand::local(p)));
        let fid = m.push_function(f.finish());
        // Patch a self call in.
        let fun = m.function_mut(fid);
        let d = fun.new_local(Type::I64);
        fun.blocks[0].insts.push(Inst::Call {
            dst: Some(d),
            callee: Callee::Direct(fid),
            args: vec![Operand::const_int(Type::I64, 1)],
        });
        let n = run_module(&mut m, &InlineOptions::default());
        assert_eq!(n, 0);
    }

    #[test]
    fn recursive_helper_callers_still_work() {
        // helper calls itself; caller inlines one level only (budget-capped).
        let mut m = Module::new("t");
        let mut h = FunctionBuilder::new("count", Type::I64);
        let p = h.add_param(Type::I64);
        let base = h.new_block();
        let rec = h.new_block();
        let c = h.cmp(CmpPred::Sle, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 0));
        h.branch(Operand::local(c), base, rec);
        h.switch_to(base);
        h.ret(Some(Operand::const_int(Type::I64, 0)));
        h.switch_to(rec);
        let pm1 = h.bin(BinOp::Sub, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 1));
        let hid_placeholder = FuncId(0); // self id known: first pushed
        let r = h.call(hid_placeholder, Type::I64, vec![Operand::local(pm1)]).unwrap();
        let r1 = h.bin(BinOp::Add, Type::I64, Operand::local(r), Operand::const_int(Type::I64, 1));
        h.ret(Some(Operand::local(r1)));
        let hid = m.push_function(h.finish());
        assert_eq!(hid, hid_placeholder);

        let mut main = FunctionBuilder::new("main", Type::I64);
        let a = main.call(hid, Type::I64, vec![Operand::const_int(Type::I64, 5)]).unwrap();
        main.ret(Some(Operand::local(a)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);

        run_module(&mut m, &InlineOptions::default());
        khaos_ir::verify::assert_valid(&m);
        assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 5);
    }
}
