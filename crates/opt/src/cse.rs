//! Local (block-scoped) common-subexpression elimination over pure
//! instructions.

use khaos_ir::{Function, Inst, LocalId, Operand};
use std::collections::HashMap;

/// A hashable key for a pure expression.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(khaos_ir::BinOp, khaos_ir::Type, OpKey, OpKey),
    Un(khaos_ir::UnOp, khaos_ir::Type, OpKey),
    Cmp(khaos_ir::CmpPred, khaos_ir::Type, OpKey, OpKey),
    Cast(khaos_ir::CastKind, khaos_ir::Type, khaos_ir::Type, OpKey),
    PtrAdd(OpKey, OpKey),
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum OpKey {
    Local(LocalId),
    Int(i64, khaos_ir::Type),
    Float(u64, khaos_ir::Type),
    Null,
}

fn op_key(o: &Operand) -> OpKey {
    match o {
        Operand::Local(l) => OpKey::Local(*l),
        Operand::Const(khaos_ir::Const::Int { value, ty }) => OpKey::Int(*value, *ty),
        Operand::Const(khaos_ir::Const::Float { value, ty }) => OpKey::Float(value.to_bits(), *ty),
        Operand::Const(khaos_ir::Const::Null) => OpKey::Null,
    }
}

fn key_of(inst: &Inst) -> Option<(Key, LocalId, khaos_ir::Type)> {
    match inst {
        Inst::Bin { op, ty, dst, lhs, rhs } if !op.can_trap() => {
            // Canonicalize commutative operand order for better hit rates.
            let (a, b) = if op.is_commutative() {
                let (ka, kb) = (op_key(lhs), op_key(rhs));
                if format!("{:?}", DebugKey(&ka)) <= format!("{:?}", DebugKey(&kb)) {
                    (ka, kb)
                } else {
                    (kb, ka)
                }
            } else {
                (op_key(lhs), op_key(rhs))
            };
            Some((Key::Bin(*op, *ty, a, b), *dst, *ty))
        }
        Inst::Un { op, ty, dst, src } => Some((Key::Un(*op, *ty, op_key(src)), *dst, *ty)),
        Inst::Cmp { pred, ty, dst, lhs, rhs } => {
            Some((Key::Cmp(*pred, *ty, op_key(lhs), op_key(rhs)), *dst, khaos_ir::Type::I1))
        }
        Inst::Cast { kind, dst, src, from, to } => {
            Some((Key::Cast(*kind, *from, *to, op_key(src)), *dst, *to))
        }
        Inst::PtrAdd { dst, base, offset } => {
            Some((Key::PtrAdd(op_key(base), op_key(offset)), *dst, khaos_ir::Type::Ptr))
        }
        _ => None,
    }
}

struct DebugKey<'a>(&'a OpKey);
impl std::fmt::Debug for DebugKey<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            OpKey::Local(l) => write!(f, "l{}", l.index()),
            OpKey::Int(v, t) => write!(f, "i{v}:{t}"),
            OpKey::Float(v, t) => write!(f, "f{v}:{t}"),
            OpKey::Null => write!(f, "null"),
        }
    }
}

fn key_mentions(k: &Key, l: LocalId) -> bool {
    let check = |o: &OpKey| matches!(o, OpKey::Local(x) if *x == l);
    match k {
        Key::Bin(_, _, a, b) | Key::Cmp(_, _, a, b) | Key::PtrAdd(a, b) => check(a) || check(b),
        Key::Un(_, _, a) | Key::Cast(_, _, _, a) => check(a),
    }
}

/// Runs local CSE on one function. Returns the number of replaced
/// instructions.
pub fn run_function(f: &mut Function) -> usize {
    let mut replaced = 0;
    for b in &mut f.blocks {
        let mut avail: HashMap<Key, LocalId> = HashMap::new();
        for inst in &mut b.insts {
            let parsed = key_of(inst);
            // The definition invalidates expressions reading or producing
            // this local — do this before recording the new expression.
            if let Some(d) = inst.def() {
                avail.retain(|k, v| *v != d && !key_mentions(k, d));
            }
            if let Some((key, dst, ty)) = parsed {
                if let Some(prev) = avail.get(&key).copied() {
                    if prev != dst {
                        *inst = Inst::Copy { ty, dst, src: Operand::local(prev) };
                        replaced += 1;
                    }
                } else if !key_mentions(&key, dst) {
                    // Self-referential defs (`x = x + 1`) are not reusable.
                    avail.insert(key, dst);
                }
            }
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{BinOp, Module, Type};

    #[test]
    fn reuses_identical_expression() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let a = fb.bin(BinOp::Mul, Type::I64, Operand::local(p), Operand::local(p));
        let b = fb.bin(BinOp::Mul, Type::I64, Operand::local(p), Operand::local(p));
        let r = fb.bin(BinOp::Add, Type::I64, Operand::local(a), Operand::local(b));
        fb.ret(Some(Operand::local(r)));
        m.push_function(fb.finish());
        assert_eq!(run_function(&mut m.functions[0]), 1);
        assert!(matches!(&m.functions[0].blocks[0].insts[1], Inst::Copy { src: Operand::Local(l), .. } if *l == a));
        khaos_ir::verify::assert_valid(&m);
    }

    #[test]
    fn redefinition_invalidates() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let a = fb.bin(BinOp::Add, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 1));
        fb.copy_to(p, Operand::const_int(Type::I64, 9)); // p redefined!
        let b = fb.bin(BinOp::Add, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 1));
        let r = fb.bin(BinOp::Add, Type::I64, Operand::local(a), Operand::local(b));
        fb.ret(Some(Operand::local(r)));
        m.push_function(fb.finish());
        assert_eq!(run_function(&mut m.functions[0]), 0, "p changed between the adds");
    }

    #[test]
    fn commutative_operands_canonicalized() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let q = fb.add_param(Type::I64);
        let a = fb.bin(BinOp::Add, Type::I64, Operand::local(p), Operand::local(q));
        let _b = fb.bin(BinOp::Add, Type::I64, Operand::local(q), Operand::local(p));
        fb.ret(Some(Operand::local(a)));
        m.push_function(fb.finish());
        assert_eq!(run_function(&mut m.functions[0]), 1, "a+b and b+a unify");
    }

    #[test]
    fn trapping_ops_not_csed() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.add_param(Type::I64);
        let q = fb.add_param(Type::I64);
        let a = fb.bin(BinOp::SDiv, Type::I64, Operand::local(p), Operand::local(q));
        let _b = fb.bin(BinOp::SDiv, Type::I64, Operand::local(p), Operand::local(q));
        fb.ret(Some(Operand::local(a)));
        m.push_function(fb.finish());
        assert_eq!(run_function(&mut m.functions[0]), 0);
    }
}
