//! Dead internal function elimination (the whole-program LTO effect).
//!
//! Removes internal functions that are never directly called, never
//! address-taken and never referenced from a global initialiser. Function
//! ids shift, so every reference in the module is rewritten.

use khaos_ir::{Callee, FuncId, Function, GInit, Inst, Linkage, Module, Term};
use std::collections::HashMap;

/// Removes dead internal functions. Returns the number removed.
pub fn run_module(m: &mut Module) -> usize {
    {
        let mut referenced = vec![false; m.functions.len()];
        for (i, f) in m.functions.iter().enumerate() {
            if f.linkage == Linkage::Exported || f.name == "main" {
                referenced[i] = true;
            }
        }
        let mark = |c: &Callee, referenced: &mut Vec<bool>| {
            if let Callee::Direct(t) = c {
                referenced[t.index()] = true;
            }
        };
        for f in &m.functions {
            for b in &f.blocks {
                for inst in &b.insts {
                    match inst {
                        Inst::Call { callee, .. } => mark(callee, &mut referenced),
                        Inst::FuncAddr { func, .. } => referenced[func.index()] = true,
                        _ => {}
                    }
                }
                if let Term::Invoke { callee, .. } = &b.term {
                    mark(callee, &mut referenced);
                }
            }
        }
        for g in &m.globals {
            for init in &g.init {
                if let GInit::FuncPtr { func, .. } = init {
                    referenced[func.index()] = true;
                }
            }
        }

        let dead: Vec<usize> = (0..m.functions.len()).filter(|i| !referenced[*i]).collect();
        if dead.is_empty() {
            return 0;
        }

        // Compact and remap.
        let mut map: HashMap<FuncId, FuncId> = HashMap::new();
        let old: Vec<Function> = std::mem::take(&mut m.functions);
        for (i, f) in old.into_iter().enumerate() {
            if referenced[i] {
                map.insert(FuncId::new(i), FuncId::new(m.functions.len()));
                m.functions.push(f);
            }
        }
        let remap = |c: &mut Callee| {
            if let Callee::Direct(t) = c {
                *t = map[t];
            }
        };
        for f in &mut m.functions {
            for b in &mut f.blocks {
                for inst in &mut b.insts {
                    match inst {
                        Inst::Call { callee, .. } => remap(callee),
                        Inst::FuncAddr { func, .. } => *func = map[func],
                        _ => {}
                    }
                }
                if let Term::Invoke { callee, .. } = &mut b.term {
                    remap(callee);
                }
            }
        }
        for g in &mut m.globals {
            for init in &mut g.init {
                if let GInit::FuncPtr { func, .. } = init {
                    *func = map[func];
                }
            }
        }
        // Removing functions can orphan others; iterate.
        let removed = dead.len();
        removed + run_module(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{Operand, Type};

    #[test]
    fn removes_uncalled_internal_chain() {
        let mut m = Module::new("t");
        // dead2 called only by dead1; dead1 called by nobody.
        let mut d2 = FunctionBuilder::new("dead2", Type::Void);
        d2.ret(None);
        let d2id = m.push_function(d2.finish());
        let mut d1 = FunctionBuilder::new("dead1", Type::Void);
        d1.call(d2id, Type::Void, vec![]);
        d1.ret(None);
        m.push_function(d1.finish());
        let mut main = FunctionBuilder::new("main", Type::I64);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());

        let removed = run_module(&mut m);
        assert_eq!(removed, 2);
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "main");
        khaos_ir::verify::assert_valid(&m);
    }

    #[test]
    fn keeps_exported_and_referenced() {
        let mut m = Module::new("t");
        let mut api = FunctionBuilder::new("api", Type::Void);
        api.set_exported();
        api.ret(None);
        m.push_function(api.finish());

        let mut tbl = FunctionBuilder::new("via_table", Type::Void);
        tbl.ret(None);
        let tid = m.push_function(tbl.finish());
        m.push_global(khaos_ir::Global {
            name: "table".into(),
            init: vec![GInit::FuncPtr { func: tid, addend: 0 }],
            align: 8,
            exported: false,
        });

        let mut main = FunctionBuilder::new("main", Type::I64);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());

        assert_eq!(run_module(&mut m), 0);
        assert_eq!(m.functions.len(), 3);
    }

    #[test]
    fn remaps_ids_after_compaction() {
        let mut m = Module::new("t");
        let mut dead = FunctionBuilder::new("dead", Type::Void);
        dead.ret(None);
        m.push_function(dead.finish());
        let mut live = FunctionBuilder::new("live", Type::I64);
        live.ret(Some(Operand::const_int(Type::I64, 7)));
        let lid = m.push_function(live.finish());
        let mut main = FunctionBuilder::new("main", Type::I64);
        let r = main.call(lid, Type::I64, vec![]).unwrap();
        main.ret(Some(Operand::local(r)));
        m.push_function(main.finish());

        assert_eq!(run_module(&mut m), 1);
        khaos_ir::verify::assert_valid(&m);
        assert_eq!(khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code, 7);
    }
}
