//! Promotion of non-escaping allocas to registers.
//!
//! An alloca qualifies when its address is used *only* as the direct
//! address operand of same-typed loads and stores. The alloca becomes a
//! zero-initialised register; loads become copies from it, stores copies
//! into it. This is the pass that cleans up after fission demotes
//! cross-region variables to stack slots.

use khaos_ir::{Function, Inst, LocalId, Operand, Type};

/// Runs promotion on one function. Returns the number of promoted allocas.
pub fn run_function(f: &mut Function) -> usize {
    // Gather candidate allocas: local -> (size, element type or None until seen).
    #[derive(Clone)]
    struct Cand {
        size: u32,
        ty: Option<Type>,
        ok: bool,
    }
    let mut cands: Vec<Option<Cand>> = vec![None; f.locals.len()];
    for b in &f.blocks {
        for inst in &b.insts {
            if let Inst::Alloca { dst, size, .. } = inst {
                match &mut cands[dst.index()] {
                    // A second alloca defining the same local: unsupported.
                    Some(c) => c.ok = false,
                    slot => *slot = Some(Cand { size: *size, ty: None, ok: true }),
                }
            }
        }
    }
    let disqualify = |cands: &mut Vec<Option<Cand>>, l: LocalId| {
        if let Some(c) = &mut cands[l.index()] {
            c.ok = false;
        }
    };

    // Scan all uses; only Load/Store address positions are allowed.
    for b in &f.blocks {
        if let Some(pad) = &b.pad {
            if let Some(d) = pad.dst {
                disqualify(&mut cands, d);
            }
        }
        for inst in &b.insts {
            match inst {
                Inst::Load { ty, addr, dst } => {
                    if let Some(l) = addr.as_local() {
                        if let Some(c) = &mut cands[l.index()] {
                            match c.ty {
                                None => c.ty = Some(*ty),
                                Some(t) if t == *ty => {}
                                _ => c.ok = false,
                            }
                            if ty.size() > c.size {
                                c.ok = false;
                            }
                        }
                    }
                    // A load *into* the candidate local clobbers it.
                    if cands[dst.index()].is_some() {
                        disqualify(&mut cands, *dst);
                    }
                }
                Inst::Store { ty, addr, value } => {
                    if let Some(l) = addr.as_local() {
                        if let Some(c) = &mut cands[l.index()] {
                            match c.ty {
                                None => c.ty = Some(*ty),
                                Some(t) if t == *ty => {}
                                _ => c.ok = false,
                            }
                            if ty.size() > c.size {
                                c.ok = false;
                            }
                        }
                    }
                    // Storing the pointer itself leaks it.
                    if let Some(l) = value.as_local() {
                        disqualify(&mut cands, l);
                    }
                }
                Inst::Alloca { .. } => {}
                other => {
                    other.for_each_use(|o| {
                        if let Some(l) = o.as_local() {
                            disqualify(&mut cands, l);
                        }
                    });
                    if let Some(d) = other.def() {
                        if cands[d.index()].is_some() {
                            disqualify(&mut cands, d);
                        }
                    }
                }
            }
        }
        b.term.for_each_use(|o| {
            if let Some(l) = o.as_local() {
                disqualify(&mut cands, l);
            }
        });
        if let Some(d) = b.term.def() {
            if cands[d.index()].is_some() {
                disqualify(&mut cands, d);
            }
        }
    }

    // Materialize: one fresh register per promoted alloca.
    let mut reg_for: Vec<Option<(LocalId, Type)>> = vec![None; f.locals.len()];
    let mut promoted = 0;
    for (i, c) in cands.iter().enumerate() {
        if let Some(Cand { ty: Some(ty), ok: true, .. }) = c {
            let r = f.new_local(*ty);
            reg_for[i] = Some((r, *ty));
            promoted += 1;
        }
    }
    if promoted == 0 {
        return 0;
    }

    for b in &mut f.blocks {
        for inst in &mut b.insts {
            let replacement = match inst {
                Inst::Alloca { dst, .. } => reg_for
                    .get(dst.index())
                    .and_then(|r| *r)
                    .map(|(r, ty)| Inst::Copy { ty, dst: r, src: Operand::zero(ty) }),
                Inst::Load { dst, addr, .. } => addr
                    .as_local()
                    .and_then(|l| reg_for[l.index()])
                    .map(|(r, ty)| Inst::Copy { ty, dst: *dst, src: Operand::local(r) }),
                Inst::Store { addr, value, .. } => addr
                    .as_local()
                    .and_then(|l| reg_for[l.index()])
                    .map(|(r, ty)| Inst::Copy { ty, dst: r, src: *value }),
                _ => None,
            };
            if let Some(r) = replacement {
                *inst = r;
            }
        }
    }
    promoted
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{BinOp, Module};
    use khaos_vm::run_function as vm_run;

    #[test]
    fn promotes_simple_slot() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.alloca(8);
        fb.store(Type::I64, Operand::const_int(Type::I64, 5), Operand::local(p));
        let v = fb.load(Type::I64, Operand::local(p));
        fb.ret(Some(Operand::local(v)));
        m.push_function(fb.finish());

        let n = run_function(&mut m.functions[0]);
        assert_eq!(n, 1);
        khaos_ir::verify::assert_valid(&m);
        assert!(
            !m.functions[0].blocks.iter().any(|b| b
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Alloca { .. } | Inst::Load { .. } | Inst::Store { .. }))),
            "all memory ops should be gone"
        );
        assert_eq!(vm_run(&m, "main", &[]).unwrap().exit_code, 5);
    }

    #[test]
    fn escaping_alloca_not_promoted() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.alloca(8);
        // Address escapes through pointer arithmetic.
        let q = fb.ptradd(Operand::local(p), Operand::const_int(Type::I64, 0));
        fb.store(Type::I64, Operand::const_int(Type::I64, 5), Operand::local(q));
        let v = fb.load(Type::I64, Operand::local(p));
        fb.ret(Some(Operand::local(v)));
        m.push_function(fb.finish());
        let n = run_function(&mut m.functions[0]);
        assert_eq!(n, 0);
        assert_eq!(vm_run(&m, "main", &[]).unwrap().exit_code, 5);
    }

    #[test]
    fn mixed_types_not_promoted() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.alloca(8);
        fb.store(Type::I32, Operand::const_int(Type::I32, 5), Operand::local(p));
        let v = fb.load(Type::I64, Operand::local(p));
        fb.ret(Some(Operand::local(v)));
        m.push_function(fb.finish());
        assert_eq!(run_function(&mut m.functions[0]), 0);
    }

    #[test]
    fn promoted_register_behaves_across_blocks() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.alloca(8);
        let h = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let i = fb.new_local(Type::I64);
        fb.store(Type::I64, Operand::const_int(Type::I64, 0), Operand::local(p));
        fb.copy_to(i, Operand::const_int(Type::I64, 0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp(
            khaos_ir::CmpPred::Slt,
            Type::I64,
            Operand::local(i),
            Operand::const_int(Type::I64, 5),
        );
        fb.branch(Operand::local(c), body, exit);
        fb.switch_to(body);
        let cur = fb.load(Type::I64, Operand::local(p));
        let nxt = fb.bin(BinOp::Add, Type::I64, Operand::local(cur), Operand::local(i));
        fb.store(Type::I64, Operand::local(nxt), Operand::local(p));
        let ni = fb.bin(BinOp::Add, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
        fb.copy_to(i, Operand::local(ni));
        fb.jump(h);
        fb.switch_to(exit);
        let fin = fb.load(Type::I64, Operand::local(p));
        fb.ret(Some(Operand::local(fin)));
        m.push_function(fb.finish());

        let before = vm_run(&m, "main", &[]).unwrap();
        assert_eq!(run_function(&mut m.functions[0]), 1);
        khaos_ir::verify::assert_valid(&m);
        let after = vm_run(&m, "main", &[]).unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(after.exit_code, 1 + 2 + 3 + 4);
        assert!(after.cycles < before.cycles);
    }
}
