//! # khaos-opt — optimization passes for KIR
//!
//! A classical middle-end pipeline. Khaos's central claim is that *moving
//! code across functions changes what intra-procedural optimizations
//! produce*; this crate supplies those optimizations:
//!
//! * [`mem2reg`] — promotes non-escaping allocas to registers (re-promotes
//!   the stack slots fission introduces inside each new function),
//! * [`constprop`] — constant/copy propagation and folding with branch
//!   simplification,
//! * [`cse`] — local common-subexpression elimination,
//! * [`dce`] — liveness-based dead code elimination,
//! * [`simplifycfg`] — unreachable-block removal, jump threading, block
//!   merging,
//! * [`inline`] — bottom-up inlining with a cost model (the source of the
//!   paper's *negative* overhead cases: thin `remFunc`s get inlined),
//! * [`dfe`] — dead internal function elimination (the LTO effect).
//!
//! The driver is [`optimize`] with [`OptLevel`] `O0`–`O3` and an `lto`
//! switch, mirroring the paper's `O2 + LTO` baseline.
//!
//! Through the `khaos-pass` pipeline API every pass here is a spec
//! atom (`mem2reg`, `inline(threshold=96)`, `dfe`, …) and [`optimize`]
//! is the family of macro-pipeline atoms `O0`..`O3` with an optional
//! `+lto` suffix — `"fufi_all | O2+lto"` is the paper's whole build in
//! one declarative, fingerprinted spec. The functions here remain the
//! implementation the adapters call.

pub mod constprop;
pub mod cse;
pub mod dce;
pub mod dfe;
pub mod inline;
pub mod mem2reg;
pub mod simplifycfg;

use khaos_ir::Module;

/// Optimization level, mirroring `-O0`..`-O3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Scalar cleanups only.
    O1,
    /// Scalar cleanups + inlining (the paper's baseline level).
    O2,
    /// `O2` with a more aggressive inliner and an extra cleanup round.
    O3,
}

impl OptLevel {
    /// All levels, for sweeps.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

    /// Display name (`"O2"` etc.).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptOptions {
    /// Optimization level.
    pub level: OptLevel,
    /// Link-time optimization: dead internal functions are removed and the
    /// inliner may inline across "module boundaries" (exported functions).
    pub lto: bool,
    /// Inliner threshold override (instruction count).
    pub inline_threshold: Option<usize>,
}

impl OptOptions {
    /// The paper's baseline configuration: `O2` with LTO.
    pub fn baseline() -> Self {
        OptOptions { level: OptLevel::O2, lto: true, inline_threshold: None }
    }

    /// A specific level without LTO.
    pub fn level(level: OptLevel) -> Self {
        OptOptions { level, lto: false, inline_threshold: None }
    }
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions::baseline()
    }
}

/// The scalar cleanup pipeline without inlining.
///
/// This is what runs *after* the obfuscation passes in the paper's
/// pipeline (Khaos is a middle-end pass followed by the rest of the
/// compiler): it re-promotes the stack slots fission introduced, folds
/// the adapters fusion inserted, and generally reshapes the obfuscated
/// bodies — without re-inlining, which would undo the obfuscation.
pub fn optimize_scalar(m: &mut Module) {
    for f in &mut m.functions {
        mem2reg::run_function(f);
        constprop::run_function(f);
        cse::run_function(f);
        dce::run_function(f);
        simplifycfg::run_function(f);
    }
}

fn scalar_cleanup(m: &mut Module) {
    optimize_scalar(m);
}

/// Runs the full pipeline for `opts` on `m`.
///
/// The module must verify beforehand; it will verify afterwards (asserted
/// in debug builds).
pub fn optimize(m: &mut Module, opts: &OptOptions) {
    if opts.level == OptLevel::O0 {
        return;
    }
    scalar_cleanup(m);
    if opts.level >= OptLevel::O2 {
        let threshold = opts.inline_threshold.unwrap_or(match opts.level {
            OptLevel::O3 => 96,
            _ => 48,
        });
        inline::run_module(m, &inline::InlineOptions { threshold, allow_exported: opts.lto });
        scalar_cleanup(m);
        if opts.level == OptLevel::O3 {
            inline::run_module(
                m,
                &inline::InlineOptions { threshold: threshold / 2, allow_exported: opts.lto },
            );
            scalar_cleanup(m);
        }
    }
    if opts.lto {
        dfe::run_module(m);
    }
    debug_assert!(
        khaos_ir::verify::verify_module(m).is_ok(),
        "optimizer produced invalid module: {:?}",
        khaos_ir::verify::verify_module(m).err()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{BinOp, Operand, Type};
    use khaos_vm::run_function;

    /// main: x = alloca; store 20; v = load; w = v + 22; ret w
    fn sample_module() -> Module {
        let mut m = Module::new("s");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        let p = fb.alloca(8);
        fb.store(Type::I64, Operand::const_int(Type::I64, 20), Operand::local(p));
        let v = fb.load(Type::I64, Operand::local(p));
        let w = fb.bin(BinOp::Add, Type::I64, Operand::local(v), Operand::const_int(Type::I64, 22));
        fb.ret(Some(Operand::local(w)));
        m.push_function(fb.finish());
        m
    }

    #[test]
    fn o2_shrinks_and_preserves_behaviour() {
        let mut m = sample_module();
        let before = run_function(&m, "main", &[]).unwrap();
        let size_before = m.inst_count();
        optimize(&mut m, &OptOptions::baseline());
        let after = run_function(&m, "main", &[]).unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        assert_eq!(before.output, after.output);
        assert!(m.inst_count() < size_before, "O2 should shrink the sample");
        assert!(after.cycles < before.cycles, "O2 should speed the sample up");
    }

    #[test]
    fn o0_is_identity() {
        let mut m = sample_module();
        let orig = m.clone();
        optimize(&mut m, &OptOptions::level(OptLevel::O0));
        assert_eq!(m, orig);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(OptLevel::O0 < OptLevel::O2);
        assert_eq!(OptLevel::O2.name(), "O2");
    }
}
