//! # khaos — facade crate
//!
//! Re-exports the whole Khaos reproduction (CGO 2023): the KIR compiler
//! substrate, the optimizer, the fission/fusion obfuscator, the O-LLVM and
//! BinTuner baselines, the unified `khaos-pass` build-pipeline API, the
//! synthetic binary codegen, the five binary diffing techniques, the
//! corpus-scale ANN index tier and its socket query daemon, the
//! benchmark workloads and the execution VM.
//!
//! Builds are declarative pipelines: `khaos::pass::Pipeline::parse(
//! "fufi_all | O2+lto")` is the paper's shipped configuration, with
//! per-pass reports and a stable provenance fingerprint.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! ```
//! use khaos::prelude::*;
//!
//! // Generate a small workload program, obfuscate it, and check that the
//! // obfuscated build still computes the same outputs.
//! let module = khaos::workloads::coreutils_program("demo_tool", 7);
//! let baseline = khaos::vm::run_to_completion(&module, &[]).unwrap();
//!
//! let mut obf = module.clone();
//! let mut ctx = KhaosContext::new(42);
//! khaos::obfuscate::fufi_ori(&mut obf, &mut ctx).unwrap();
//! let obfuscated = khaos::vm::run_to_completion(&obf, &[]).unwrap();
//! assert_eq!(baseline.output, obfuscated.output);
//! ```

pub use khaos_binary as binary;
pub use khaos_bintuner as bintuner;
pub use khaos_core as obfuscate;
pub use khaos_diff as diff;
pub use khaos_index as index;
pub use khaos_ir as ir;
pub use khaos_ollvm as ollvm;
pub use khaos_opt as opt;
pub use khaos_par as par;
pub use khaos_pass as pass;
pub use khaos_serve as serve;
pub use khaos_store as store;
pub use khaos_vm as vm;
pub use khaos_workloads as workloads;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use khaos_binary::lower_module;
    pub use khaos_core::{KhaosContext, KhaosOptions};
    pub use khaos_ir::{Module, Type};
    pub use khaos_opt::{optimize, OptLevel, OptOptions};
    pub use khaos_pass::{Pass, PassCtx, Pipeline, VerifyPolicy};
    pub use khaos_vm::run_to_completion;
}
