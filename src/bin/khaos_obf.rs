//! `khaos-obf` — command-line obfuscator for textual KIR modules.
//!
//! ```text
//! khaos-obf <mode> [--seed N] [--arity K] [--o2] [--run] [--stats]
//!                  [input.kir|--demo NAME]
//!
//!   mode     fission | fusion | fusion-n | fufi-sep | fufi-ori | fufi-all |
//!            sub | bog | fla | fla-10
//!   --arity  constituents per fusFunc for `fusion-n` (2–4, default 3)
//!   --demo   use a generated workload program instead of a file
//!   --o2     run the O2+LTO pipeline before and after obfuscation
//!   --run    execute baseline and obfuscated builds and diff the output
//!   --stats  print fission/fusion statistics
//! ```
//!
//! The obfuscated module is printed to stdout in the same textual format,
//! so pipelines compose: `khaos-obf fufi-all a.kir > a_obf.kir`.

use khaos::obfuscate::{fusion_n, KhaosContext, KhaosMode};
use khaos::ollvm::OllvmMode;
use khaos::opt::{optimize, OptOptions};
use khaos::vm::run_to_completion;
use khaos_ir::{parser, printer, Module};
use std::process::ExitCode;

struct Args {
    mode: String,
    seed: u64,
    arity: usize,
    o2: bool,
    run: bool,
    stats: bool,
    input: Option<String>,
    demo: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: String::new(),
        seed: 0xC60,
        arity: 3,
        o2: false,
        run: false,
        stats: false,
        input: None,
        demo: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--arity" => {
                args.arity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|k| (2..=4).contains(k))
                    .ok_or("--arity needs an integer in 2..=4")?;
            }
            "--o2" => args.o2 = true,
            "--run" => args.run = true,
            "--stats" => args.stats = true,
            "--demo" => args.demo = Some(it.next().ok_or("--demo needs a program name")?),
            _ if args.mode.is_empty() => args.mode = a,
            _ if args.input.is_none() => args.input = Some(a),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if args.mode.is_empty() {
        return Err("missing <mode>".into());
    }
    Ok(args)
}

fn load_module(args: &Args) -> Result<Module, String> {
    if let Some(name) = &args.demo {
        return Ok(khaos::workloads::coreutils_program(name, args.seed));
    }
    let path = args.input.as_ref().ok_or("missing input file (or use --demo NAME)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parser::parse_module(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("khaos-obf: {e}");
            eprintln!(
                "usage: khaos-obf <fission|fusion|fusion-n|fufi-sep|fufi-ori|fufi-all|sub|bog|fla|fla-10> \
                 [--seed N] [--arity K] [--o2] [--run] [--stats] [input.kir | --demo NAME]"
            );
            return ExitCode::from(2);
        }
    };

    let mut module = match load_module(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("khaos-obf: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(errs) = khaos_ir::verify::verify_module(&module) {
        eprintln!("khaos-obf: input does not verify: {}", errs[0]);
        return ExitCode::FAILURE;
    }
    if args.o2 {
        optimize(&mut module, &OptOptions::baseline());
    }
    let baseline = module.clone();

    let mut ctx = KhaosContext::new(args.seed);
    enum Transform {
        Khaos(KhaosMode),
        NwayFusion,
        Ollvm(OllvmMode),
    }
    let transform = match args.mode.as_str() {
        "fission" => Transform::Khaos(KhaosMode::Fission),
        "fusion" => Transform::Khaos(KhaosMode::Fusion),
        "fusion-n" => Transform::NwayFusion,
        "fufi-sep" => Transform::Khaos(KhaosMode::FuFiSep),
        "fufi-ori" => Transform::Khaos(KhaosMode::FuFiOri),
        "fufi-all" => Transform::Khaos(KhaosMode::FuFiAll),
        "sub" => Transform::Ollvm(OllvmMode::Sub(1.0)),
        "bog" => Transform::Ollvm(OllvmMode::Bog(1.0)),
        "fla" => Transform::Ollvm(OllvmMode::Fla(1.0)),
        "fla-10" => Transform::Ollvm(OllvmMode::Fla(0.1)),
        other => {
            eprintln!("khaos-obf: unknown mode `{other}`");
            return ExitCode::from(2);
        }
    };
    let applied = match transform {
        Transform::Khaos(m) => m.apply(&mut module, &mut ctx),
        Transform::NwayFusion => fusion_n(&mut module, &mut ctx, args.arity),
        Transform::Ollvm(m) => {
            m.apply(&mut module, args.seed);
            Ok(())
        }
    };
    if let Err(e) = applied {
        eprintln!("khaos-obf: {e}");
        return ExitCode::FAILURE;
    }
    if args.o2 {
        optimize(&mut module, &OptOptions::baseline());
    }

    if args.run {
        let want = run_to_completion(&baseline, &[]);
        let got = run_to_completion(&module, &[]);
        match (want, got) {
            (Ok(w), Ok(g)) if w.output == g.output && w.exit_code == g.exit_code => {
                eprintln!(
                    "khaos-obf: behaviour preserved (exit {}, {} outputs); cycles {} -> {} ({:+.1}%)",
                    g.exit_code,
                    g.output.len(),
                    w.cycles,
                    g.cycles,
                    (g.cycles as f64 / w.cycles as f64 - 1.0) * 100.0
                );
            }
            (Ok(_), Ok(_)) => {
                eprintln!("khaos-obf: BEHAVIOUR DIVERGED — this is a bug, please report");
                return ExitCode::FAILURE;
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("khaos-obf: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.stats {
        eprintln!(
            "khaos-obf: fission: {} sepFuncs from {} functions (ratio {:.0}%, #BB {:.2}, RR {:.0}%)",
            ctx.fission_stats.sep_funcs,
            ctx.fission_stats.ori_funcs,
            ctx.fission_stats.ratio() * 100.0,
            ctx.fission_stats.avg_blocks(),
            ctx.fission_stats.reduced_ratio() * 100.0,
        );
        eprintln!(
            "khaos-obf: fusion: {} fusFuncs, ratio {:.0}%, #RP {:.2}, #HBB {:.2}, {} trampolines",
            ctx.fusion_stats.fus_funcs,
            ctx.fusion_stats.ratio() * 100.0,
            ctx.fusion_stats.avg_reduced_params(),
            ctx.fusion_stats.avg_innocuous(),
            ctx.fusion_stats.trampolines,
        );
    }

    print!("{}", printer::print_module(&module));
    ExitCode::SUCCESS
}
