//! `khaos-obf` — command-line obfuscator for textual KIR modules.
//!
//! ```text
//! khaos-obf <mode|spec> [--seed N] [--arity K] [--o2] [--run] [--stats]
//!                       [--report] [--shard i/n] [input.kir|--demo NAME]
//!
//!   mode     fission | fusion | fusion-n | fufi-sep | fufi-ori | fufi-all |
//!            sub | bog | fla | fla-10
//!   spec     any khaos-pass pipeline spec, e.g. "fission | fusion(arity=3)"
//!   --arity  constituents per fusFunc for `fusion-n` (2–4, default 3)
//!   --demo   use a generated workload program instead of a file
//!   --o2     run the O2+LTO pipeline before and after obfuscation
//!   --run    execute baseline and obfuscated builds and diff the output
//!   --stats  print fission/fusion statistics
//!   --report print the per-pass timing / IR-delta report
//!   --shard  process this input only when shard i of n owns it (by
//!            module-name hash; `KHAOS_SHARD=i/n` works too) — `n`
//!            cooperating invocations over the same input list split
//!            the work deterministically without coordination; inputs
//!            the shard does not own exit with code 3 (so redirected
//!            runs never silently produce an empty output file)
//! ```
//!
//! Everything builds through a `khaos-pass` pipeline: the legacy mode
//! names are aliases for one-atom specs, and any full spec is accepted
//! in their place. The obfuscated module is printed to stdout in the
//! same textual format, so shell pipelines compose:
//! `khaos-obf fufi-all a.kir > a_obf.kir`.

use khaos::par::ShardSpec;
use khaos::pass::{PassCtx, Pipeline};
use khaos::vm::run_to_completion;
use khaos_ir::{parser, printer, Module};
use std::process::ExitCode;

struct Args {
    mode: String,
    seed: u64,
    arity: usize,
    o2: bool,
    run: bool,
    stats: bool,
    report: bool,
    shard: Option<ShardSpec>,
    input: Option<String>,
    demo: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: String::new(),
        seed: 0xC60,
        arity: 3,
        o2: false,
        run: false,
        stats: false,
        report: false,
        shard: None,
        input: None,
        demo: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--arity" => {
                args.arity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|k| (2..=4).contains(k))
                    .ok_or("--arity needs an integer in 2..=4")?;
            }
            "--o2" => args.o2 = true,
            "--run" => args.run = true,
            "--stats" => args.stats = true,
            "--report" => args.report = true,
            "--shard" => {
                let v = it.next().ok_or("--shard needs i/n (e.g. 0/4)")?;
                args.shard = Some(ShardSpec::parse(&v).map_err(|e| format!("--shard: {e}"))?);
            }
            "--demo" => args.demo = Some(it.next().ok_or("--demo needs a program name")?),
            _ if args.mode.is_empty() => args.mode = a,
            _ if args.input.is_none() => args.input = Some(a),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if args.mode.is_empty() {
        return Err("missing <mode|spec>".into());
    }
    if args.shard.is_none() {
        // The flag and the environment variable are one mechanism, like
        // the experiment bins.
        args.shard = Some(ShardSpec::from_env()?);
    }
    Ok(args)
}

fn load_module(args: &Args) -> Result<Module, String> {
    if let Some(name) = &args.demo {
        return Ok(khaos::workloads::coreutils_program(name, args.seed));
    }
    let path = args.input.as_ref().ok_or("missing input file (or use --demo NAME)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parser::parse_module(&text).map_err(|e| format!("{path}: {e}"))
}

/// Maps a legacy mode name to its pipeline spec; anything else is
/// treated as a raw spec.
fn mode_spec(mode: &str, arity: usize) -> String {
    match mode {
        "fission" | "fusion" | "sub" | "bog" | "fla" => mode.into(),
        "fusion-n" => format!("fusion_n(arity={arity})"),
        "fufi-sep" => "fufi_sep".into(),
        "fufi-ori" => "fufi_ori".into(),
        "fufi-all" => "fufi_all".into(),
        "fla-10" => "fla(ratio=0.1)".into(),
        raw => raw.into(),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("khaos-obf: {e}");
            eprintln!(
                "usage: khaos-obf <fission|fusion|fusion-n|fufi-sep|fufi-ori|fufi-all|sub|bog|fla|fla-10|SPEC> \
                 [--seed N] [--arity K] [--o2] [--run] [--stats] [--report] [--shard i/n] \
                 [input.kir | --demo NAME]"
            );
            return ExitCode::from(2);
        }
    };

    let mut module = match load_module(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("khaos-obf: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Sharded batch runs: n cooperating invocations over the same input
    // list each own a deterministic (module-name-hashed) share. A skip
    // exits with the distinct code 3 — not 0 — so a redirection like
    // `khaos-obf fufi-all a.kir > a_obf.kir` run under an inherited
    // KHAOS_SHARD cannot silently leave an empty output file behind;
    // shard loops treat 3 as "not mine":
    // `for f in *.kir; do khaos-obf fufi-all --shard 0/2 "$f" > "$f.obf" || [ $? -eq 3 ]; done`.
    let shard = args.shard.expect("defaulted in parse_args");
    if !shard.is_full() && !shard.owns_hash(khaos::store::fnv1a(module.name.as_bytes())) {
        eprintln!(
            "khaos-obf: skipping `{}` (not owned by shard {shard}; exit 3)",
            module.name
        );
        return ExitCode::from(3);
    }
    if let Err(errs) = khaos_ir::verify::verify_module(&module) {
        eprintln!("khaos-obf: input does not verify: {}", errs[0]);
        return ExitCode::FAILURE;
    }

    let mut spec = mode_spec(&args.mode, args.arity);
    let pipeline = match Pipeline::parse(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("khaos-obf: {e}");
            return ExitCode::from(2);
        }
    };
    if args.o2 {
        // The paper's pipeline position: obfuscation in the middle-end,
        // between the baseline optimization and a final re-optimization.
        let baseline_build = Pipeline::parse("O2+lto").expect("static spec");
        if let Err(e) = baseline_build.run(&mut module, &mut PassCtx::new(args.seed)) {
            eprintln!("khaos-obf: baseline build failed: {e}");
            return ExitCode::FAILURE;
        }
        spec = format!("{pipeline} | O2+lto");
    }
    let pipeline = match Pipeline::parse(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("khaos-obf: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = module.clone();

    let mut ctx = PassCtx::new(args.seed);
    let report = match pipeline.run(&mut module, &mut ctx) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("khaos-obf: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.run {
        let want = run_to_completion(&baseline, &[]);
        let got = run_to_completion(&module, &[]);
        match (want, got) {
            (Ok(w), Ok(g)) if w.output == g.output && w.exit_code == g.exit_code => {
                eprintln!(
                    "khaos-obf: behaviour preserved (exit {}, {} outputs); cycles {} -> {} ({:+.1}%)",
                    g.exit_code,
                    g.output.len(),
                    w.cycles,
                    g.cycles,
                    (g.cycles as f64 / w.cycles as f64 - 1.0) * 100.0
                );
            }
            (Ok(_), Ok(_)) => {
                eprintln!("khaos-obf: BEHAVIOUR DIVERGED — this is a bug, please report");
                return ExitCode::FAILURE;
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("khaos-obf: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.stats {
        eprintln!(
            "khaos-obf: fission: {} sepFuncs from {} functions (ratio {:.0}%, #BB {:.2}, RR {:.0}%)",
            ctx.fission_stats.sep_funcs,
            ctx.fission_stats.ori_funcs,
            ctx.fission_stats.ratio() * 100.0,
            ctx.fission_stats.avg_blocks(),
            ctx.fission_stats.reduced_ratio() * 100.0,
        );
        eprintln!(
            "khaos-obf: fusion: {} fusFuncs, ratio {:.0}%, #RP {:.2}, #HBB {:.2}, {} trampolines",
            ctx.fusion_stats.fus_funcs,
            ctx.fusion_stats.ratio() * 100.0,
            ctx.fusion_stats.avg_reduced_params(),
            ctx.fusion_stats.avg_innocuous(),
            ctx.fusion_stats.trampolines,
        );
    }
    if args.report {
        eprint!("{report}");
    }
    // With KHAOS_STORE configured, the report becomes a durable
    // experiment artifact keyed by the pipeline's fingerprint.
    if let Some(store) = khaos::store::Store::from_env() {
        let stored = khaos::store::StoredReport::from_pipeline(&module.name, &report);
        match store.put_report(&stored) {
            Ok(()) => eprintln!(
                "khaos-obf: report persisted to {} (pipeline {:016x})",
                store.root().display(),
                report.fingerprint
            ),
            Err(e) => eprintln!("khaos-obf: could not persist report: {e}"),
        }
    }

    print!("{}", printer::print_module(&module));
    ExitCode::SUCCESS
}
